"""Benchmark trajectory: one table over every ``BENCH_PR*.json``.

Each PR's benchmark persists its own record with its own shape —
useful in isolation, unreadable as a series. This tool walks every
``BENCH_PR*.json`` at the repo root and flattens the scattered records
into one aligned trajectory table: per PR, every *ratio* fact
(``speedup`` / ``*_speedup`` / ``mem_ratio`` / ``*_ratio`` leaves,
with the floor that gated it where the record carries one) and every
peak-memory fact (``peak_mem_bytes`` leaves) — so a reader can see in
one screen how each protocol's speedups and footprints moved across
the PR sequence, and CI can refuse a PR whose benchmark record went
missing or stopped passing its own floors.

Two modes::

    PYTHONPATH=src python tools/bench_history.py            # the table
    PYTHONPATH=src python tools/bench_history.py --check    # CI gate

``--check`` exits nonzero unless every ``BENCH_PR*.json`` parses, the
series as a whole carries at least one ratio fact (some records are
overhead/degradation gates with no ratio of their own), and no record
says ``passes_floors: false`` (a missing ``passes_floors`` key is
tolerated — an explicit ``false`` is a shipped regression and fails).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Any, Iterator

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Leaf-key patterns classified as ratio facts (dimensionless "how
#: many times better" numbers — the trajectory's primary column).
RATIO_KEY = re.compile(r"(^|_)(speedup|ratio)$")

#: Leaf-key patterns classified as peak-footprint facts (bytes).
PEAK_KEY = re.compile(r"(^|_)peak(_mem)?_bytes$")


def bench_files(root: pathlib.Path = REPO_ROOT) -> list[pathlib.Path]:
    """Every ``BENCH_PR*.json`` at the repo root, in PR order."""

    def pr_number(path: pathlib.Path) -> int:
        match = re.search(r"BENCH_PR(\d+)", path.name)
        return int(match.group(1)) if match else 0

    return sorted(root.glob("BENCH_PR*.json"), key=pr_number)


def _walk(
    record: Any, path: tuple[str, ...] = ()
) -> Iterator[tuple[tuple[str, ...], Any]]:
    """Depth-first (path, leaf) pairs of a nested JSON record."""
    if isinstance(record, dict):
        for key, value in record.items():
            yield from _walk(value, path + (str(key),))
    else:
        yield path, record


def extract_rows(path: pathlib.Path) -> list[dict[str, Any]]:
    """The trajectory rows of one benchmark record.

    One row per ratio or peak leaf: ``pr`` (file stem), ``protocol``
    (the dotted path *above* the leaf key — which sub-benchmark the
    fact belongs to), ``kind`` (``ratio``/``peak``), ``metric`` (the
    leaf key), ``value``, and ``floor`` (the sibling ``*floor`` leaf
    of a ratio, when the record carries one).
    """
    record = json.loads(path.read_text())
    leaves = dict(_walk(record))
    rows: list[dict[str, Any]] = []
    for leaf_path, value in leaves.items():
        key = leaf_path[-1]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if RATIO_KEY.search(key):
            kind = "ratio"
        elif PEAK_KEY.search(key):
            kind = "peak"
        else:
            continue
        floor = None
        if kind == "ratio":
            # The gating floor sits beside the ratio under a sibling
            # key: `floor` / `<prefix>_floor` for `speedup` /
            # `<prefix>_speedup` (same convention for ratios).
            prefix = re.sub(r"(speedup|ratio)$", "", key)
            for sibling in (f"{prefix}floor", "floor"):
                cand = leaves.get(leaf_path[:-1] + (sibling,))
                if isinstance(cand, (int, float)):
                    floor = float(cand)
                    break
        rows.append(
            {
                "pr": path.stem.replace("BENCH_", ""),
                "protocol": ".".join(leaf_path[:-1]) or "(top)",
                "kind": kind,
                "metric": key,
                "value": float(value),
                "floor": floor,
            }
        )
    return rows


def history(root: pathlib.Path = REPO_ROOT) -> list[dict[str, Any]]:
    """All trajectory rows across every benchmark record, in PR order."""
    rows: list[dict[str, Any]] = []
    for path in bench_files(root):
        rows.extend(extract_rows(path))
    return rows


def format_table(rows: list[dict[str, Any]]) -> str:
    """The aligned trajectory table (protocol x PR x ratio x peak)."""
    if not rows:
        return "(no BENCH_PR*.json records found)"
    headers = ("PR", "protocol", "metric", "value", "floor")
    cells = []
    for row in rows:
        if row["kind"] == "peak":
            value = f"{row['value'] / 2**20:,.1f} MiB"
        else:
            value = f"{row['value']:.2f}x"
        floor = (
            f">= {row['floor']:g}x" if row["floor"] is not None else ""
        )
        cells.append(
            (row["pr"], row["protocol"], row["metric"], value, floor)
        )
    widths = [
        max(len(headers[i]), max(len(c[i]) for c in cells))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for cell in cells:
        lines.append(
            "  ".join(cell[i].ljust(widths[i]) for i in range(len(cell)))
        )
    return "\n".join(lines)


def check(root: pathlib.Path = REPO_ROOT) -> list[str]:
    """The CI gate: every record parses and does not declare
    ``passes_floors: false``; the series carries ratio facts."""
    problems: list[str] = []
    files = bench_files(root)
    if not files:
        problems.append("no BENCH_PR*.json records found at repo root")
    ratio_rows = 0
    for path in files:
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            problems.append(f"{path.name}: unreadable ({err})")
            continue
        rows = extract_rows(path)
        ratio_rows += sum(1 for row in rows if row["kind"] == "ratio")
        if record.get("passes_floors") is False:
            problems.append(
                f"{path.name}: passes_floors is false — a benchmark "
                "record that fails its own floors must not ship"
            )
    if files and not ratio_rows:
        problems.append(
            "no ratio facts (speedup/ratio leaves) anywhere in the "
            "series — did the benchmark records change shape?"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: validate every record instead of printing the "
        "table; nonzero exit on any problem",
    )
    args = parser.parse_args(argv)
    if args.check:
        problems = check()
        for problem in problems:
            print(f"bench-history: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"bench-history: {len(bench_files())} records OK "
            "(parse + ratio facts + floors)"
        )
        return 0
    print(format_table(history()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
