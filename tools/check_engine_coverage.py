#!/usr/bin/env python
"""Line-coverage floor for the engine layer (``src/repro/engine``),
the fault-injection layer (``src/repro/faults``), and the corpus
layer (``src/repro/corpus``).

Stdlib-only (the container bakes no ``coverage``/``pytest-cov``): line
events are collected with ``sys.monitoring`` on Python 3.12+ (cheap —
non-engine code objects are disabled after their first event) or a
``sys.settrace`` local-trace filter on 3.11, while the engine-focused
test files run in-process through ``pytest.main``. Executable lines
come from compiling each engine module and walking its code objects'
``co_lines`` tables.

The floor is a regression gate for the scheduler layer specifically:
the engine is the substrate every protocol's correctness argument rests
on, so untested engine branches are a categorically worse smell than
untested leaf protocols. The fault layer is held to the same floor for
the same reason — its mask transforms sit inside every delivery, so an
untested branch there corrupts every protocol at once. Run from the
repository root::

    PYTHONPATH=src python tools/check_engine_coverage.py

Exit status is nonzero when overall engine coverage drops below
``FLOOR`` (or any single module below ``FILE_FLOOR``).
"""

from __future__ import annotations

import ast
import pathlib
import sys
import types

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ENGINE_DIR = (REPO_ROOT / "src" / "repro" / "engine").resolve()
FAULTS_DIR = (REPO_ROOT / "src" / "repro" / "faults").resolve()
CORPUS_DIR = (REPO_ROOT / "src" / "repro" / "corpus").resolve()
SERVICE_DIR = (REPO_ROOT / "src" / "repro" / "service").resolve()
TRACKED_DIRS = (ENGINE_DIR, FAULTS_DIR, CORPUS_DIR, SERVICE_DIR)

#: Overall executable-line coverage the engine package must keep.
FLOOR = 0.90
#: Per-module floor (looser: small modules swing harder per line).
FILE_FLOOR = 0.85

#: The test files that exercise the engine layer. Contract + fuzz
#: suites are included on purpose: their replay/twin checks are where
#: the rarely-taken engine branches (dense routing, mux edge cases)
#: actually fire.
TEST_FILES = [
    "tests/test_engine_windowed.py",
    "tests/test_engine_mux.py",
    "tests/test_engine_budget.py",
    "tests/test_engine_streaming.py",
    "tests/test_schedule_contract.py",
    "tests/test_fuzz_differential.py",
    # The fault layer's own suite (schedule refusals, mask-transform
    # semantics, energy ledger, uptime math, provenance).
    "tests/test_faults.py",
    # The API front door is the policy layer's (engine/policy.py)
    # primary exerciser: equivalence, refusals, shims, resolution.
    "tests/test_api.py",
    "tests/test_dense_routing.py",
    # Residual delivery + compiled kernels (pcg offset draws, kernel
    # registry, restriction equivalence) — ISSUE 7's engine additions.
    "tests/test_residual.py",
    # The corpus layer (cell-grid generation, the mmap store, shm
    # fan-out) and the result-equality mixin it leans on — ISSUE 8.
    "tests/test_corpus.py",
    "tests/test_result_equality.py",
    # The fused pipeline tier (fused coin/fault/delivery pass, COO
    # kernels, per-phase timing, provenance counters) — ISSUE 9.
    "tests/test_pipeline.py",
    # The experiment service (report store, campaign engine, HTTP
    # front, client) — ISSUE 10.
    "tests/test_service.py",
]

#: Comment marker excluding a statement (and its whole block) from the
#: floors. Reserved for code that *cannot* execute in this container —
#: optional compiled backends (numba/cupy) and hardware-dependent
#: branches. CI's optional-deps leg runs those lines for real instead.
PRAGMA = "# pragma: no cover"

_executed: dict[str, set[int]] = {}
_prefix = tuple(str(d) for d in TRACKED_DIRS)


def _start_settrace() -> None:
    def global_trace(frame, event, arg):
        if event != "call":
            return None
        if not frame.f_code.co_filename.startswith(_prefix):
            return None
        lines = _executed.setdefault(frame.f_code.co_filename, set())
        lines.add(frame.f_lineno)

        def local_trace(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    # sys.settrace hooks only the calling thread; the service layer
    # executes on asyncio/server and campaign-executor threads, which
    # threading.settrace covers (installed into each thread at start).
    import threading

    threading.settrace(global_trace)
    sys.settrace(global_trace)


def _start_monitoring() -> None:
    mon = sys.monitoring
    tool = mon.COVERAGE_ID
    mon.use_tool_id(tool, "engine-coverage")

    def on_line(code: types.CodeType, line: int):
        if code.co_filename.startswith(_prefix):
            _executed.setdefault(code.co_filename, set()).add(line)
            return None
        return mon.DISABLE

    def on_start(code: types.CodeType, _offset: int):
        if code.co_filename.startswith(_prefix):
            _executed.setdefault(code.co_filename, set()).add(
                code.co_firstlineno
            )
            return None
        return mon.DISABLE

    mon.register_callback(tool, mon.events.LINE, on_line)
    mon.register_callback(tool, mon.events.PY_START, on_start)
    mon.set_events(tool, mon.events.LINE | mon.events.PY_START)


def _stop_tracing() -> None:
    if hasattr(sys, "monitoring"):
        mon = sys.monitoring
        mon.set_events(mon.COVERAGE_ID, 0)
        mon.free_tool_id(mon.COVERAGE_ID)
    else:
        sys.settrace(None)


def pragma_excluded_lines(path: pathlib.Path) -> set[int]:
    """Lines excluded by ``# pragma: no cover`` markers.

    A pragma on a statement header (a ``def``, an ``if``, a ``try``)
    excludes the statement's whole source span, decorators included; a
    pragma on an ``else:``/``finally:`` keyword line excludes that
    clause's body. AST-based, so the exclusion tracks real block
    structure rather than indentation guessing.
    """
    source = path.read_text()
    text_lines = source.splitlines()
    pragma_lines = {
        i + 1 for i, line in enumerate(text_lines) if PRAGMA in line
    }
    if not pragma_lines:
        return set()
    excluded: set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            start = min(
                [node.lineno]
                + [
                    d.lineno
                    for d in getattr(node, "decorator_list", [])
                ]
            )
            if node.lineno in pragma_lines or start in pragma_lines:
                excluded.update(range(start, node.end_lineno + 1))
        # else:/finally: keyword lines are not statement nodes; find
        # the keyword line just above the clause body and, if marked,
        # exclude the body.
        for field in ("orelse", "finalbody"):
            body = getattr(node, field, None)
            # ``IfExp.orelse`` is a single expression, not a clause
            # body — only statement lists have an ``else:`` keyword
            # line to look for.
            if not isinstance(body, list) or not body:
                continue
            for cand in range(body[0].lineno - 1, node.lineno, -1):
                stripped = text_lines[cand - 1].strip()
                if stripped.startswith(("else", "finally")):
                    if cand in pragma_lines:
                        excluded.add(cand)
                        excluded.update(
                            range(
                                body[0].lineno,
                                body[-1].end_lineno + 1,
                            )
                        )
                    break
    return excluded


def executable_lines(path: pathlib.Path) -> set[int]:
    """Line numbers with executable instructions, from the code objects.

    Function/def header lines are mapped by the interpreter to entry
    events rather than line events on some versions, so they are
    tracked separately via ``co_firstlineno`` (see ``on_start`` /
    the settrace call event) — here every line a ``co_lines`` table
    names is executable.
    """
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for const in co.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
        for _start, _end, line in co.co_lines():
            if line is not None:
                lines.add(line)
    return lines - pragma_excluded_lines(path)


def main() -> int:
    import pytest

    sys.path.insert(0, str(REPO_ROOT / "src"))
    if any(name.startswith("repro") for name in sys.modules):
        print(
            "error: repro imported before tracing started; run this "
            "tool as a fresh process",
            file=sys.stderr,
        )
        return 2

    if hasattr(sys, "monitoring"):
        _start_monitoring()
    else:
        _start_settrace()
    try:
        rc = pytest.main(
            ["-q", "-p", "no:cacheprovider", "--fuzz-rounds", "1"]
            + [str(REPO_ROOT / t) for t in TEST_FILES]
        )
    finally:
        _stop_tracing()
    if rc != 0:
        print(f"engine test run failed (pytest exit {rc})", file=sys.stderr)
        return int(rc)

    total_expected = 0
    total_hit = 0
    failed = False
    print("\nengine + fault layer line coverage:")
    for tracked in TRACKED_DIRS:
        for path in sorted(tracked.glob("*.py")):
            label = f"{tracked.name}/{path.name}"
            expected = executable_lines(path)
            hit = _executed.get(str(path), set()) & expected
            missed = sorted(expected - hit)
            ratio = len(hit) / len(expected) if expected else 1.0
            total_expected += len(expected)
            total_hit += len(hit)
            flag = ""
            if ratio < FILE_FLOOR:
                failed = True
                flag = f"  << below file floor {FILE_FLOOR:.0%}"
            print(
                f"  {label:22s} {ratio:7.1%} "
                f"({len(hit)}/{len(expected)}){flag}"
            )
            if missed and ratio < 1.0:
                preview = ", ".join(map(str, missed[:12]))
                more = (
                    ""
                    if len(missed) <= 12
                    else f", ... +{len(missed) - 12}"
                )
                print(f"    missed lines: {preview}{more}")

    overall = total_hit / total_expected if total_expected else 1.0
    print(
        f"  {'TOTAL':22s} {overall:7.1%} ({total_hit}/{total_expected})"
    )
    if overall < FLOOR:
        failed = True
        print(f"overall coverage below floor {FLOOR:.0%}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
