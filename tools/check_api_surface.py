"""Public-surface lint: the front door stays the front door.

Two checks, both cheap enough for every CI run (wired next to the
engine coverage floor):

1. **Pinned ``repro.api.__all__``** — the public surface is an explicit
   contract. Adding or removing a name must edit the pin here, in the
   same commit, on purpose; silent drift fails.

2. **No deep imports in user-facing material** — ``examples/`` scripts
   and the fenced Python snippets in ``README.md`` / ``EXPERIMENTS.md``
   must import only *public package surfaces* (``repro``, ``repro.api``,
   ``repro.core``, ...), never deep modules (``repro.core.mis``,
   ``repro.engine.runner``, ...) or private names. What we demo is what
   we support; reaching around the front door in the demos un-teaches
   the API this repo ships.

Run directly::

    PYTHONPATH=src python tools/check_api_surface.py

Exit status is nonzero on any violation, with every offender listed.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: The pinned public surface of repro.api. Changing the API means
#: changing this list in the same commit — that is the point.
EXPECTED_API_ALL = [
    "BGIConfig",
    "BroadcastConfig",
    "CLISpec",
    "DecayConfig",
    "EEDConfig",
    "ENGINE_MODES",
    "ExecutionPolicy",
    "FaultSchedule",
    "ICPConfig",
    "Jam",
    "LeaderConfig",
    "PartitionConfig",
    "ProtocolSpec",
    "RestartableMISConfig",
    "RunReport",
    "TRACE_MODES",
    "UptimeLeaderConfig",
    "WakeupConfig",
    "available_delivery_modes",
    "get_protocol",
    "list_protocols",
    "parse_mem_budget",
    "protocol_names",
    "register_protocol",
    "run",
]

#: The pinned public surface of repro.service — the hosted-campaign
#: layer is a supported import root with the same drift discipline.
EXPECTED_SERVICE_ALL = [
    "Campaign",
    "CampaignJob",
    "CampaignSpec",
    "ExperimentService",
    "JobKey",
    "ReportStore",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "config_digest",
    "faults_digest",
    "policy_digest",
    "run_campaign",
    "start_in_thread",
]

#: Package surfaces user-facing material may import from. One level
#: below ``repro`` only — anything deeper is an internal module.
ALLOWED_ROOTS = {
    "repro",
    "repro.analysis",
    "repro.api",
    "repro.baselines",
    "repro.core",
    "repro.corpus",
    "repro.engine",
    "repro.faults",
    "repro.graphs",
    "repro.radio",
    "repro.service",
}


def _check_all_pin(package: str, expected: list[str]) -> list[str]:
    """Pin one package's ``__all__`` without importing it.

    Parsed from source (AST), so the check needs no dependencies and
    cannot be fooled by import-time mutation.
    """
    init = SRC.joinpath(*package.split("."), "__init__.py")
    tree = ast.parse(init.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            actual = [
                elt.value
                for elt in node.value.elts  # type: ignore[attr-defined]
            ]
            if actual != expected:
                unexpected = sorted(set(actual) - set(expected))
                missing = sorted(set(expected) - set(actual))
                detail = (
                    f"unexpected={unexpected}, missing={missing}"
                    if unexpected or missing
                    else "same names, different order"
                )
                return [
                    f"{package}.__all__ drifted from the pin in "
                    f"tools/check_api_surface.py ({detail})"
                ]
            return []
    return [f"{init.relative_to(REPO_ROOT)} has no literal __all__ to pin"]


def check_api_all() -> list[str]:
    """Pin the public ``__all__`` of every supported import root that
    declares one explicitly."""
    return _check_all_pin("repro.api", EXPECTED_API_ALL) + _check_all_pin(
        "repro.service", EXPECTED_SERVICE_ALL
    )


def _imported_modules(tree: ast.AST) -> list[tuple[str, str]]:
    """``(module, what)`` pairs for every repro import in a tree."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    found.append((alias.name, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and module.split(".")[0] == "repro":
                for alias in node.names:
                    found.append((module, alias.name))
    return found


def _check_source(label: str, source: str) -> list[str]:
    """Deep-import and private-name violations in one source blob."""
    problems = []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # snippets with shell lines etc. — not Python, skip
    for module, name in _imported_modules(tree):
        if module not in ALLOWED_ROOTS:
            problems.append(
                f"{label}: imports deep module {module!r} "
                f"(allowed surfaces: one level below 'repro')"
            )
        if name.startswith("_"):
            problems.append(
                f"{label}: imports private name {name!r} from {module!r}"
            )
    return problems


def check_examples() -> list[str]:
    """Every example script imports only public surfaces."""
    problems = []
    for path in sorted((REPO_ROOT / "examples").glob("*.py")):
        problems.extend(
            _check_source(f"examples/{path.name}", path.read_text())
        )
    return problems


def check_doc_snippets() -> list[str]:
    """Fenced python blocks in README/EXPERIMENTS import only surfaces."""
    problems = []
    fence = re.compile(r"```python\n(.*?)```", re.DOTALL)
    for doc in ("README.md", "EXPERIMENTS.md"):
        text = (REPO_ROOT / doc).read_text()
        for i, match in enumerate(fence.finditer(text)):
            problems.extend(
                _check_source(f"{doc} snippet #{i + 1}", match.group(1))
            )
    return problems


def main() -> int:
    """Run all surface checks; list every violation; nonzero on any."""
    problems = check_api_all() + check_examples() + check_doc_snippets()
    if problems:
        print("public API surface violations:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        "api surface OK: __all__ pinned "
        f"({len(EXPECTED_API_ALL)} api + {len(EXPECTED_SERVICE_ALL)} "
        "service names), examples and doc snippets import public "
        "surfaces only"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
