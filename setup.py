"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` (legacy editable install) works in
offline environments lacking PEP 517 build requirements.
"""

from setuptools import setup

setup()
