"""Regression tests for array-aware result equality (ArrayEqMixin).

The result dataclasses carry numpy arrays, so the generated dataclass
``__eq__`` used to raise ``ValueError: truth value of an array is
ambiguous`` the moment anyone compared two results. The mixin compares
field-wise with ``np.array_equal`` — the headline contract being that
``run(p, g, seed=s) == run(p, g, seed=s)`` is simply ``True``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.api as api
from repro import graphs
from repro.core.decay import DecayResult
from repro.core.mis import MISResult
from repro.core.resulteq import ArrayEqMixin, values_equal


def _udg(n: int, seed: int):
    return graphs.random_udg(n=n, side=4.0, rng=np.random.default_rng(seed))


class TestRunReportEquality:
    def test_same_seed_runs_compare_equal(self):
        g = _udg(40, 11)
        assert api.run("mis", g, seed=3) == api.run("mis", g, seed=3)

    def test_different_seeds_compare_unequal(self):
        g = _udg(40, 11)
        assert api.run("mis", g, seed=3) != api.run("mis", g, seed=4)

    def test_measurement_fields_do_not_participate(self):
        # wall_time_s differs on every run and peak_mem_bytes only on
        # measured ones; neither is an outcome.
        g = _udg(30, 5)
        a = api.run("decay", g, seed=2)
        b = api.run("decay", g, seed=2, measure_memory=True)
        assert a.wall_time_s != b.wall_time_s
        assert a == b

    def test_cross_type_comparison_is_false_not_an_error(self):
        g = _udg(30, 5)
        report = api.run("decay", g, seed=2)
        assert report != "decay"
        assert report != report.result

    def test_reports_are_unhashable(self):
        g = _udg(30, 5)
        with pytest.raises(TypeError):
            hash(api.run("decay", g, seed=2))


class TestResultEquality:
    def test_mis_results_equal_and_sensitive(self):
        g = _udg(40, 11)
        a = api.run("mis", g, seed=3).result
        b = api.run("mis", g, seed=3).result
        assert isinstance(a, MISResult)
        assert a == b
        flipped = dataclasses.replace(b, mis_mask=~b.mis_mask)
        assert a != flipped

    def test_decay_result_array_fields(self):
        heard = np.array([True, False, True])
        heard_from = np.array([2, -1, 0])
        a = DecayResult(heard, heard_from, [None, None, None])
        b = DecayResult(heard.copy(), heard_from.copy(), [None, None, None])
        assert a == b
        assert a != DecayResult(~heard, heard_from, [None, None, None])

    def test_shape_mismatch_is_unequal_not_an_error(self):
        a = DecayResult(np.ones(3, bool), np.zeros(3, int), [])
        b = DecayResult(np.ones(4, bool), np.zeros(4, int), [])
        assert a != b


class TestValuesEqual:
    def test_arrays(self):
        assert values_equal(np.arange(4), np.arange(4))
        assert not values_equal(np.arange(4), np.arange(5))
        # a field that changed container type is a different outcome
        assert not values_equal(np.arange(3), [0, 1, 2])

    def test_nan_keeps_ieee_semantics(self):
        assert not values_equal(float("nan"), float("nan"))

    def test_dicts_recurse(self):
        a = {"x": np.arange(3), "y": 1}
        assert values_equal(a, {"x": np.arange(3), "y": 1})
        assert not values_equal(a, {"x": np.arange(3)})
        assert not values_equal(a, {"x": np.arange(3), "y": 2})

    def test_sequences_elementwise(self):
        assert values_equal([np.arange(2), 3], [np.arange(2), 3])
        assert not values_equal([np.arange(2)], [np.arange(3)])

    def test_mixin_subclass_mismatch_returns_false(self):
        @dataclasses.dataclass(eq=False)
        class A(ArrayEqMixin):
            x: int

        @dataclasses.dataclass(eq=False)
        class B(ArrayEqMixin):
            x: int

        assert A(1) == A(1)
        assert A(1) != A(2)
        assert A(1) != B(1)
