"""Streaming window execution (PR 4 tentpole).

Four pinned properties:

* **Bit-identity** — streamed execution (any ``chunk_steps``, any
  ``mem_budget``) reproduces the monolithic window path and the
  step-wise references exactly: results, ``steps_elapsed``, trace
  totals, and the final rng state, across the chunk-boundary edge
  cases ``chunk_steps ∈ {1, w, w + 1}`` and the ``w = 0`` window.
* **Memory ceiling** — streamed EstimateEffectiveDegree and Radio MIS
  at ``n = 20000`` stay under their configured byte budget
  (tracemalloc), while the monolithic ``(w, n)`` footprint alone would
  exceed it severalfold.
* **Knob resolution** — explicit ``chunk_steps`` beats ``mem_budget``
  beats the process-wide default; the experiment harness imposes and
  restores the default around trials.
* **Plan/commit streaming** — ``StreamingSegmentProtocol.commit``
  receives one hear chunk per executed slab, in step order, and the
  ``StreamedCommitAdapter`` lets whole-window sources ride the
  streaming pipeline unmodified.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis.experiments import measure_peak, run_trials
from repro.core.decay import run_decay, run_decay_reference
from repro.core.effective_degree import (
    EstimateEffectiveDegree,
    estimate_effective_degree,
    estimate_effective_degree_reference,
)
from repro.core.mis import MISConfig, compute_mis, compute_mis_reference
from repro.engine import (
    ObliviousWindow,
    ScheduleSegmentAdapter,
    SegmentProtocol,
    StreamedCommitAdapter,
    StreamedWindow,
    StreamingSegmentProtocol,
    WindowedRunner,
    chunk_steps_for_budget,
    memory_budget,
    resolve_chunk_steps,
    run_schedule,
    segment_schedule,
    set_memory_budget,
)
from repro.engine.streaming import STREAM_CELL_BYTES
from repro.radio import (
    BudgetExceededError,
    InvalidActionError,
    ProtocolError,
    RadioNetwork,
    TransmitPlan,
    as_transmit_plan,
)


def _assert_trace_equal(a: RadioNetwork, b: RadioNetwork) -> None:
    assert a.steps_elapsed == b.steps_elapsed
    assert a.trace.total_steps == b.trace.total_steps
    assert a.trace.total_transmissions == b.trace.total_transmissions
    assert a.trace.total_receptions == b.trace.total_receptions


def _graph(n: int = 60, seed: int = 0):
    return graphs.random_udg(n, 3.0, np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# The network chunk kernel.
# ---------------------------------------------------------------------------
class TestDeliverWindowChunks:
    @pytest.mark.parametrize("chunk_steps", [1, 5, 21, 22, 1000])
    @pytest.mark.parametrize("mode", ["auto", "sparse", "dense"])
    def test_matches_monolithic_window(self, chunk_steps, mode):
        g = _graph()
        masks = np.random.default_rng(1).random((21, 60)) < 0.3
        mono_net, chunk_net = RadioNetwork(g), RadioNetwork(g)
        mono = mono_net.deliver_window(masks, mode=mode)
        slabs = list(
            chunk_net.deliver_window_chunks(
                masks, chunk_steps=chunk_steps, mode=mode
            )
        )
        assert (np.vstack(slabs) == mono).all()
        assert all(s.shape[0] <= chunk_steps for s in slabs)
        _assert_trace_equal(mono_net, chunk_net)

    def test_lazy_plan_called_in_order_exactly_once(self):
        g = _graph()
        masks = np.random.default_rng(2).random((10, 60)) < 0.2
        calls = []

        def produce(start, stop):
            calls.append((start, stop))
            return masks[start:stop]

        net = RadioNetwork(g)
        out = np.vstack(
            list(
                net.deliver_window_chunks(
                    TransmitPlan(10, produce), chunk_steps=4
                )
            )
        )
        assert calls == [(0, 4), (4, 8), (8, 10)]
        assert (out == RadioNetwork(g).deliver_window(masks)).all()

    def test_empty_plan_yields_nothing(self):
        net = RadioNetwork(_graph())
        plan = TransmitPlan(0, lambda s, e: np.zeros((0, 60), dtype=bool))
        assert list(net.deliver_window_chunks(plan, chunk_steps=3)) == []
        assert net.steps_elapsed == 0
        assert net.trace.total_steps == 0

    def test_validation(self):
        net = RadioNetwork(_graph())
        masks = np.zeros((4, 60), dtype=bool)
        with pytest.raises(InvalidActionError, match="chunk_steps"):
            list(net.deliver_window_chunks(masks, chunk_steps=0))
        with pytest.raises(ValueError, match="delivery mode"):
            list(
                net.deliver_window_chunks(masks, chunk_steps=2, mode="gpu")
            )
        bad_rows = TransmitPlan(4, lambda s, e: masks[s : s + 1])
        with pytest.raises(InvalidActionError, match="rows"):
            list(net.deliver_window_chunks(bad_rows, chunk_steps=2))
        bad_dtype = TransmitPlan(
            4, lambda s, e: np.zeros((e - s, 60), dtype=np.int64)
        )
        with pytest.raises(InvalidActionError, match="boolean"):
            list(net.deliver_window_chunks(bad_dtype, chunk_steps=2))

    def test_as_transmit_plan_passthrough(self):
        plan = TransmitPlan(3, lambda s, e: np.zeros((e - s, 5), dtype=bool))
        assert as_transmit_plan(plan) is plan
        arr = np.zeros((3, 5), dtype=bool)
        wrapped = as_transmit_plan(arr)
        assert wrapped.total_steps == 3
        assert wrapped.masks(1, 3).shape == (2, 5)


# ---------------------------------------------------------------------------
# Streamed emitters: bit-identity across chunk boundaries.
# ---------------------------------------------------------------------------
class TestStreamedEmitterEquivalence:
    def _eed_width(self, net, C=3):
        p = np.full(net.n, 0.5)
        active = np.ones(net.n, dtype=bool)
        return EstimateEffectiveDegree(net, p, active, C=C).total_steps

    def chunk_cases(self, w):
        # The satellite's boundary cases: one row per slab, exactly one
        # slab, and a slab wider than the window.
        return [1, 7, w, w + 1]

    def test_decay_streamed_equals_reference_across_chunks(self):
        g = _graph(70, 3)
        active = np.random.default_rng(4).random(70) < 0.4
        active[0] = True
        w = 5 * 7  # iterations * span for n = 70
        ref_net = RadioNetwork(g)
        ref_rng = np.random.default_rng(9)
        ref = run_decay_reference(
            ref_net, active, ref_rng, iterations=5
        )
        assert ref_net.steps_elapsed == w
        for chunk in self.chunk_cases(w):
            net = RadioNetwork(g)
            rng = np.random.default_rng(9)
            res = run_decay(
                net, active, rng, iterations=5, chunk_steps=chunk
            )
            assert (res.heard == ref.heard).all()
            assert (res.heard_from == ref.heard_from).all()
            _assert_trace_equal(net, ref_net)
            assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_eed_streamed_equals_reference_across_chunks(self):
        g = _graph(60, 5)
        p = np.full(60, 0.5)
        active = np.ones(60, dtype=bool)
        w = self._eed_width(RadioNetwork(g))
        ref_net = RadioNetwork(g)
        ref_rng = np.random.default_rng(11)
        ref = estimate_effective_degree_reference(
            ref_net, p, active, ref_rng, C=3
        )
        for chunk in self.chunk_cases(w):
            net = RadioNetwork(g)
            rng = np.random.default_rng(11)
            res = estimate_effective_degree(
                net, p, active, rng, C=3, chunk_steps=chunk
            )
            assert (res.counts == ref.counts).all()
            assert (res.high == ref.high).all()
            _assert_trace_equal(net, ref_net)
            assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_eed_mem_budget_equals_reference(self):
        # The budget knob is just another route to a chunk size.
        g = _graph(60, 6)
        p = np.full(60, 0.4)
        active = np.ones(60, dtype=bool)
        ref = estimate_effective_degree_reference(
            RadioNetwork(g), p, active, np.random.default_rng(12), C=3
        )
        res = estimate_effective_degree(
            RadioNetwork(g), p, active, np.random.default_rng(12), C=3,
            mem_budget=10 * STREAM_CELL_BYTES * 60,  # 10-row slabs
        )
        assert (res.counts == ref.counts).all()

    def test_mis_streamed_equals_reference(self):
        g = _graph(50, 7)
        config = MISConfig(eed_C=3, record_golden=False)
        ref_net = RadioNetwork(g)
        ref_rng = np.random.default_rng(21)
        ref = compute_mis_reference(ref_net, ref_rng, config)
        for chunk in (1, 13, None):
            net = RadioNetwork(g)
            rng = np.random.default_rng(21)
            res = compute_mis(net, rng, config, chunk_steps=chunk)
            assert res.mis == ref.mis
            assert res.steps_used == ref.steps_used
            assert res.rounds_used == ref.rounds_used
            _assert_trace_equal(net, ref_net)
            assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_zero_width_block_emits_nothing(self):
        # w = 0: a Decay block of zero iterations executes no steps and
        # leaves the rng untouched on every path.
        g = _graph(40, 8)
        active = np.ones(40, dtype=bool)
        net = RadioNetwork(g)
        rng = np.random.default_rng(3)
        res = run_decay(net, active, rng, iterations=0, chunk_steps=1)
        assert not res.heard.any()
        assert net.steps_elapsed == 0
        assert (
            rng.bit_generator.state
            == np.random.default_rng(3).bit_generator.state
        )

    def test_zero_total_streamed_window_direct(self):
        # A StreamedWindow with total_steps = 0 charges and executes
        # nothing; its consume callback is never called.
        net = RadioNetwork(_graph(40, 8))
        folded = []

        def emit():
            yield StreamedWindow(
                TransmitPlan(0, lambda s, e: np.zeros((0, 40), dtype=bool)),
                folded.append,
            )
            return "ok"

        runner = WindowedRunner(net, max_steps=0, chunk_steps=1)
        assert runner.run(emit()) == "ok"
        assert folded == []
        assert runner.steps_executed == 0
        assert net.steps_elapsed == 0

    def test_wide_materialized_window_streams_slabwise(self):
        # A plain ObliviousWindow wider than the configured bound is
        # executed in slabs into one reply — identical bits and trace.
        g = _graph()
        masks = np.random.default_rng(14).random((40, 60)) < 0.25

        def emit(collected):
            collected["reply"] = yield ObliviousWindow(masks)

        mono_net, stream_net = RadioNetwork(g), RadioNetwork(g)
        a, b = {}, {}
        WindowedRunner(mono_net).run(emit(a))
        WindowedRunner(stream_net, chunk_steps=7).run(emit(b))
        assert (a["reply"] == b["reply"]).all()
        _assert_trace_equal(mono_net, stream_net)


# ---------------------------------------------------------------------------
# Budget accounting on streamed windows.
# ---------------------------------------------------------------------------
class TestStreamedBudget:
    def test_raises_before_offending_chunk(self):
        g = _graph()
        masks = np.random.default_rng(15).random((12, 60)) < 0.2
        folded = []

        def emit():
            yield StreamedWindow(as_transmit_plan(masks), folded.append)

        net = RadioNetwork(g)
        runner = WindowedRunner(net, max_steps=10, chunk_steps=4)
        with pytest.raises(BudgetExceededError):
            runner.run(emit())
        # Two full chunks executed and folded; the third (rows 8..11)
        # raised before executing.
        assert len(folded) == 2
        assert runner.steps_executed == 8
        assert net.steps_elapsed == 8

    def test_exact_budget_completes(self):
        g = _graph()
        masks = np.random.default_rng(16).random((12, 60)) < 0.2
        net = RadioNetwork(g)
        runner = WindowedRunner(net, max_steps=12, chunk_steps=5)
        folded = []

        def emit():
            yield StreamedWindow(as_transmit_plan(masks), folded.append)

        runner.run(emit())
        assert runner.steps_executed == net.steps_elapsed == 12
        assert sum(f.shape[0] for f in folded) == 12

    def test_consumerless_stream_rejected_in_generator_form(self):
        net = RadioNetwork(_graph())

        def emit():
            yield StreamedWindow(
                TransmitPlan(2, lambda s, e: np.zeros((e - s, 60), bool))
            )

        with pytest.raises(ProtocolError, match="consume"):
            WindowedRunner(net).run(emit())


# ---------------------------------------------------------------------------
# Knob resolution and the experiments-layer budget.
# ---------------------------------------------------------------------------
class TestKnobResolution:
    def test_chunk_steps_for_budget_model(self):
        n = 1000
        assert chunk_steps_for_budget(n, STREAM_CELL_BYTES * n * 7) == 7
        assert chunk_steps_for_budget(n, 1) == 1  # floored at one row
        assert chunk_steps_for_budget(0, 123) >= 1
        with pytest.raises(ValueError, match="mem_budget"):
            chunk_steps_for_budget(n, 0)

    def test_precedence_explicit_over_budget_over_global(self):
        n = 100
        assert resolve_chunk_steps(n) is None
        assert resolve_chunk_steps(n, chunk_steps=5, mem_budget=1 << 30) == 5
        assert resolve_chunk_steps(
            n, mem_budget=STREAM_CELL_BYTES * n * 3
        ) == 3
        set_memory_budget(STREAM_CELL_BYTES * n * 9)
        try:
            assert resolve_chunk_steps(n) == 9
            assert resolve_chunk_steps(n, chunk_steps=2) == 2
        finally:
            set_memory_budget(None)
        assert resolve_chunk_steps(n) is None
        with pytest.raises(ValueError, match="chunk_steps"):
            resolve_chunk_steps(n, chunk_steps=0)

    def test_runner_validates_knobs(self):
        net = RadioNetwork(_graph())
        with pytest.raises(ValueError, match="chunk_steps"):
            WindowedRunner(net, chunk_steps=0)
        with pytest.raises(ValueError, match="mem_budget"):
            WindowedRunner(net, mem_budget=0)

    def test_run_trials_imposes_and_restores_budget(self):
        observed = []

        def measure(rng):
            observed.append(memory_budget())
            return 1.0

        set_memory_budget(77 << 20)
        try:
            run_trials(measure, 2, seed=0, mem_budget=11 << 20)
            assert observed == [11 << 20] * 2
            assert memory_budget() == 77 << 20
            run_trials(measure, 1, seed=0)
            assert observed[-1] == 77 << 20  # untouched when unset
        finally:
            set_memory_budget(None)


# ---------------------------------------------------------------------------
# The streaming plan/commit form.
# ---------------------------------------------------------------------------
class _ChunkCountingSource(StreamingSegmentProtocol):
    """Native streaming source: one streamed window, commits per chunk."""

    def __init__(self, n: int, masks: np.ndarray) -> None:
        super().__init__(n)
        self.masks = masks
        self.chunks: list[np.ndarray] = []
        self._planned = False

    def plan(self, rng):
        if self._planned:
            return None
        self._planned = True
        return self.stream(as_transmit_plan(self.masks))

    def commit(self, hear_chunk):
        self.chunks.append(hear_chunk)

    def result(self):
        return np.vstack(self.chunks)


class TestStreamingSegmentProtocol:
    def test_commit_receives_chunks_in_order(self):
        g = _graph()
        masks = np.random.default_rng(17).random((11, 60)) < 0.25
        source = _ChunkCountingSource(60, masks)
        net = RadioNetwork(g)
        out = WindowedRunner(net, chunk_steps=4).run_segments(
            source, np.random.default_rng(0)
        )
        assert [c.shape[0] for c in source.chunks] == [4, 4, 3]
        assert (out == RadioNetwork(g).deliver_window(masks)).all()

    def test_streamed_commit_adapter_buffers_whole_window(self):
        # A whole-window SegmentProtocol rides the streaming pipeline
        # unmodified: chunks re-assemble into the single (w, n) commit.
        g = _graph()
        masks = np.random.default_rng(18).random((9, 60)) < 0.25

        class _WholeWindow(SegmentProtocol):
            def __init__(self):
                super().__init__(60)
                self.reply = None
                self._planned = False

            def plan(self, rng):
                if self._planned:
                    return None
                self._planned = True
                return ObliviousWindow(masks)

            def commit(self, reply):
                self.reply = reply

            def result(self):
                return self.reply

        inner = _WholeWindow()
        adapter = StreamedCommitAdapter(inner)
        net = RadioNetwork(g)
        out = WindowedRunner(net, chunk_steps=2).run_segments(
            adapter, np.random.default_rng(0)
        )
        assert out.shape == (9, 60)
        assert (out == RadioNetwork(g).deliver_window(masks)).all()

    def test_streamed_commit_adapter_contract_errors(self):
        masks = np.zeros((4, 6), dtype=bool)

        class _One(SegmentProtocol):
            def __init__(self):
                super().__init__(6)
                self._planned = False

            def plan(self, rng):
                if self._planned:
                    return None
                self._planned = True
                return ObliviousWindow(masks)

            def commit(self, reply):
                pass

            def steps_remaining(self):
                return 0 if self._planned else 4

            def result(self):
                return "inner"

        adapter = StreamedCommitAdapter(_One())
        rng = np.random.default_rng(0)
        segment = adapter.plan(rng)
        assert isinstance(segment, StreamedWindow)
        with pytest.raises(ProtocolError, match="chunks"):
            adapter.plan(rng)
        with pytest.raises(ProtocolError, match="more chunk rows"):
            adapter.commit(np.zeros((5, 6), dtype=np.int64))
        # Delegation of the non-window surface.
        fresh = StreamedCommitAdapter(_One())
        assert fresh.steps_remaining() == 4
        fresh.plan(rng)
        fresh.commit(np.zeros((4, 6), dtype=np.int64))
        assert fresh.plan(rng) is None
        assert fresh.result() == "inner"

    def test_set_memory_budget_validates(self):
        with pytest.raises(ValueError, match="mem_budget"):
            set_memory_budget(0)

    def test_generator_emitter_through_adapter_streams(self):
        # ScheduleSegmentAdapter over a streamed-emitter generator: the
        # StreamedWindow passes through and the generator's own consume
        # folds in-stream (PR 3's run_segments round trip, streamed).
        from repro.core.decay import decay_block_schedule

        g = _graph(30, 9)
        active = np.zeros(30, dtype=bool)
        active[::2] = True
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
        adapter = ScheduleSegmentAdapter(
            decay_block_schedule(net_a, active, rng_a, iterations=4), 30
        )
        a = WindowedRunner(net_a, chunk_steps=3).run_segments(
            adapter, rng_a
        )
        b = run_decay_reference(net_b, active, rng_b, iterations=4)
        assert (a.heard == b.heard).all()
        assert (a.heard_from == b.heard_from).all()
        _assert_trace_equal(net_a, net_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


# ---------------------------------------------------------------------------
# The memory ceiling at n = 20000 (the scaling acceptance regression).
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def big_udg():
    n = 20000
    # Average degree ~8: sparse enough that the cost model's slack
    # covers the gather/sparse kernels' degree-sum terms. MIS and EED
    # are defined on disconnected graphs, so one sample suffices.
    side = float(np.sqrt(n * np.pi / 9.0))
    return graphs.random_udg(
        n, side, np.random.default_rng(42), connected=False
    )


class TestMemoryCeiling:
    BUDGET = 64 << 20  # 64 MiB

    def test_streamed_eed_stays_under_budget(self, big_udg):
        n = big_udg.number_of_nodes()
        net = RadioNetwork(big_udg)
        p = np.full(n, 0.5)
        active = np.ones(n, dtype=bool)
        total = EstimateEffectiveDegree(net, p, active, C=8).total_steps
        # The monolithic (w, n) hear-window alone (int64) dwarfs the
        # budget — that is what stalled n >= 10^4 before streaming.
        assert total * n * 8 > 4 * self.BUDGET

        def workload():
            return estimate_effective_degree(
                net, p, active, np.random.default_rng(1), C=8,
                mem_budget=self.BUDGET,
            )

        result, peak = measure_peak(workload)
        assert result.high.shape == (n,)
        assert peak < self.BUDGET, (
            f"streamed EED peaked at {peak / 2**20:.0f} MiB, over the "
            f"{self.BUDGET >> 20} MiB budget"
        )

    def test_streamed_mis_stays_under_budget(self, big_udg):
        n = big_udg.number_of_nodes()
        net = RadioNetwork(big_udg)
        config = MISConfig(
            round_factor=0.15,
            decay_amplification=0.5,
            eed_C=1,
            record_golden=False,
        )

        def workload():
            return compute_mis(
                net, np.random.default_rng(2), config,
                mem_budget=self.BUDGET,
            )

        result, peak = measure_peak(workload)
        assert result.steps_used == net.steps_elapsed
        assert peak < self.BUDGET, (
            f"streamed MIS peaked at {peak / 2**20:.0f} MiB, over the "
            f"{self.BUDGET >> 20} MiB budget"
        )
