"""Equivalence suite for the unified windowed protocol engine (PR 2).

Every protocol migrated onto the :mod:`repro.engine` scheduler layer
must be *exactly* equivalent to the step-wise implementation it
replaced. These tests pin that down, per protocol, across the graph
families the pipeline uses (UDG, quasi-UDG, hard instances, paths,
G(n,p)):

* seeded **bit-identical results** against the ``*_reference`` twins
  (Decay, EstimateEffectiveDegree, Radio MIS, wake-up reduction, BGI
  broadcast, binary-search election, the ICP Decay background, packet
  Compete / broadcast / leader election);
* matching **step counts and trace totals** (the windowed paths record
  through ``record_window`` what the step-wise paths record per step);
* matching **rng streams** after the run (the emitters draw the same
  numbers in the same order), wherever the protocol completes its
  schedule;
* runner behavior: budget enforcement before overshoot, trace-phase
  segments, the legacy-protocol adapter.

Plus the satellite engines: the CSR distance-2 coloring against the
networkx reference (valid colorings, identical layers) and the
sub-context fine clusterings against the relabel-copy reference
(bit-identical, shared rng stream).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.baselines import (
    bgi_broadcast,
    bgi_broadcast_reference,
    binary_search_election,
    binary_search_election_reference,
)
from repro.core import (
    CompeteConfig,
    MISConfig,
    build_schedule,
    build_schedule_reference,
    compute_mis,
    compute_mis_reference,
    estimate_effective_degree,
    estimate_effective_degree_reference,
    partition,
    partition_csr,
    run_decay,
    run_decay_reference,
)
from repro.core.compete import (
    _build_fine_clusterings,
    _build_fine_clusterings_reference,
)
from repro.core.compete_packet import (
    PacketCompeteConfig,
    broadcast_packet,
    compete_packet,
)
from repro.core.intra_cluster import (
    DecayBackground,
    decay_background_schedule,
    intra_cluster_propagation,
)
from repro.core.mpx import coarse_beta, j_range
from repro.core.schedule import _intra_cluster_csr
from repro.core.wakeup import (
    mis_as_wakeup_strategy,
    mis_as_wakeup_strategy_reference,
)
from repro.engine import (
    DecisionStep,
    ObliviousWindow,
    TracePhase,
    WindowedRunner,
    protocol_schedule,
    run_schedule,
)
from repro.graphs import greedy_independent_set
from repro.graphs.context import graph_context
from repro.radio import (
    BudgetExceededError,
    CheapTrace,
    ProtocolError,
    RadioNetwork,
    SilentProtocol,
    run_steps,
)


def _family_graph(kind: int, seed: int) -> nx.Graph:
    """Small connected graphs across the families the pipeline targets."""
    rng = np.random.default_rng(1000 + seed)
    if kind == 0:
        return graphs.random_udg(70, 3.0, rng)
    if kind == 1:
        return nx.convert_node_labels_to_integers(
            graphs.random_qudg(60, 3.0, rng)
        )
    if kind == 2:
        return nx.convert_node_labels_to_integers(
            graphs.star_of_cliques(5, 6)
        )
    if kind == 3:
        return graphs.path(45)
    return graphs.connected_gnp(50, 0.1, rng)


FAMILIES = [0, 1, 2, 3, 4]


def _twin_networks(g: nx.Graph) -> tuple[RadioNetwork, RadioNetwork]:
    return RadioNetwork(g), RadioNetwork(g)


def _assert_trace_equal(a: RadioNetwork, b: RadioNetwork) -> None:
    assert a.steps_elapsed == b.steps_elapsed
    assert a.trace.total_steps == b.trace.total_steps
    assert a.trace.total_transmissions == b.trace.total_transmissions
    assert a.trace.total_receptions == b.trace.total_receptions
    assert {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in a.trace.phase_stats().items()
    } == {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in b.trace.phase_stats().items()
    }


class TestDecayEquivalence:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_bit_identical(self, kind):
        g = _family_graph(kind, kind)
        net_w, net_r = _twin_networks(g)
        active = np.random.default_rng(7).random(net_w.n) < 0.4
        active[0] = True
        rng_w, rng_r = np.random.default_rng(50), np.random.default_rng(50)

        a = run_decay(net_w, active, rng_w, iterations=6)
        b = run_decay_reference(net_r, active, rng_r, iterations=6)

        assert (a.heard == b.heard).all()
        assert (a.heard_from == b.heard_from).all()
        assert a.messages == b.messages
        _assert_trace_equal(net_w, net_r)
        assert rng_w.random() == rng_r.random()


class TestEffectiveDegreeEquivalence:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_bit_identical(self, kind):
        g = _family_graph(kind, 10 + kind)
        net_w, net_r = _twin_networks(g)
        setup = np.random.default_rng(3)
        p = setup.random(net_w.n) * 0.5
        active = setup.random(net_w.n) < 0.8
        rng_w, rng_r = np.random.default_rng(60), np.random.default_rng(60)

        a = estimate_effective_degree(net_w, p, active, rng_w, C=6)
        b = estimate_effective_degree_reference(net_r, p, active, rng_r, C=6)

        assert (a.high == b.high).all()
        assert (a.counts == b.counts).all()
        assert a.steps_per_level == b.steps_per_level
        _assert_trace_equal(net_w, net_r)
        assert rng_w.random() == rng_r.random()


class TestMISEquivalence:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_bit_identical(self, kind):
        g = _family_graph(kind, 20 + kind)
        net_w, net_r = _twin_networks(g)
        rng_w, rng_r = np.random.default_rng(70), np.random.default_rng(70)
        config = MISConfig(eed_C=4)

        a = compute_mis(net_w, rng_w, config)
        b = compute_mis_reference(net_r, rng_r, config)

        assert a.mis == b.mis
        assert (a.mis_mask == b.mis_mask).all()
        assert a.rounds_used == b.rounds_used
        assert a.steps_used == b.steps_used
        assert a.history == b.history
        assert (a.golden_type1 == b.golden_type1).all()
        assert (a.golden_type2 == b.golden_type2).all()
        _assert_trace_equal(net_w, net_r)
        assert rng_w.random() == rng_r.random()
        assert graphs.is_maximal_independent_set(g, a.mis)

    def test_oracle_degree_path(self):
        g = _family_graph(0, 99)
        net_w, net_r = _twin_networks(g)
        rng_w, rng_r = np.random.default_rng(71), np.random.default_rng(71)
        config = MISConfig(oracle_degree=True)
        a = compute_mis(net_w, rng_w, config)
        b = compute_mis_reference(net_r, rng_r, config)
        assert a.mis == b.mis and a.steps_used == b.steps_used
        assert rng_w.random() == rng_r.random()

    def test_engine_kwarg_validates(self):
        net = RadioNetwork(graphs.path(5))
        with pytest.raises(ValueError, match="engine"):
            compute_mis(net, np.random.default_rng(0), engine="gpu")


class TestWakeupEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_result(self, seed):
        a = mis_as_wakeup_strategy(512, 33, np.random.default_rng(seed))
        b = mis_as_wakeup_strategy_reference(
            512, 33, np.random.default_rng(seed)
        )
        assert a == b

    def test_k_one(self):
        # k=1 can legitimately fail (the lone node may never mark
        # itself); what matters is that both paths agree exactly.
        a = mis_as_wakeup_strategy(64, 1, np.random.default_rng(5))
        b = mis_as_wakeup_strategy_reference(64, 1, np.random.default_rng(5))
        assert a == b

    def test_validates(self):
        with pytest.raises(ValueError):
            mis_as_wakeup_strategy(4, 9, np.random.default_rng(0))
        with pytest.raises(ValueError, match="engine"):
            mis_as_wakeup_strategy(9, 4, np.random.default_rng(0), engine="x")


class TestBGIEquivalence:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_bit_identical(self, kind):
        g = _family_graph(kind, 30 + kind)
        net_w, net_r = _twin_networks(g)
        rng_w, rng_r = np.random.default_rng(80), np.random.default_rng(80)

        a = bgi_broadcast(net_w, 0, rng_w)
        b = bgi_broadcast_reference(net_r, 0, rng_r)

        assert a == b
        _assert_trace_equal(net_w, net_r)
        assert rng_w.random() == rng_r.random()
        assert a.delivered

    def test_multi_source(self):
        g = graphs.path(30)
        net_w, net_r = _twin_networks(g)
        a = bgi_broadcast(
            net_w, 0, np.random.default_rng(4), sources=[0, 29]
        )
        b = bgi_broadcast_reference(
            net_r, 0, np.random.default_rng(4), sources=[0, 29]
        )
        assert a == b


class TestBinarySearchElectionEquivalence:
    @pytest.mark.parametrize("kind", [0, 3])
    def test_bit_identical(self, kind):
        g = _family_graph(kind, 40 + kind)
        net_w, net_r = _twin_networks(g)
        a = binary_search_election(net_w, np.random.default_rng(6))
        b = binary_search_election_reference(net_r, np.random.default_rng(6))
        assert a == b
        _assert_trace_equal(net_w, net_r)


class TestDecayBackgroundEquivalence:
    @pytest.mark.parametrize("kind", [0, 1, 4])
    def test_windowed_matches_stepwise(self, kind):
        g = _family_graph(kind, 50 + kind)
        setup = np.random.default_rng(9)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(
            nx.convert_node_labels_to_integers(g), 0.3, mis, setup
        )
        know_w = np.full(g.number_of_nodes(), -1, dtype=np.int64)
        know_w[: 3] = [5, -1, 2][: min(3, know_w.size)]
        know_r = know_w.copy()
        net_w, net_r = _twin_networks(g)
        rng_w, rng_r = np.random.default_rng(90), np.random.default_rng(90)
        total = 2500  # deliberately not a multiple of the sweep span

        run_schedule(
            net_w,
            decay_background_schedule(
                net_w, clustering, know_w, rng_w, total_steps=total
            ),
        )
        protocol = DecayBackground(net_r, clustering, know_r)
        run_steps(protocol, rng_r, total)

        assert (know_w == know_r).all()
        _assert_trace_equal(net_w, net_r)
        assert rng_w.random() == rng_r.random()

    def test_never_commits_partial_block(self):
        # A run shorter than one sweep leaves knowledge untouched on
        # both paths (commits happen at sweep boundaries only).
        g = graphs.path(20)
        setup = np.random.default_rng(2)
        clustering = partition(g, 0.4, sorted(greedy_independent_set(g)), setup)
        know = np.full(20, -1, dtype=np.int64)
        know[0] = 3
        net = RadioNetwork(g)
        run_schedule(
            net,
            decay_background_schedule(
                net, clustering, know, np.random.default_rng(1), total_steps=2
            ),
        )
        assert (know == np.where(np.arange(20) == 0, 3, -1)).all()
        assert net.steps_elapsed == 2


class TestICPEquivalence:
    @pytest.mark.parametrize("kind", [0, 1, 2])
    @pytest.mark.parametrize("with_background", [True, False])
    def test_bit_identical(self, kind, with_background):
        g = nx.convert_node_labels_to_integers(
            _family_graph(kind, 60 + kind)
        )
        setup = np.random.default_rng(11)
        mis = sorted(greedy_independent_set(g, setup, "random"))
        clustering = partition(g, 0.3, mis, setup)
        schedule = build_schedule(g, clustering)
        know = np.full(g.number_of_nodes(), -1, dtype=np.int64)
        know[0] = 9
        net_w, net_r = _twin_networks(g)
        rng_w, rng_r = np.random.default_rng(12), np.random.default_rng(12)

        a = intra_cluster_propagation(
            net_w, clustering, schedule, know, 4, rng_w,
            with_background=with_background, engine="windowed",
        )
        b = intra_cluster_propagation(
            net_r, clustering, schedule, know, 4, rng_r,
            with_background=with_background, engine="reference",
        )

        assert (a.knowledge == b.knowledge).all()
        assert a.steps == b.steps
        _assert_trace_equal(net_w, net_r)
        assert rng_w.random() == rng_r.random()

    def test_engine_validates(self):
        g = graphs.path(10)
        clustering = partition(
            g, 0.4, sorted(greedy_independent_set(g)),
            np.random.default_rng(0),
        )
        schedule = build_schedule(g, clustering)
        with pytest.raises(ValueError, match="engine"):
            intra_cluster_propagation(
                RadioNetwork(g), clustering, schedule,
                np.full(10, -1, dtype=np.int64), 2,
                np.random.default_rng(1), engine="bogus",
            )


class TestPacketPipelineEquivalence:
    @pytest.mark.parametrize("kind", [0, 2])
    def test_broadcast_packet_bit_identical(self, kind):
        g = nx.convert_node_labels_to_integers(
            _family_graph(kind, 70 + kind)
        )
        net_w, net_r = _twin_networks(g)
        a = broadcast_packet(
            net_w, 0, np.random.default_rng(13),
            config=PacketCompeteConfig(),
        )
        b = broadcast_packet(
            net_r, 0, np.random.default_rng(13),
            config=PacketCompeteConfig(engine="reference"),
        )
        assert a == b
        _assert_trace_equal(net_w, net_r)
        assert a.delivered

    def test_multi_source_compete_packet(self):
        g = nx.convert_node_labels_to_integers(_family_graph(4, 77))
        net_w, net_r = _twin_networks(g)
        sources = {0: 2, 5: 7, 11: 4}
        a = compete_packet(
            net_w, sources, np.random.default_rng(14),
            config=PacketCompeteConfig(),
        )
        b = compete_packet(
            net_r, sources, np.random.default_rng(14),
            config=PacketCompeteConfig(engine="reference"),
        )
        assert a == b
        assert a.winner == 7

    def test_config_validates_engine(self):
        with pytest.raises(ValueError, match="engine"):
            PacketCompeteConfig(engine="nope")


class TestRunnerProperties:
    def test_budget_raises_before_overshoot(self):
        net = RadioNetwork(graphs.path(6))

        def schedule():
            yield ObliviousWindow(np.zeros((4, 6), dtype=bool))
            yield ObliviousWindow(np.zeros((4, 6), dtype=bool))

        with pytest.raises(BudgetExceededError):
            run_schedule(net, schedule(), max_steps=6)
        # The first window executed, the second did not start.
        assert net.steps_elapsed == 4

    def test_trace_phase_segments(self):
        net = RadioNetwork(graphs.path(6))

        def schedule():
            yield TracePhase("warmup")
            yield ObliviousWindow(np.zeros((3, 6), dtype=bool))
            yield TracePhase("main")
            yield DecisionStep(np.zeros(6, dtype=bool))
            yield TracePhase("default")

        run_schedule(net, schedule())
        assert net.trace.steps_in_phase("warmup") == 3
        assert net.trace.steps_in_phase("main") == 1

    def test_rejects_non_segment(self):
        net = RadioNetwork(graphs.path(4))

        def schedule():
            yield "not a segment"

        with pytest.raises(ProtocolError):
            run_schedule(net, schedule())

    def test_returns_emitter_result(self):
        net = RadioNetwork(graphs.path(4))

        def schedule():
            hear = yield DecisionStep(np.zeros(4, dtype=bool))
            return ("done", hear.shape)

        assert run_schedule(net, schedule()) == ("done", (4,))

    def test_window_reply_matches_sequential(self):
        g = graphs.path(9)
        net_w, net_r = _twin_networks(g)
        masks = np.random.default_rng(3).random((11, 9)) < 0.3

        collected = {}

        def schedule():
            collected["hear"] = yield ObliviousWindow(masks)

        run_schedule(net_w, schedule())
        sequential = np.stack([net_r.deliver(m) for m in masks])
        assert (collected["hear"] == sequential).all()

    def test_legacy_protocol_adapter(self):
        g = graphs.path(8)
        net = RadioNetwork(g)
        protocol = SilentProtocol(net)
        result = run_schedule(
            net, protocol_schedule(protocol, np.random.default_rng(0), steps=5)
        )
        assert result is None  # SilentProtocol never finishes
        assert net.steps_elapsed == 5

    def test_runner_counts_steps(self):
        net = RadioNetwork(graphs.path(5), trace=CheapTrace())
        runner = WindowedRunner(net)

        def schedule():
            yield ObliviousWindow(np.zeros((2, 5), dtype=bool))
            yield DecisionStep(np.zeros(5, dtype=bool))

        runner.run(schedule())
        assert runner.steps_executed == 3
        assert net.trace.total_steps == 3


class TestScheduleColoringEngine:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_valid_and_layers_match_reference(self, kind):
        g = nx.convert_node_labels_to_integers(
            _family_graph(kind, 80 + kind)
        )
        setup = np.random.default_rng(15)
        mis = sorted(greedy_independent_set(g, setup, "random"))
        clustering = partition(g, 0.35, mis, setup)

        fast = build_schedule(g, clustering)
        ref = build_schedule_reference(g, clustering)

        assert (fast.layer == ref.layer).all()
        assert fast.n_layers == ref.n_layers
        # Both are greedy colorings of the same square graph; orders
        # differ (the reference inherits set iteration order), so only
        # validity and the greedy bound are comparable.
        masked = _intra_cluster_csr(g, clustering)
        square = (masked + masked @ masked).tocsr()
        square.setdiag(0)
        square.eliminate_zeros()
        coo = square.tocoo()
        u, v = coo.coords
        assert not (fast.color[u] == fast.color[v]).any()
        max_d2 = int(np.diff(square.indptr).max()) if g.number_of_nodes() else 0
        assert fast.n_colors <= max_d2 + 1

    def test_coloring_engine_validates(self):
        g = graphs.path(6)
        clustering = partition(
            g, 0.4, sorted(greedy_independent_set(g)),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="coloring"):
            build_schedule(g, clustering, coloring="rainbow")


class TestFineClusteringSubcontexts:
    def test_bit_identical_to_relabel_reference(self):
        g = nx.convert_node_labels_to_integers(
            graphs.random_udg(130, 3.5, np.random.default_rng(16))
        )
        ctx = graph_context(g)
        setup = np.random.default_rng(17)
        mis = sorted(greedy_independent_set(g, setup, "random"))
        d = max(2, ctx.diameter)
        coarse = partition(g, coarse_beta(d), mis, setup)
        config = CompeteConfig()
        js = j_range(d)
        rng_a, rng_b = np.random.default_rng(18), np.random.default_rng(18)

        fine = _build_fine_clusterings(g, coarse, mis, js, config, rng_a, ctx)
        ref = _build_fine_clusterings_reference(
            g, coarse, mis, js, config, rng_b
        )

        assert fine.keys() == ref.keys()
        for center in fine:
            assert fine[center].keys() == ref[center].keys()
            for j in fine[center]:
                for a, b in zip(fine[center][j], ref[center][j]):
                    assert (a.assignment == b.assignment).all()
                    assert (
                        a.distance_to_center == b.distance_to_center
                    ).all()
                    assert a.centers == b.centers
                    assert a.delta == b.delta
        assert rng_a.random() == rng_b.random()

    def test_induced_csr_matches_networkx_subgraph(self):
        g = nx.convert_node_labels_to_integers(
            graphs.random_udg(60, 2.5, np.random.default_rng(19))
        )
        ctx = graph_context(g)
        members = np.array(sorted(
            np.random.default_rng(20).choice(60, size=25, replace=False)
        ), dtype=np.int64)
        indptr, indices = ctx.induced_csr(members)
        sub = nx.relabel_nodes(
            g.subgraph(members.tolist()),
            {int(v): i for i, v in enumerate(members)},
            copy=True,
        )
        for i in range(members.size):
            mine = set(indices[indptr[i] : indptr[i + 1]].tolist())
            assert mine == set(sub.neighbors(i))

    def test_induced_csr_deterministic(self):
        g = graphs.path(12)
        ctx = graph_context(g)
        members = np.arange(5, dtype=np.int64)
        a = ctx.induced_csr(members)
        b = ctx.induced_csr(members)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_partition_csr_matches_partition(self):
        g = nx.convert_node_labels_to_integers(
            graphs.random_udg(80, 3.0, np.random.default_rng(21))
        )
        ctx = graph_context(g)
        centers = sorted(
            int(c)
            for c in np.random.default_rng(22).choice(80, 12, replace=False)
        )
        from repro.core.mpx import draw_shifts

        shifts = draw_shifts(centers, 0.3, np.random.default_rng(23))
        csr = ctx.identity_csr()
        a = partition_csr(
            csr.indptr, csr.indices, 80, 0.3, centers,
            np.random.default_rng(0), shifts=shifts,
        )
        b = partition(g, 0.3, centers, np.random.default_rng(0), shifts=shifts)
        assert (a.assignment == b.assignment).all()
        assert (a.distance_to_center == b.distance_to_center).all()
