"""Pre-emptive dense routing: the COO output-size estimate (PR 5).

The ``auto`` window router always sent popcount-dense rows to the
packed dense kernel; this suite pins the PR 5 addition — rows that are
popcount-*sparse* but whose transmitters' degree sum predicts a COO
output heavier than the dense kernel's packed cells (few transmitters,
huge degrees: the ``p ~ 0.5`` G(n, p) regime) route dense **before**
the sparse product can blow a ``mem_budget``. Routing is a
performance/memory decision only: every kernel computes the same exact
integer sums, re-checked here and by the contract suite.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.analysis.experiments import measure_peak
from repro.api import EEDConfig, ExecutionPolicy, run
from repro.radio.network import (
    DENSE_ROW_DENSITY,
    DENSE_WINDOW_CELL_BYTES,
    SPARSE_COO_ENTRY_BYTES,
    SPARSE_PREEMPT_FACTOR,
    RadioNetwork,
)

N_DENSE = 1000


@pytest.fixture(scope="module")
def dense_net() -> RadioNetwork:
    """A p = 0.5 G(n, p): mean degree ~ n/2, the COO blow-up regime."""
    return RadioNetwork(nx.gnp_random_graph(N_DENSE, 0.5, seed=42))


def _sparse_popcount_masks(
    n: int, rows: int, transmitters: int, seed: int
) -> np.ndarray:
    """Masks far below the popcount-density threshold."""
    assert transmitters < DENSE_ROW_DENSITY * n
    rng = np.random.default_rng(seed)
    masks = np.zeros((rows, n), dtype=bool)
    for i in range(rows):
        masks[i, rng.choice(n, size=transmitters, replace=False)] = True
    return masks


class TestOutputSizeRouting:
    def test_degree_heavy_chunks_route_dense(self, dense_net):
        # 16 transmitters/row = popcount density 0.016 (well under the
        # popcount threshold), but each carries ~n/2 neighbors: the
        # estimated COO output dwarfs the dense cells past the
        # pre-emption factor.
        masks = _sparse_popcount_masks(N_DENSE, 32, 16, seed=1)
        routed = dense_net.dense_window_rows(masks)
        assert routed.all()
        # The estimate the router applied, spelled out:
        degree_sum = float((masks @ dense_net.degrees).sum())
        assert (
            degree_sum * SPARSE_COO_ENTRY_BYTES
            >= SPARSE_PREEMPT_FACTOR
            * masks.shape[0]
            * N_DENSE
            * DENSE_WINDOW_CELL_BYTES
        )

    def test_sparse_graphs_keep_popcount_routing(self):
        g = graphs.random_udg(500, 4.0, np.random.default_rng(3))
        net = RadioNetwork(g)
        masks = _sparse_popcount_masks(500, 32, 16, seed=2)
        # Low popcount + low degrees: nothing routes dense.
        assert not net.dense_window_rows(masks).any()

    def test_mid_band_stays_sparse(self, dense_net):
        # Just past memory parity but under the pre-emption factor
        # (2 transmitters/row: COO estimate ~2x the dense cells):
        # sparse is still the faster path there, so no flip.
        masks = _sparse_popcount_masks(N_DENSE, 16, 2, seed=4)
        assert not dense_net.dense_window_rows(masks).any()

    def test_routing_never_changes_bits(self, dense_net):
        masks = _sparse_popcount_masks(N_DENSE, 24, 16, seed=3)
        auto = dense_net.deliver_window(masks, "auto")
        sparse = RadioNetwork(dense_net.graph).deliver_window(
            masks, "sparse"
        )
        dense = RadioNetwork(dense_net.graph).deliver_window(
            masks, "dense"
        )
        assert (auto == sparse).all()
        assert (auto == dense).all()

    def test_empty_and_allzero_windows_still_work(self, dense_net):
        empty = np.zeros((0, N_DENSE), dtype=bool)
        assert dense_net.dense_window_rows(empty).shape == (0,)
        quiet = np.zeros((4, N_DENSE), dtype=bool)
        assert not dense_net.dense_window_rows(quiet).any()
        assert (
            dense_net.deliver_window(quiet, "auto") == -1
        ).all()


class TestMemBudgetRegression:
    def test_streamed_eed_at_half_density_respects_budget(self, dense_net):
        """The ROADMAP gap, closed: a streamed EED block at p ~ 0.5
        under a tight budget stays near the cost model instead of
        blowing through it via the sparse product's COO output.

        The desire ladder's high-``i`` levels are exactly the
        popcount-sparse / degree-dense rows: without pre-emption their
        chunks ran the sparse product with output ~ degree-sum entries
        (tens of bytes per *edge* of every transmitter), not the
        ~``STREAM_CELL_BYTES`` per (step, node) cell the budget model
        assumes. Routed dense, the kernel working set is the model's —
        the peak stays within a small multiple of the budget.
        """
        budget = 512 << 10  # 512 KiB: 8-row chunks at n = 1000
        report, peak = measure_peak(
            lambda: run(
                "eed",
                dense_net,
                seed=9,
                config=EEDConfig(p=0.5, C=2),
                policy=ExecutionPolicy(mem_budget=budget),
            )
        )
        assert int(report.result.high.sum()) > 0
        # Measured: ~2.1x the budget with pre-emption, ~7.4x without
        # (the mid-ladder chunks' COO output — hundreds of entries per
        # transmitter at mean degree n/2 — is what blew the model;
        # the levels under the pre-emption factor still run sparse,
        # hence the margin above 1x). The 3x ceiling cleanly separates
        # the two while leaving slack for numpy-version drift.
        assert peak <= 3 * budget, (
            f"streamed EED peak {peak} bytes blew the {budget}-byte "
            "budget's margin; dense pre-emption regressed?"
        )
