"""Tests for the round-cost formulas of the accounted pipeline."""

from __future__ import annotations

import math

import pytest

from repro.core import CostModel, propagation_length, total_bound


class TestCostModel:
    def test_mis_rounds_cubic_in_log(self):
        model = CostModel()
        assert model.mis_rounds(2**10) == 1000  # (log2 1024)^3

    def test_partition_rounds_scale_inverse_beta(self):
        model = CostModel()
        assert model.partition_rounds(256, 0.5) * 2 == pytest.approx(
            model.partition_rounds(256, 0.25), rel=0.01
        )

    def test_partition_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            CostModel().partition_rounds(100, 0.0)

    def test_schedule_rounds_polylog(self):
        model = CostModel()
        assert model.schedule_rounds(2**8) == 64

    def test_sequence_rounds_additive_length(self):
        model = CostModel()
        base = model.sequence_rounds(256, 100, 0)
        assert model.sequence_rounds(256, 100, 50) == base + 50

    def test_sequence_rejects_negative_length(self):
        with pytest.raises(ValueError):
            CostModel().sequence_rounds(100, 10, -1)

    def test_icp_rounds_linear_in_ell(self):
        model = CostModel()
        assert model.icp_rounds(40) == 40
        assert model.icp_rounds(0) == 1  # floor at one round

    def test_constants_scale_linearly(self):
        cheap = CostModel()
        pricey = CostModel(c_mis=3.0)
        assert pricey.mis_rounds(2**10) == 3 * cheap.mis_rounds(2**10)


class TestPropagationLength:
    def test_inverse_beta_scaling(self):
        a = propagation_length(0.5, alpha=100, diameter=10)
        b = propagation_length(0.25, alpha=100, diameter=10)
        assert b == pytest.approx(2 * a, rel=0.1)

    def test_alpha_n_reduces_to_cd21_form(self):
        # With alpha = n the length matches log(n)/log(D) / beta.
        n, d, beta = 4096, 16, 0.25
        ell = propagation_length(beta, alpha=n, diameter=d)
        assert ell == math.ceil((math.log(n) / math.log(d)) / beta)

    def test_alpha_smaller_than_n_gives_shorter_phases(self):
        d, beta = 32, 0.125
        short = propagation_length(beta, alpha=64, diameter=d)
        long = propagation_length(beta, alpha=10**6, diameter=d)
        assert short < long

    def test_floor_at_one_over_beta_regime(self):
        # alpha < D clamps log_D alpha to 1: ell = ceil(1/beta).
        assert propagation_length(0.25, alpha=3, diameter=100) == 4

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            propagation_length(0.0, alpha=10, diameter=10)


class TestTotalBound:
    def test_growth_bounded_graphs_get_linear_leading_term(self):
        # alpha = D^2 (UDG-like): bound ~ 2D + polylog.
        d = 64
        bound = total_bound(n=5000, diameter=d, alpha=d**2)
        assert bound == pytest.approx(2 * d + math.log2(5000) ** 4, rel=0.01)

    def test_general_graph_reduces_to_cd21(self):
        n, d = 2**16, 16
        bound = total_bound(n=n, diameter=d, alpha=n)
        expected = d * (math.log(n) / math.log(d)) + math.log2(n) ** 4
        assert bound == pytest.approx(expected, rel=0.01)

    def test_monotone_in_alpha(self):
        assert total_bound(1000, 50, 100) <= total_bound(1000, 50, 1000)
