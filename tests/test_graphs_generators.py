"""Tests for the graph generators (UDG, quasi-UDG, unit ball, geometric
radio, general families) — structural invariants of every class."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.graphs import EuclideanBox, FlatTorus, ManhattanBox


class TestUDG:
    def test_edge_rule_is_distance_threshold(self, rng):
        points = rng.uniform(0, 3, size=(25, 2))
        g = graphs.udg_from_points(points, radius=1.0)
        for u, v in g.edges:
            assert np.linalg.norm(points[u] - points[v]) <= 1.0
        for u in range(25):
            for v in range(u + 1, 25):
                if np.linalg.norm(points[u] - points[v]) <= 1.0:
                    assert g.has_edge(u, v)

    def test_random_udg_connected(self, rng):
        g = graphs.random_udg(n=60, side=4.0, rng=rng)
        assert nx.is_connected(g)

    def test_random_udg_unconnected_allowed(self, rng):
        g = graphs.random_udg(n=10, side=50.0, rng=rng, connected=False)
        assert g.number_of_nodes() == 10

    def test_random_udg_too_sparse_raises(self, rng):
        with pytest.raises(ValueError):
            graphs.random_udg(n=5, side=100.0, rng=rng, max_attempts=3)

    def test_positions_stored(self, rng):
        g = graphs.random_udg(n=10, side=2.0, rng=rng)
        assert all("pos" in g.nodes[v] for v in g.nodes)

    def test_family_tag(self, rng):
        assert graphs.random_udg(20, 2.0, rng).graph["family"] == "udg"

    def test_grid_udg_shape(self, rng):
        g = graphs.grid_udg(4, 6, rng)
        assert g.number_of_nodes() == 24
        assert nx.is_connected(g)

    def test_grid_udg_diameter_scales_with_size(self, rng):
        small = graphs.grid_udg(2, 5, rng)
        large = graphs.grid_udg(2, 15, rng)
        assert nx.diameter(large) > nx.diameter(small)

    def test_grid_udg_oversized_jitter_refused(self, rng):
        # Regression: the old bound allowed jitter up to
        # (radius - spacing)/2 + spacing, so jitter=0.9 at the default
        # spacing slipped through and could disconnect the grid.
        with pytest.raises(ValueError, match="jitter"):
            graphs.grid_udg(3, 3, rng, jitter=0.9)

    def test_grid_udg_default_jitter_still_accepted(self, rng):
        # The fixed bound must not round the defaults out of range
        # ((1.0 - 0.9) / 2 < 0.05 in float64; the sum form does not).
        g = graphs.grid_udg(3, 3, rng, spacing=0.9, jitter=0.05)
        assert g.number_of_nodes() == 9

    def test_grid_udg_jitter_at_exact_bound_accepted(self, rng):
        g = graphs.grid_udg(3, 3, rng, spacing=0.8, jitter=0.1)
        assert nx.is_connected(g)

    def test_clustered_udg_node_count(self, rng):
        g = graphs.clustered_udg(3, 10, rng)
        assert g.number_of_nodes() == 30

    def test_granularity_positive(self, rng):
        g = graphs.random_udg(n=30, side=3.0, rng=rng)
        assert graphs.granularity(g) > 0

    def test_granularity_needs_two_nodes(self, rng):
        g = graphs.udg_from_points(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            graphs.granularity(g)

    def test_rejects_bad_point_shape(self):
        with pytest.raises(ValueError):
            graphs.udg_from_points(np.zeros((4, 3)))


class TestQuasiUDG:
    def test_inner_radius_edges_mandatory(self, rng):
        points = rng.uniform(0, 3, size=(30, 2))
        g = graphs.qudg_from_points(points, r=0.7, R=1.0, rng=rng)
        for u in range(30):
            for v in range(u + 1, 30):
                d = np.linalg.norm(points[u] - points[v])
                if d <= 0.7:
                    assert g.has_edge(u, v)
                if d > 1.0:
                    assert not g.has_edge(u, v)

    def test_bernoulli_rule_extremes(self, rng):
        points = rng.uniform(0, 2.5, size=(30, 2))
        g_none = graphs.qudg_from_points(
            points, 0.5, 1.0, rng, annulus_rule=graphs.bernoulli_rule(0.0)
        )
        g_all = graphs.qudg_from_points(
            points, 0.5, 1.0, rng, annulus_rule=graphs.bernoulli_rule(1.0)
        )
        assert g_none.number_of_edges() <= g_all.number_of_edges()

    def test_p1_rule_equals_udg_with_outer_radius(self, rng):
        points = rng.uniform(0, 2.5, size=(25, 2))
        qudg = graphs.qudg_from_points(
            points, 0.5, 1.0, rng, annulus_rule=graphs.bernoulli_rule(1.0)
        )
        udg = graphs.udg_from_points(points, radius=1.0)
        assert set(qudg.edges) == set(udg.edges)

    def test_threshold_rule_is_deterministic_udg(self, rng):
        points = rng.uniform(0, 2.5, size=(25, 2))
        rule = graphs.distance_threshold_rule(0.8)
        qudg = graphs.qudg_from_points(points, 0.5, 1.0, rng, annulus_rule=rule)
        udg = graphs.udg_from_points(points, radius=0.8)
        # Edge sets agree up to boundary ties (d exactly 0.8), measure zero.
        assert set(qudg.edges) == set(udg.edges)

    def test_parity_rule_reproducible(self, rng):
        points = rng.uniform(0, 2.5, size=(20, 2))
        rule = graphs.parity_rule()
        g1 = graphs.qudg_from_points(points, 0.5, 1.0, rng, annulus_rule=rule)
        g2 = graphs.qudg_from_points(points, 0.5, 1.0, rng, annulus_rule=rule)
        assert set(g1.edges) == set(g2.edges)

    def test_random_qudg_connected(self, rng):
        g = graphs.random_qudg(n=60, side=4.0, rng=rng)
        assert nx.is_connected(g)

    def test_invalid_radii_raise(self, rng):
        with pytest.raises(ValueError):
            graphs.qudg_from_points(np.zeros((3, 2)), r=1.0, R=0.5, rng=rng)

    def test_bernoulli_rule_validates_probability(self):
        with pytest.raises(ValueError):
            graphs.bernoulli_rule(1.5)


class TestUnitBall:
    def test_euclidean_unit_ball_matches_udg(self, rng):
        space = EuclideanBox(dim=2, side=3.0)
        points = space.sample(25, rng)
        ubg = graphs.unit_ball_graph(space, points)
        udg = graphs.udg_from_points(points)
        assert set(ubg.edges) == set(udg.edges)

    def test_manhattan_differs_from_euclidean(self, rng):
        # L1 balls are smaller than L2 would suggest at the corners; with
        # enough points the edge sets differ.
        euclid = EuclideanBox(dim=2, side=2.0)
        manhattan = ManhattanBox(dim=2, side=2.0)
        points = euclid.sample(40, rng)
        g_l2 = graphs.unit_ball_graph(euclid, points)
        g_l1 = graphs.unit_ball_graph(manhattan, points)
        # L1 distance >= L2 distance, so L1 edges are a subset.
        assert set(g_l1.edges) <= set(g_l2.edges)

    def test_torus_wraps(self, rng):
        space = FlatTorus(dim=2, side=10.0)
        points = np.array([[0.1, 5.0], [9.9, 5.0]])  # close across the seam
        g = graphs.unit_ball_graph(space, points)
        assert g.has_edge(0, 1)

    def test_3d_unit_ball(self, rng):
        space = EuclideanBox(dim=3, side=2.0)
        g = graphs.random_unit_ball_graph(space, 40, rng)
        assert nx.is_connected(g)

    def test_quasi_unit_ball_annulus_rules(self, rng):
        space = EuclideanBox(dim=2, side=2.5)
        points = space.sample(30, rng)
        g0 = graphs.quasi_unit_ball_graph(
            space, points, r=0.5, R=1.0, rng=rng, annulus_probability=0.0
        )
        g1 = graphs.quasi_unit_ball_graph(
            space, points, r=0.5, R=1.0, rng=rng, annulus_probability=1.0
        )
        assert set(g0.edges) <= set(g1.edges)

    def test_quasi_unit_ball_validates(self, rng):
        space = EuclideanBox()
        with pytest.raises(ValueError):
            graphs.quasi_unit_ball_graph(
                space, np.zeros((3, 2)), r=2.0, R=1.0, rng=rng
            )


class TestGeometricRadio:
    def test_directed_edges_follow_ranges(self, rng):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        ranges = np.array([1.5, 0.5])
        dg = graphs.directed_geometric_radio(points, ranges)
        assert dg.has_edge(0, 1)  # 0 reaches 1
        assert not dg.has_edge(1, 0)  # 1's range too short

    def test_undirected_keeps_mutual_pairs_only(self, rng):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.9]])
        ranges = np.array([1.5, 0.5, 1.0])
        g = graphs.undirected_geometric_radio(points, ranges)
        assert not g.has_edge(0, 1)  # asymmetric pair dropped
        assert g.has_edge(0, 2)  # mutual

    def test_undirected_is_subgraph_of_directed(self, rng):
        points = rng.uniform(0, 3, size=(20, 2))
        ranges = rng.uniform(0.8, 1.2, size=20)
        g = graphs.undirected_geometric_radio(points, ranges)
        dg = graphs.directed_geometric_radio(points, ranges)
        for u, v in g.edges:
            assert dg.has_edge(u, v) and dg.has_edge(v, u)

    def test_random_geometric_radio_connected(self, rng):
        g = graphs.random_geometric_radio(n=60, side=4.0, rng=rng)
        assert nx.is_connected(g)

    def test_equal_ranges_reduce_to_udg(self, rng):
        points = rng.uniform(0, 3, size=(25, 2))
        ranges = np.ones(25)
        g = graphs.undirected_geometric_radio(points, ranges)
        udg = graphs.udg_from_points(points, radius=1.0)
        assert set(g.edges) == set(udg.edges)

    def test_rejects_nonpositive_ranges(self):
        with pytest.raises(ValueError):
            graphs.undirected_geometric_radio(
                np.zeros((2, 2)), np.array([1.0, 0.0])
            )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            graphs.undirected_geometric_radio(np.zeros((3, 2)), np.ones(2))


class TestGeneralFamilies:
    def test_path_parameters(self):
        g = graphs.path(9)
        assert nx.diameter(g) == 8
        assert graphs.exact_independence_number(g) == 5

    def test_cycle_parameters(self):
        g = graphs.cycle(10)
        assert nx.diameter(g) == 5
        assert graphs.exact_independence_number(g) == 5

    def test_clique_parameters(self):
        g = graphs.clique(7)
        assert nx.diameter(g) == 1
        assert graphs.exact_independence_number(g) == 1

    def test_star_parameters(self):
        g = graphs.star(9)
        assert nx.diameter(g) == 2
        assert graphs.exact_independence_number(g) == 8

    def test_connected_gnp_is_connected(self, rng):
        g = graphs.connected_gnp(50, 0.15, rng)
        assert nx.is_connected(g)

    def test_connected_gnp_below_threshold_raises(self, rng):
        with pytest.raises(ValueError):
            graphs.connected_gnp(200, 0.001, rng, max_attempts=3)

    def test_random_tree_is_tree(self, rng):
        g = graphs.random_tree(30, rng)
        assert nx.is_tree(g)

    def test_clique_chain_alpha_equals_chain_length(self):
        g = graphs.clique_chain(n_cliques=5, clique_size=6)
        assert g.number_of_nodes() == 30
        assert nx.is_connected(g)
        assert graphs.exact_independence_number(g) == 5

    def test_clique_chain_diameter_scales(self):
        short = graphs.clique_chain(3, 4)
        long = graphs.clique_chain(9, 4)
        assert nx.diameter(long) > nx.diameter(short)

    def test_caterpillar_alpha(self):
        g = graphs.caterpillar(spine=6, legs_per_node=3)
        assert g.number_of_nodes() == 6 + 18
        assert graphs.exact_independence_number(g) == 18

    def test_barbell_and_lollipop_connected(self):
        assert nx.is_connected(graphs.barbell(5, 4))
        assert nx.is_connected(graphs.lollipop(5, 6))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            graphs.path(0)
        with pytest.raises(ValueError):
            graphs.cycle(2)
        with pytest.raises(ValueError):
            graphs.star(1)
        with pytest.raises(ValueError):
            graphs.clique_chain(0, 3)

    def test_all_families_tagged(self, rng):
        for g, family in [
            (graphs.path(4), "path"),
            (graphs.cycle(4), "cycle"),
            (graphs.clique(4), "clique"),
            (graphs.star(4), "star"),
            (graphs.random_tree(8, rng), "tree"),
            (graphs.clique_chain(2, 3), "clique-chain"),
            (graphs.barbell(3, 2), "barbell"),
            (graphs.lollipop(3, 2), "lollipop"),
            (graphs.caterpillar(3, 1), "caterpillar"),
        ]:
            assert g.graph["family"] == family

    def test_integer_labels_zero_based(self, rng):
        for g in [
            graphs.path(5),
            graphs.clique_chain(2, 4),
            graphs.caterpillar(3, 2),
            graphs.random_tree(7, rng),
        ]:
            assert set(g.nodes) == set(range(g.number_of_nodes()))
