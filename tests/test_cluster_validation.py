"""Edge-case tests for the Clustering type and schedule corner cases."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.core import Clustering, build_schedule, partition
from repro.graphs import greedy_independent_set


class TestClusteringValidate:
    def test_valid_clustering_passes(self, rng):
        g = graphs.random_udg(30, 2.5, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.3, mis, rng)
        clustering.validate(g, None)  # should not raise

    def test_assignment_to_non_center_caught(self):
        g = graphs.path(4)
        broken = Clustering(
            beta=0.5,
            centers=[0],
            assignment=np.array([0, 0, 3, 3]),  # 3 is not a center
            distance_to_center=np.array([0, 1, 0, 0]),
            delta={0: 1.0},
        )
        with pytest.raises(AssertionError):
            broken.validate(g, None)

    def test_disconnected_cluster_caught(self):
        g = graphs.path(5)
        broken = Clustering(
            beta=0.5,
            centers=[0, 2],
            # Cluster of 0 is {0, 4}: not connected in the path.
            assignment=np.array([0, 2, 2, 2, 0]),
            distance_to_center=np.array([0, 1, 0, 1, 4]),
            delta={0: 1.0, 2: 1.0},
        )
        with pytest.raises(AssertionError):
            broken.validate(g, None)

    def test_members_and_used_centers_agree(self, rng):
        g = graphs.connected_gnp(30, 0.15, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.4, mis, rng)
        assert sorted(clustering.members()) == clustering.used_centers()

    def test_n_property(self, rng):
        g = graphs.path(7)
        clustering = partition(g, 0.5, [0, 6], rng)
        assert clustering.n == 7


class TestScheduleCornerCases:
    def test_singleton_clusters(self, rng):
        # beta huge -> shifts ~0 -> every center keeps only itself and
        # its captured neighbors; many near-singleton clusters.
        g = graphs.clique(6)
        clustering = partition(g, 50.0, list(range(6)), rng)
        schedule = build_schedule(g, clustering)
        assert schedule.n_layers >= 1
        assert schedule.n_colors >= 1

    def test_single_cluster_path(self, rng):
        g = graphs.path(9)
        clustering = partition(g, 0.5, [4], rng)
        schedule = build_schedule(g, clustering)
        # Layers reflect BFS depth from the middle of the path.
        assert schedule.n_layers == 5
        # A path's square has clique number 3, so >= 3 colors.
        assert schedule.n_colors >= 3

    def test_two_node_graph(self, rng):
        g = graphs.path(2)
        clustering = partition(g, 0.5, [0], rng)
        schedule = build_schedule(g, clustering)
        assert schedule.layer[0] == 0
        assert schedule.layer[1] == 1


class TestPartitionDegenerateBetas:
    def test_tiny_beta_single_cluster_often(self, rng):
        # beta -> 0 means enormous shifts: typically one center swallows
        # the graph.
        g = graphs.path(20)
        clustering = partition(g, 1e-6, [0, 10, 19], rng)
        assert len(clustering.used_centers()) >= 1

    def test_huge_beta_every_center_survives(self, rng):
        g = graphs.path(20)
        centers = [0, 5, 10, 15, 19]
        clustering = partition(g, 100.0, centers, rng)
        # With negligible shifts, every center owns at least itself.
        assert clustering.used_centers() == centers

    def test_beta_reproducibility_with_seed(self):
        g = graphs.path(15)
        a = partition(g, 0.3, [0, 7, 14], np.random.default_rng(3))
        b = partition(g, 0.3, [0, 7, 14], np.random.default_rng(3))
        assert (a.assignment == b.assignment).all()
