"""Tests for the round-accounted Compete pipeline (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import CompeteConfig, compete
from repro.radio import GraphContractError


class TestDelivery:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: graphs.random_udg(80, 4.5, rng),
            lambda rng: graphs.connected_gnp(50, 0.12, rng),
            lambda rng: graphs.clique_chain(5, 5),
            lambda rng: graphs.path(40),
            lambda rng: graphs.random_tree(40, rng),
        ],
        ids=["udg", "gnp", "chain", "path", "tree"],
    )
    def test_single_source_delivers_everywhere(self, maker, rng):
        g = maker(rng)
        result = compete(g, {0: 1}, rng)
        assert result.delivered
        assert all(k == 1 for k in result.knowledge.values())

    def test_highest_message_wins(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        sources = {0: 3, 10: 9, 20: 5}
        result = compete(g, sources, rng)
        assert result.winner == 9
        assert all(k == 9 for k in result.knowledge.values())

    def test_all_centers_baseline_delivers(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        config = CompeteConfig(centers_mode="all")
        result = compete(g, {0: 1}, rng, config=config)
        assert result.delivered
        assert result.mis_size == g.number_of_nodes()

    def test_clique_degenerate_diameter(self, rng):
        result = compete(graphs.clique(12), {3: 4}, rng)
        assert result.delivered

    def test_two_node_graph(self, rng):
        result = compete(graphs.path(2), {0: 1}, rng)
        assert result.delivered


class TestValidation:
    def test_rejects_disconnected(self, rng):
        import networkx as nx

        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphContractError):
            compete(g, {0: 1}, rng)

    def test_rejects_non_integer_labels(self, rng):
        import networkx as nx

        g = nx.Graph([("a", "b")])
        with pytest.raises(GraphContractError):
            compete(g, {"a": 1}, rng)

    def test_rejects_empty_sources(self, rng):
        with pytest.raises(ValueError):
            compete(graphs.path(4), {}, rng)

    def test_rejects_negative_keys(self, rng):
        with pytest.raises(ValueError):
            compete(graphs.path(4), {0: -2}, rng)

    def test_rejects_bad_centers_mode(self):
        with pytest.raises(ValueError):
            CompeteConfig(centers_mode="banana")


class TestLedger:
    def test_ledger_has_setup_and_propagation(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        result = compete(g, {0: 1}, rng)
        assert result.ledger.setup_total > 0
        assert result.ledger.propagation_total > 0
        assert (
            result.total_rounds
            == result.ledger.setup_total + result.ledger.propagation_total
        )

    def test_mis_charged_only_in_mis_mode(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        ours = compete(g, {0: 1}, rng)
        baseline = compete(
            g, {0: 1}, rng, config=CompeteConfig(centers_mode="all")
        )
        assert any("ComputeMIS" in r for r in ours.ledger.by_reason())
        assert not any("ComputeMIS" in r for r in baseline.ledger.by_reason())

    def test_phase_records_monotone_informed(self, rng):
        g = graphs.random_udg(70, 4.5, rng)
        result = compete(g, {0: 1}, rng)
        for record in result.phases:
            assert record.informed_after >= record.informed_before
        assert result.phases[-1].informed_after == g.number_of_nodes()

    def test_icp_reason_present(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        result = compete(g, {0: 1}, rng)
        assert "ICP phases" in result.ledger.by_reason()


class TestAlphaParametrization:
    def test_alpha_estimate_defaults_to_mis_size(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        result = compete(g, {0: 1}, rng)
        assert result.alpha_used == result.mis_size

    def test_explicit_alpha_respected(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        result = compete(g, {0: 1}, rng, alpha=17)
        assert result.alpha_used == 17

    def test_low_alpha_general_graph_beats_baseline_on_propagation(self, rng):
        # Clique chains: alpha ~ D << n. Averaged over trials, the
        # MIS-parametrized propagation term should not exceed the
        # n-parametrized baseline's (ell is strictly smaller).
        g = graphs.clique_chain(8, 10)  # n=80, alpha=8
        ours, base = [], []
        for seed in range(5):
            r = np.random.default_rng(seed)
            ours.append(compete(g, {0: 1}, r).propagation_rounds)
            r = np.random.default_rng(seed)
            base.append(
                compete(
                    g, {0: 1}, r, config=CompeteConfig(centers_mode="all")
                ).propagation_rounds
            )
        assert np.mean(ours) <= np.mean(base) * 1.1


class TestDeterminism:
    def test_same_seed_same_ledger(self):
        g = graphs.clique_chain(4, 6)
        r1 = compete(g, {0: 1}, np.random.default_rng(3))
        r2 = compete(g, {0: 1}, np.random.default_rng(3))
        assert r1.total_rounds == r2.total_rounds
        assert len(r1.phases) == len(r2.phases)
