"""Budget accounting across every engine execution strategy.

``WindowedRunner(max_steps=...)`` must charge multiplexed joint windows
and dense-path windows exactly as the step-wise drivers count steps —
one charge per radio step, raised *before* the segment that would
overshoot executes — plus the documented edge cases: ``coin_chunk`` at
``n = 0`` and the empty (``w = 0``) window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import build_schedule, partition
from repro.core.intra_cluster import (
    DecayBackground,
    DecayBackgroundSource,
    ICPProtocol,
    intra_cluster_propagation,
)
from repro.engine import (
    COIN_BUDGET,
    ObliviousWindow,
    ProtocolSegmentSource,
    WindowedRunner,
    coin_chunk,
    multiplex,
    run_schedule,
)
from repro.graphs import greedy_independent_set
from repro.radio import BudgetExceededError, RadioNetwork


def _icp_fixture(seed: int = 0):
    g = graphs.random_udg(50, 3.0, np.random.default_rng(seed))
    setup = np.random.default_rng(seed + 1)
    mis = sorted(greedy_independent_set(g, setup, "random"))
    clustering = partition(g, 0.3, mis, setup)
    schedule = build_schedule(g, clustering)
    know = np.full(50, -1, dtype=np.int64)
    know[0] = 2
    return g, clustering, schedule, know


def _fused_schedule(net, clustering, schedule, know, rng, max_steps=None):
    main = ICPProtocol(net, schedule, know, 3)
    total = sum(len(p.slots) for p in main._passes)
    return total, multiplex(
        ProtocolSegmentSource(main, steps=total),
        DecayBackgroundSource(DecayBackground(net, clustering, know)),
        rng=rng,
        max_steps=max_steps,
    )


class TestMultiplexedBudget:
    def test_charges_match_stepwise_drivers(self):
        # The fused run must charge exactly the steps the reference
        # executes: 2 * slots - 1 (the reference stops at the finished
        # check after main's last observe).
        g, clustering, schedule, know = _icp_fixture()
        ref = intra_cluster_propagation(
            RadioNetwork(g), clustering, schedule, know.copy(), 3,
            np.random.default_rng(5), engine="reference",
        )
        net = RadioNetwork(g)
        runner = WindowedRunner(net)
        total, fused = _fused_schedule(
            net, clustering, schedule, know.copy(), np.random.default_rng(5)
        )
        runner.run(fused)
        assert runner.steps_executed == ref.steps == 2 * total - 1
        assert net.steps_elapsed == ref.steps

    def test_exact_budget_completes(self):
        g, clustering, schedule, know = _icp_fixture()
        net = RadioNetwork(g)
        total, fused = _fused_schedule(
            net, clustering, schedule, know, np.random.default_rng(5)
        )
        runner = WindowedRunner(net, max_steps=2 * total - 1)
        runner.run(fused)
        assert runner.steps_executed == 2 * total - 1

    def test_raise_before_execute_at_window_boundary(self):
        # One step short: the runner must raise before executing the
        # joint window that would overshoot, leaving the network at a
        # window boundary below the budget.
        g, clustering, schedule, know = _icp_fixture()
        net = RadioNetwork(g)
        total, fused = _fused_schedule(
            net, clustering, schedule, know, np.random.default_rng(5)
        )
        budget = 2 * total - 2
        runner = WindowedRunner(net, max_steps=budget)
        with pytest.raises(BudgetExceededError):
            runner.run(fused)
        assert runner.steps_executed <= budget
        assert net.steps_elapsed == runner.steps_executed

    def test_mux_max_steps_vs_runner_budget(self):
        # multiplex's own max_steps trims the joint stream instead of
        # raising; the runner budget then passes.
        g, clustering, schedule, know = _icp_fixture()
        net = RadioNetwork(g)
        _, fused = _fused_schedule(
            net, clustering, schedule, know, np.random.default_rng(5),
            max_steps=41,
        )
        runner = WindowedRunner(net, max_steps=41)
        runner.run(fused)
        assert runner.steps_executed == net.steps_elapsed == 41


class TestDeliveryPathBudget:
    @pytest.mark.parametrize("delivery", ["auto", "sparse", "dense"])
    def test_dense_and_sparse_charge_identically(self, delivery):
        net = RadioNetwork(graphs.path(30))
        runner = WindowedRunner(net, max_steps=12, delivery=delivery)
        masks = np.random.default_rng(0).random((12, 30)) < 0.5

        def emit():
            yield ObliviousWindow(masks[:5])
            yield ObliviousWindow(masks[5:])

        runner.run(emit())
        assert runner.steps_executed == 12
        assert net.steps_elapsed == 12
        assert net.trace.total_steps == 12

    @pytest.mark.parametrize("delivery", ["sparse", "dense"])
    def test_overshoot_raises_regardless_of_path(self, delivery):
        net = RadioNetwork(graphs.path(30))
        runner = WindowedRunner(net, max_steps=7, delivery=delivery)
        masks = np.random.default_rng(0).random((8, 30)) < 0.5

        def emit():
            yield ObliviousWindow(masks)

        with pytest.raises(BudgetExceededError):
            runner.run(emit())
        assert net.steps_elapsed == 0  # raised before executing

    def test_runner_validates_delivery(self):
        net = RadioNetwork(graphs.path(5))
        with pytest.raises(ValueError, match="delivery"):
            WindowedRunner(net, delivery="gpu")
        with pytest.raises(ValueError, match="delivery"):
            run_schedule(net, iter(()), delivery="bogus")


class TestEdgeCases:
    def test_coin_chunk_n_zero(self):
        # n = 0 must not divide by zero; the chunk degenerates to the
        # whole budget (there are no per-node coins to bound).
        assert coin_chunk(0) == COIN_BUDGET
        assert coin_chunk(0, budget=17) == 17
        assert coin_chunk(1) == COIN_BUDGET
        # And stays >= 1 even for absurd sizes.
        assert coin_chunk(10 * COIN_BUDGET) == 1

    def test_empty_window_charges_nothing(self):
        net = RadioNetwork(graphs.path(6))
        runner = WindowedRunner(net, max_steps=0)

        collected = {}

        def emit():
            collected["reply"] = yield ObliviousWindow(
                np.zeros((0, 6), dtype=bool)
            )
            return "done"

        assert runner.run(emit()) == "done"
        assert runner.steps_executed == 0
        assert net.steps_elapsed == 0
        assert net.trace.total_steps == 0
        assert collected["reply"].shape == (0, 6)

    def test_empty_window_all_modes(self):
        for mode in ("auto", "sparse", "dense"):
            net = RadioNetwork(graphs.path(6))
            out = net.deliver_window(np.zeros((0, 6), dtype=bool), mode)
            assert out.shape == (0, 6)
            assert net.steps_elapsed == 0
