"""Tests for MPX clustering: Partition(beta, centers) and its invariants."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.core import beta_of_j, coarse_beta, draw_shifts, j_range, partition
from repro.graphs import greedy_independent_set


class TestPartitionBasics:
    def test_every_node_assigned_to_a_center(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.3, mis, rng)
        assert set(clustering.assignment.tolist()) <= set(mis)
        assert (clustering.distance_to_center >= 0).all()

    def test_assignment_minimizes_shifted_distance(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        mis = sorted(greedy_independent_set(g))
        shifts = draw_shifts(mis, 0.3, rng)
        clustering = partition(g, 0.3, mis, rng, shifts=shifts)
        dist = dict(nx.all_pairs_shortest_path_length(g))
        for v in g.nodes:
            chosen = int(clustering.assignment[v])
            best = min(dist[v][c] - shifts[c] for c in mis)
            achieved = dist[v][chosen] - shifts[chosen]
            assert achieved == pytest.approx(best)

    def test_distance_to_center_is_true_hop_distance(self, rng):
        g = graphs.connected_gnp(35, 0.15, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.25, mis, rng)
        dist = dict(nx.all_pairs_shortest_path_length(g))
        for v in g.nodes:
            c = int(clustering.assignment[v])
            assert clustering.distance_to_center[v] == dist[v][c]

    def test_clusters_are_connected(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.25, mis, rng)
        clustering.validate(g, None)

    def test_used_centers_own_themselves(self, rng):
        g = graphs.connected_gnp(40, 0.12, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.3, mis, rng)
        for c in clustering.used_centers():
            assert clustering.assignment[c] == c
            assert clustering.distance_to_center[c] == 0

    def test_all_nodes_as_centers_supported(self, rng):
        # The [7]/[18] baseline mode.
        g = graphs.random_udg(40, 3.0, rng)
        clustering = partition(g, 0.3, list(g.nodes), rng)
        assert clustering.n == 40

    def test_single_center_captures_everything(self, rng):
        g = graphs.path(12)
        clustering = partition(g, 0.5, [0], rng)
        assert (clustering.assignment == 0).all()
        assert clustering.radius(0) == 11

    def test_requires_centers(self, rng):
        with pytest.raises(ValueError):
            partition(graphs.path(4), 0.5, [], rng)

    def test_requires_positive_beta(self, rng):
        with pytest.raises(ValueError):
            partition(graphs.path(4), 0.0, [0], rng)

    def test_requires_integer_labels(self, rng):
        g = nx.Graph([("a", "b")])
        with pytest.raises(ValueError):
            partition(g, 0.5, ["a"], rng)

    def test_unreachable_nodes_raise(self, rng):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            partition(g, 0.5, [0], rng)

    def test_missing_shift_raises(self, rng):
        g = graphs.path(4)
        with pytest.raises(ValueError):
            partition(g, 0.5, [0, 3], rng, shifts={0: 1.0})


class TestClusterSizes:
    def test_smaller_beta_means_bigger_clusters(self, rng):
        # Mean shift is 1/beta: smaller beta -> larger shifts -> fewer,
        # larger clusters (statistically).
        g = graphs.grid_udg(8, 8, rng)
        mis = sorted(greedy_independent_set(g))
        sizes = {}
        for beta in (1.0, 0.05):
            counts = []
            for _ in range(8):
                clustering = partition(g, beta, mis, rng)
                counts.append(len(clustering.used_centers()))
            sizes[beta] = np.mean(counts)
        assert sizes[0.05] <= sizes[1.0]

    def test_cluster_diameter_order_log_over_beta(self, rng):
        # Whp the max cluster radius is O(log n / beta); check a generous
        # multiple as a sanity ceiling.
        g = graphs.grid_udg(10, 10, rng)
        mis = sorted(greedy_independent_set(g))
        beta = 0.5
        clustering = partition(g, beta, mis, rng)
        ceiling = 6 * math.log(g.number_of_nodes()) / beta
        assert clustering.max_radius() <= ceiling

    def test_mean_distance_below_max_radius(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.25, mis, rng)
        assert clustering.mean_distance() <= clustering.max_radius()


class TestShifts:
    def test_draw_shifts_exponential_mean(self, rng):
        shifts = draw_shifts(range(4000), 0.5, rng)
        assert np.mean(list(shifts.values())) == pytest.approx(2.0, rel=0.15)

    def test_draw_shifts_positive(self, rng):
        shifts = draw_shifts(range(100), 2.0, rng)
        assert all(s >= 0 for s in shifts.values())

    def test_draw_shifts_rejects_bad_beta(self, rng):
        with pytest.raises(ValueError):
            draw_shifts([0], -1.0, rng)


class TestParameterHelpers:
    def test_beta_of_j(self):
        assert beta_of_j(0) == 1.0
        assert beta_of_j(3) == 0.125
        with pytest.raises(ValueError):
            beta_of_j(-1)

    def test_coarse_beta(self):
        assert coarse_beta(100) == pytest.approx(0.1)
        assert coarse_beta(0) == pytest.approx(2**-0.5)

    def test_j_range_nonempty_and_positive(self):
        for d in (1, 2, 5, 20, 100, 10000):
            js = j_range(d)
            assert js
            assert all(j >= 1 for j in js)
            assert js == sorted(js)

    def test_j_range_grows_with_diameter(self):
        assert max(j_range(10**6)) >= max(j_range(4))

    @given(st.integers(min_value=1, max_value=10**6))
    def test_j_range_betas_at_most_half(self, d):
        assert all(beta_of_j(j) <= 0.5 for j in j_range(d))


class TestClusteringAccessors:
    def test_members_partition_the_nodes(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        mis = sorted(greedy_independent_set(g))
        clustering = partition(g, 0.3, mis, rng)
        members = clustering.members()
        seen = sorted(v for vs in members.values() for v in vs)
        assert seen == list(range(40))

    def test_radius_of_unused_center_raises(self, rng):
        g = graphs.path(10)
        clustering = partition(g, 0.5, [0, 9], rng)
        unused = [c for c in (0, 9) if c not in clustering.used_centers()]
        for c in unused:
            with pytest.raises(ValueError):
                clustering.radius(c)
