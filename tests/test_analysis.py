"""Tests for the experiment harness helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    TextTable,
    TrialStats,
    fit_power_law,
    geometric_sizes,
    run_trials,
    success_rate,
)


class TestTrialStats:
    def test_from_values(self):
        stats = TrialStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_single_value_has_zero_std(self):
        assert TrialStats.from_values([5.0]).std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TrialStats.from_values([])


class TestRunTrials:
    def test_reproducible_from_seed(self):
        def measure(rng):
            return float(rng.random())

        a = run_trials(measure, n_trials=5, seed=9)
        b = run_trials(measure, n_trials=5, seed=9)
        assert a == b

    def test_trials_are_independent(self):
        values = []

        def measure(rng):
            v = float(rng.random())
            values.append(v)
            return v

        run_trials(measure, n_trials=10, seed=1)
        assert len(set(values)) == 10

    def test_requires_positive_trials(self):
        with pytest.raises(ValueError):
            run_trials(lambda rng: 0.0, n_trials=0, seed=1)


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [3.0 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, -1.0], [1.0, 2.0])

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    @given(
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.5, max_value=10.0),
    )
    def test_recovers_random_power_laws(self, exponent, coefficient):
        xs = [1.0, 2.0, 5.0, 10.0, 30.0]
        ys = [coefficient * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, rel=1e-6)


class TestSuccessRate:
    def test_basic(self):
        assert success_rate([True, True, False, False]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            success_rate([])


class TestGeometricSizes:
    def test_endpoints_included(self):
        sizes = geometric_sizes(10, 1000, 5)
        assert sizes[0] == 10
        assert sizes[-1] == 1000

    def test_sorted_unique(self):
        sizes = geometric_sizes(5, 50, 20)
        assert sizes == sorted(set(sizes))

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 5, 3)


class TestTextTable:
    def test_render_contains_data(self):
        table = TextTable(["a", "b"], title="demo")
        table.add_row([1, 2.5])
        out = table.render()
        assert "demo" in out and "1" in out and "2.5" in out

    def test_row_length_checked(self):
        table = TextTable(["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_bool_formatting(self):
        table = TextTable(["ok"])
        table.add_row([True])
        assert "yes" in table.render()

    def test_float_formatting_small_and_large(self):
        table = TextTable(["x", "y"])
        table.add_row([0.0001234, 123456.0])
        out = table.render()
        assert "0.000123" in out and "1.23e+05" in out


class TestParallelFallbackWarnings:
    """The pickle probes must *name* a degraded path, never swallow it.

    Regression: both parallel runners used to catch the pickling
    failure silently and run serially — a pickling bug surfaced only as
    a mysterious slowdown."""

    def test_run_trials_parallel_warns_on_unpicklable_measure(self):
        from repro.analysis import run_trials_parallel

        with pytest.warns(RuntimeWarning, match="not picklable"):
            stats = run_trials_parallel(
                lambda r: float(r.random()), 3, seed=2, processes=2
            )
        # the fallback stays bit-identical to the serial path
        assert stats == run_trials(lambda r: float(r.random()), 3, seed=2)

    def test_warning_names_the_actual_failure(self):
        from repro.analysis import run_trials_parallel

        with pytest.warns(RuntimeWarning, match="PicklingError|pickle"):
            run_trials_parallel(
                lambda r: 0.0, 2, seed=0, processes=2
            )

    def test_run_report_trials_warns_on_unpicklable_payload(self):
        from repro.analysis import run_report_trials
        from repro import graphs

        g = graphs.random_udg(
            n=25, side=3.0, rng=np.random.default_rng(1)
        )
        # a config closure cannot cross a process boundary
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        g.graph["poison"] = Unpicklable()
        with pytest.warns(RuntimeWarning, match="running trials serially"):
            reports = run_report_trials(
                "decay", g, n_trials=2, seed=3, processes=2
            )
        assert len(reports) == 2
