"""Tests for the adversarial instance generators, and that the paper's
algorithms survive them."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import baselines, graphs
from repro.core import MISConfig, broadcast, compute_mis
from repro.graphs import (
    exact_independence_number,
    is_maximal_independent_set,
    layered_barrier,
    star_of_cliques,
    two_cliques_bottleneck,
)
from repro.radio import RadioNetwork


class TestLayeredBarrier:
    def test_connected_with_source_and_sink(self, rng):
        g = layered_barrier(4, 6, rng)
        assert nx.is_connected(g)
        assert 0 in g
        assert 1 + 4 * 6 in g  # the sink

    def test_node_count(self, rng):
        g = layered_barrier(3, 5, rng)
        assert g.number_of_nodes() == 1 + 3 * 5 + 1

    def test_diameter_scales_with_layers(self, rng):
        short = layered_barrier(2, 5, rng)
        long = layered_barrier(10, 5, rng)
        assert nx.diameter(long) > nx.diameter(short)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            layered_barrier(0, 5, rng)
        with pytest.raises(ValueError):
            layered_barrier(3, 5, rng, active_fraction=0.0)

    def test_broadcast_crosses_the_barrier(self, rng):
        g = layered_barrier(4, 6, rng)
        g = nx.convert_node_labels_to_integers(g)
        result = broadcast(g, 0, rng)
        assert result.delivered

    def test_bgi_crosses_the_barrier(self, rng):
        g = layered_barrier(4, 6, rng)
        net = RadioNetwork(g)
        assert baselines.bgi_broadcast(net, 0, rng).delivered


class TestTwoCliques:
    def test_structure(self):
        g = two_cliques_bottleneck(10)
        assert g.number_of_nodes() == 20
        assert nx.diameter(g) == 3
        assert exact_independence_number(g) == 2

    def test_broadcast_through_bottleneck(self, rng):
        g = two_cliques_bottleneck(15)
        result = broadcast(g, 0, rng)
        assert result.delivered

    def test_mis_on_bottleneck(self, rng):
        g = two_cliques_bottleneck(12)
        net = RadioNetwork(g)
        result = compute_mis(net, rng, MISConfig(oracle_degree=True))
        assert is_maximal_independent_set(g, result.mis)
        assert result.size <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            two_cliques_bottleneck(1)


class TestStarOfCliques:
    def test_structure(self):
        g = star_of_cliques(5, 8)
        assert g.number_of_nodes() == 1 + 5 * 8
        assert nx.is_connected(g)
        assert nx.diameter(g) == 4

    def test_alpha_counts_cliques_plus_hub(self):
        # One non-delegate per clique plus the hub (adjacent only to
        # delegates) is a maximum independent set.
        assert exact_independence_number(star_of_cliques(6, 5)) == 7

    def test_broadcast_from_hub(self, rng):
        g = star_of_cliques(4, 8)
        result = broadcast(g, 0, rng)
        assert result.delivered

    def test_broadcast_from_deep_member(self, rng):
        g = star_of_cliques(4, 8)
        result = broadcast(g, g.number_of_nodes() - 1, rng)
        assert result.delivered

    def test_mis_valid(self, rng):
        g = star_of_cliques(5, 6)
        net = RadioNetwork(g)
        result = compute_mis(net, rng, MISConfig(oracle_degree=True))
        assert is_maximal_independent_set(g, result.mis)

    def test_validation(self):
        with pytest.raises(ValueError):
            star_of_cliques(0, 5)
