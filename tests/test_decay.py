"""Tests for the Decay protocol (Algorithm 5 / Claim 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core.decay import (
    Decay,
    claim10_iterations,
    decay_span,
    run_decay,
)
from repro.radio import NO_SENDER, RadioNetwork


class TestSpanAndIterations:
    def test_span_grows_logarithmically(self):
        assert decay_span(2) == 1
        assert decay_span(16) == 4
        assert decay_span(17) == 5
        assert decay_span(1024) == 10

    def test_span_minimum_one(self):
        assert decay_span(1) == 1

    def test_span_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            decay_span(0)

    def test_claim10_iterations_scale(self):
        assert claim10_iterations(2, amplification=4.0) == 4
        assert claim10_iterations(256, amplification=4.0) == 32
        assert claim10_iterations(256, amplification=1.0) == 8


class TestSingleTransmitter:
    def test_lone_transmitter_always_heard_eventually(self, rng):
        g = graphs.star(10)
        net = RadioNetwork(g)
        active = np.zeros(net.n, dtype=bool)
        hub = net.index_of(0)
        active[hub] = True
        result = run_decay(net, active, rng, iterations=claim10_iterations(10))
        leaves = [net.index_of(v) for v in range(1, 10)]
        assert all(result.heard[v] for v in leaves)
        assert all(result.heard_from[v] == hub for v in leaves)

    def test_messages_delivered(self, rng):
        g = graphs.path(3)
        net = RadioNetwork(g)
        active = np.zeros(3, dtype=bool)
        active[net.index_of(1)] = True
        messages = [None] * 3
        messages[net.index_of(1)] = "payload"
        result = run_decay(net, active, rng, messages=messages, iterations=8)
        assert result.messages[net.index_of(0)] == "payload"
        assert result.messages[net.index_of(2)] == "payload"

    def test_non_neighbors_hear_nothing(self, rng):
        g = graphs.path(5)
        net = RadioNetwork(g)
        active = np.zeros(5, dtype=bool)
        active[net.index_of(0)] = True
        result = run_decay(net, active, rng, iterations=8)
        assert not result.heard[net.index_of(3)]
        assert result.heard_from[net.index_of(3)] == NO_SENDER
        assert result.messages[net.index_of(3)] is None


class TestClaim10:
    """Claim 10: O(log n) iterations inform all neighbors of S whp."""

    def test_dense_set_still_heard(self, rng):
        # All leaves of a star transmit; the hub must hear despite heavy
        # contention — the low-probability steps of the sweep resolve it.
        g = graphs.star(33)
        net = RadioNetwork(g)
        active = np.ones(net.n, dtype=bool)
        active[net.index_of(0)] = False
        result = run_decay(
            net, active, rng, iterations=claim10_iterations(33)
        )
        assert result.heard[net.index_of(0)]

    def test_clique_everyone_hears(self, rng):
        g = graphs.clique(32)
        net = RadioNetwork(g)
        active = np.ones(net.n, dtype=bool)
        result = run_decay(
            net, active, rng, iterations=claim10_iterations(32)
        )
        # Every node has all others as neighbors in S; whp all hear at
        # least one clean transmission across the amplified sweeps.
        assert result.heard.mean() > 0.9

    def test_success_rate_improves_with_iterations(self, rng):
        g = graphs.clique(16)
        hits_few, hits_many = 0, 0
        trials = 15
        for _ in range(trials):
            net = RadioNetwork(g)
            active = np.ones(net.n, dtype=bool)
            few = run_decay(net, active, rng, iterations=1)
            hits_few += int(few.heard.all())
            net2 = RadioNetwork(g)
            many = run_decay(net2, active, rng, iterations=12)
            hits_many += int(many.heard.all())
        assert hits_many >= hits_few

    def test_empty_active_set_hears_nothing(self, rng):
        g = graphs.path(4)
        net = RadioNetwork(g)
        result = run_decay(net, np.zeros(4, dtype=bool), rng, iterations=4)
        assert not result.heard.any()


class TestProtocolMechanics:
    def test_total_steps(self, rng):
        g = graphs.path(8)
        net = RadioNetwork(g)
        protocol = Decay(net, np.ones(8, dtype=bool), iterations=3)
        assert protocol.total_steps == 3 * decay_span(8)

    def test_n_estimate_controls_span(self, rng):
        g = graphs.path(4)
        net = RadioNetwork(g)
        protocol = Decay(
            net, np.ones(4, dtype=bool), iterations=1, n_estimate=1024
        )
        assert protocol.total_steps == 10

    def test_rejects_bad_mask_shape(self):
        g = graphs.path(4)
        net = RadioNetwork(g)
        with pytest.raises(ValueError):
            Decay(net, np.ones(3, dtype=bool))

    def test_rejects_bad_message_length(self):
        g = graphs.path(4)
        net = RadioNetwork(g)
        with pytest.raises(ValueError):
            Decay(net, np.ones(4, dtype=bool), messages=["x"])

    def test_transmit_probability_halves_within_sweep(self, rng):
        # Statistical check: step i transmits with probability 2^-i, so
        # over many draws the first step is busiest.
        g = graphs.clique(64)
        net = RadioNetwork(g)
        protocol = Decay(net, np.ones(64, dtype=bool), iterations=1)
        first = protocol.transmit_mask(rng).sum()
        protocol._step = decay_span(64) - 1  # jump to the last sweep step
        last = protocol.transmit_mask(rng).sum()
        assert first > last

    def test_first_heard_message_kept(self, rng):
        # heard_from records the first hearing only; a second hearing does
        # not overwrite it.
        g = graphs.path(3)
        net = RadioNetwork(g)
        active = np.zeros(3, dtype=bool)
        active[net.index_of(1)] = True
        protocol = Decay(net, active, iterations=20)
        middle_heard = []
        from repro.radio import run_steps

        run_steps(protocol, rng, protocol.total_steps)
        result = protocol.result()
        assert result.heard_from[net.index_of(0)] == net.index_of(1)
