"""Tests for the corpus layer (repro.corpus): array-native generation,
the mmap store, shared-memory workers, and the front-door integration.

The load-bearing contracts:

1. **Bit-compatibility** — the cell-grid generators consume the same
   rng stream and emit the same edge set as the networkx reference
   generators in :mod:`repro.graphs`, so corpora built either way are
   interchangeable.
2. **Round-trip fidelity** — generate, persist, mmap-load, run: the
   result, steps, trace totals, and final rng state are bit-identical
   to running on the in-memory original (and on the networkx twin).
3. **Zero-copy fan-out** — pooled trials receive the graph through
   shared memory; worker payloads carry a handle of a few hundred
   bytes, and parallel trials match serial ones bit-for-bit.
"""

from __future__ import annotations

import json
import pickle

import networkx as nx
import numpy as np
import pytest

import repro.api as api
from repro import corpus, graphs
from repro.analysis.experiments import (
    run_report_trials,
    run_trials,
    run_trials_parallel,
)
from repro.corpus import generate
from repro.corpus.generate import udg_csr
from repro.corpus.graph import CSRGraph
from repro.corpus.shm import SharedGraph, attach
from repro.graphs.quasi_udg import distance_threshold_rule, parity_rule
from repro.radio.errors import ProtocolError


def _edge_set(indptr: np.ndarray, indices: np.ndarray) -> set:
    out = set()
    for u in range(len(indptr) - 1):
        for v in indices[indptr[u]:indptr[u + 1]]:
            if u < v:
                out.add((u, int(v)))
    return out


def _nx_edge_set(g: nx.Graph) -> set:
    return {(min(u, v), max(u, v)) for u, v in g.edges}


# ---------------------------------------------------------------------------
# 1. Cell-grid generation: bit-compatible with the reference generators.
# ---------------------------------------------------------------------------


class TestGenerationParity:
    @pytest.mark.parametrize("side", [2.0, 4.0, 8.0])
    def test_udg_csr_matches_reference_edges(self, side):
        points = np.random.default_rng(17).uniform(0, side, size=(120, 2))
        indptr, indices = udg_csr(points, radius=1.0)
        ref = graphs.udg_from_points(points, radius=1.0)
        assert _edge_set(indptr, indices) == _nx_edge_set(ref)

    def test_boundary_distances_are_inclusive(self):
        # An exact integer grid puts many pairs at distance exactly 1.0
        # — the tie the reference's cKDTree keeps, so we must too.
        xs, ys = np.meshgrid(np.arange(8.0), np.arange(8.0))
        points = np.column_stack([xs.ravel(), ys.ravel()])
        indptr, indices = udg_csr(points, radius=1.0)
        ref = graphs.udg_from_points(points, radius=1.0)
        assert _edge_set(indptr, indices) == _nx_edge_set(ref)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_udg_csr_same_stream_same_edges(self, seed):
        # Same rng stream (connectivity retries included) and same
        # edge set as the networkx reference — the bit-compat contract.
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        g_csr = corpus.random_udg_csr(60, side=5.5, rng=rng_a)
        g_ref = graphs.random_udg(n=60, side=5.5, rng=rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
        assert _edge_set(*g_csr.csr_arrays()) == _nx_edge_set(g_ref)
        assert g_csr.graph["family"] == g_ref.graph["family"] == "udg"

    def test_grid_udg_csr_parity(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        g_csr = corpus.grid_udg_csr(4, 9, rng_a)
        g_ref = graphs.grid_udg(4, 9, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
        assert _edge_set(*g_csr.csr_arrays()) == _nx_edge_set(g_ref)

    @pytest.mark.parametrize(
        "rule", [distance_threshold_rule(0.85), parity_rule()]
    )
    def test_qudg_parity_deterministic_rules(self, rule):
        points = np.random.default_rng(5).uniform(0, 4, size=(80, 2))
        g_csr = corpus.qudg_csr_graph(
            points, r=0.7, R=1.0, rng=np.random.default_rng(1),
            annulus_rule=rule,
        )
        g_ref = graphs.qudg_from_points(
            points, r=0.7, R=1.0, rng=np.random.default_rng(1),
            annulus_rule=rule,
        )
        assert _edge_set(*g_csr.csr_arrays()) == _nx_edge_set(g_ref)

    def test_tiny_inputs(self):
        indptr, indices = udg_csr(np.empty((0, 2)), radius=1.0)
        assert len(indptr) == 1 and len(indices) == 0
        indptr, indices = udg_csr(np.array([[0.5, 0.5]]), radius=1.0)
        assert len(indptr) == 2 and len(indices) == 0

    def test_too_sparse_point_spread_refused(self):
        points = np.array([[0.0, 0.0], [1e9, 1e9]])
        with pytest.raises(ValueError, match="grid cells"):
            udg_csr(points, radius=1.0)


# ---------------------------------------------------------------------------
# 2. CSRGraph: the graph-protocol surface consumers rely on.
# ---------------------------------------------------------------------------


class TestCSRGraph:
    def _square(self) -> CSRGraph:
        # 4-cycle 0-1-2-3
        indptr = np.array([0, 2, 4, 6, 8], dtype=np.int32)
        indices = np.array([1, 3, 0, 2, 1, 3, 0, 2], dtype=np.int32)
        return CSRGraph(indptr, indices)

    def test_protocol_surface(self):
        g = self._square()
        assert g.number_of_nodes() == len(g) == 4
        assert g.number_of_edges() == 4
        assert not g.is_directed()
        assert list(g.nodes) == [0, 1, 2, 3]
        assert sorted(g.neighbors(0)) == [1, 3]
        assert g.degree(2) == 2
        assert 3 in g and 4 not in g
        assert {(u, v) for u, v in g.edges} == {
            (0, 1), (0, 3), (1, 2), (2, 3)
        }

    def test_to_networkx_round_trips(self):
        g = corpus.random_udg_csr(
            50, side=4.0, rng=np.random.default_rng(2)
        )
        gx = g.to_networkx()
        assert _nx_edge_set(gx) == _edge_set(*g.csr_arrays())
        assert gx.graph["family"] == "udg"
        assert all("pos" in gx.nodes[v] for v in gx.nodes)

    def test_dtype_validation(self):
        with pytest.raises(ValueError):
            CSRGraph(
                np.array([0, 0], dtype=np.int64),
                np.array([], dtype=np.int32),
            )

    def test_runs_as_radio_network_target(self):
        g = self._square()
        report = api.run("decay", g, seed=1)
        assert report.result.heard.shape == (4,)


# ---------------------------------------------------------------------------
# 3. Store round-trip: generate -> persist -> mmap-load -> identical runs.
# ---------------------------------------------------------------------------


class TestStore:
    def _graph(self) -> CSRGraph:
        return corpus.random_udg_csr(
            80, side=5.0, rng=np.random.default_rng(9)
        )

    def test_round_trip_bit_identical(self, tmp_path):
        g = self._graph()
        digest = corpus.save_graph(g, tmp_path / "entry")
        loaded = corpus.load_graph(tmp_path / "entry")
        assert loaded.source == "mmap"
        assert np.array_equal(loaded.indptr, g.indptr)
        assert np.array_equal(loaded.indices, g.indices)
        assert np.array_equal(loaded.positions, g.positions)
        assert loaded.graph["digest"] == digest
        assert loaded.graph["family"] == "udg"

    def test_cached_invariants_round_trip(self, tmp_path):
        g = self._graph()
        corpus.save_graph(g, tmp_path / "entry")
        loaded = corpus.load_graph(tmp_path / "entry")
        from repro.graphs.context import graph_context

        ctx = graph_context(loaded)
        ref = graph_context(g.to_networkx())
        assert loaded.invariants["connected"] is True
        assert loaded.invariants["diameter"] == ref.diameter
        assert np.array_equal(loaded.invariants["degrees"], ref.degrees)
        assert list(loaded.invariants["mis"]) == ref.mis()
        # the context consumes the cache rather than recomputing
        assert ctx.diameter == ref.diameter
        assert ctx.mis() == ref.mis()

    def test_store_dedups_by_digest(self, tmp_path):
        g = self._graph()
        store = corpus.CorpusStore(tmp_path / "store")
        d1 = store.add(g)
        d2 = store.add(g)
        assert d1 == d2
        assert len(store.entries()) == 1
        assert d1 in store
        assert d1[:10] in store
        assert store.path(d1).name.startswith("udg-n80-")

    def test_ambiguous_prefix_refused(self, tmp_path):
        store = corpus.CorpusStore(tmp_path / "store")
        store.add(self._graph())
        store.add(
            corpus.random_udg_csr(
                40, side=3.5, rng=np.random.default_rng(4)
            )
        )
        with pytest.raises(ValueError, match="ambiguous"):
            store.path("")

    def test_unknown_digest_refused(self, tmp_path):
        with pytest.raises(KeyError):
            corpus.CorpusStore(tmp_path / "store").path("feedface")

    def test_not_an_entry_refused(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            corpus.load_graph(tmp_path)

    def test_wrong_format_refused(self, tmp_path):
        entry = tmp_path / "entry"
        corpus.save_graph(self._graph(), entry)
        meta = json.loads((entry / "meta.json").read_text())
        meta["format"] = 99
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            corpus.load_graph(entry)

    def test_networkx_graphs_persist_too(self, tmp_path):
        g = graphs.random_udg(n=40, side=3.5, rng=np.random.default_rng(6))
        digest = corpus.save_graph(g, tmp_path / "entry")
        loaded = corpus.load_graph(tmp_path / "entry")
        assert loaded.graph["digest"] == digest
        assert _edge_set(*loaded.csr_arrays()) == _nx_edge_set(g)

    def test_label_carrying_graphs_refused(self, tmp_path):
        g = nx.relabel_nodes(nx.path_graph(4), {0: "a"})
        with pytest.raises(ValueError, match="identity-labeled"):
            corpus.save_graph(g, tmp_path / "entry")


# ---------------------------------------------------------------------------
# 4. Front-door integration: run(..., corpus=) bit-identical + provenance.
# ---------------------------------------------------------------------------


class TestRunOnCorpus:
    def _twins(self):
        g_csr = corpus.random_udg_csr(
            60, side=4.0, rng=np.random.default_rng(21)
        )
        g_ref = graphs.random_udg(
            n=60, side=4.0, rng=np.random.default_rng(21)
        )
        return g_csr, g_ref

    def test_mmap_run_matches_networkx_run_exactly(self, tmp_path):
        g_csr, g_ref = self._twins()
        corpus.save_graph(g_csr, tmp_path / "entry")
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        on_corpus = api.run("mis", corpus=tmp_path / "entry", rng=rng_a)
        on_nx = api.run("mis", g_ref, rng=rng_b)
        assert on_corpus.result == on_nx.result
        assert on_corpus.steps == on_nx.steps
        assert on_corpus.trace == on_nx.trace
        # same protocol work consumes the same randomness
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_corpus_provenance_names_the_instance(self, tmp_path):
        g_csr, _ = self._twins()
        digest = corpus.save_graph(g_csr, tmp_path / "entry")
        report = api.run("mis", corpus=tmp_path / "entry", seed=3)
        prov = report.provenance["corpus"]
        assert prov == {"digest": digest, "source": "mmap", "n": 60}

    def test_networkx_runs_have_no_corpus_provenance(self):
        _, g_ref = self._twins()
        assert api.run("decay", g_ref, seed=1).provenance["corpus"] is None

    def test_corpus_and_target_refused(self):
        g_csr, g_ref = self._twins()
        with pytest.raises(ProtocolError, match="not both"):
            api.run("mis", g_ref, corpus=g_csr, seed=1)

    @pytest.mark.parametrize("name", ["broadcast", "leader", "partition"])
    def test_graph_protocols_refuse_csr_targets(self, name):
        g_csr, _ = self._twins()
        with pytest.raises(ProtocolError, match="to_networkx"):
            api.run(name, corpus=g_csr, seed=1)

    def test_wakeup_refuses_corpus(self):
        g_csr, _ = self._twins()
        with pytest.raises(ProtocolError):
            api.run("wakeup", corpus=g_csr, seed=1)

    def test_icp_keeps_corpus_support(self):
        # icp's setup pipeline (greedy MIS, partition draw, schedule)
        # is CSR-clean end to end; pin that corpus_ok stays True.
        assert api.get_protocol("icp").corpus_ok is True
        g_csr, _ = self._twins()
        report = api.run("icp", corpus=g_csr, seed=2)
        assert int((report.result.knowledge >= 0).sum()) > 1


# ---------------------------------------------------------------------------
# 5. Shared memory: publish/attach, tiny handles, cleanup.
# ---------------------------------------------------------------------------


class TestSharedMemory:
    def test_publish_attach_round_trip(self):
        g = corpus.random_udg_csr(
            50, side=4.0, rng=np.random.default_rng(8)
        )
        with SharedGraph.publish(g) as shared:
            attached = attach(shared.handle)
            assert attached.source == "shm"
            assert np.array_equal(attached.indptr, g.indptr)
            assert np.array_equal(attached.indices, g.indices)
            assert np.array_equal(attached.positions, g.positions)
            assert attached.graph["family"] == "udg"
            # per-process attach cache: same handle, same object
            assert attach(shared.handle) is attached

    def test_handle_is_tiny_whatever_the_graph(self):
        g = corpus.random_udg_csr(
            400, side=11.0, rng=np.random.default_rng(8)
        )
        with SharedGraph.publish(g) as shared:
            handle_bytes = len(pickle.dumps(shared.handle))
            graph_bytes = len(pickle.dumps((g.indptr, g.indices)))
            assert handle_bytes < 1024
            assert handle_bytes * 10 < graph_bytes


# ---------------------------------------------------------------------------
# 6. Pooled trials: zero-copy workers, bit-identical to serial.
# ---------------------------------------------------------------------------


def _mis_size_measure(rng: np.random.Generator, graph) -> float:
    return float(api.run("mis", corpus=graph, rng=rng).result.size)


class TestParallelCorpusTrials:
    def _graph(self):
        return corpus.random_udg_csr(
            60, side=4.0, rng=np.random.default_rng(13)
        )

    def test_corpus_trials_parallel_matches_serial(self):
        g = self._graph()
        parallel = run_trials_parallel(
            _mis_size_measure, 4, seed=5, processes=2, corpus=g
        )
        serial = run_trials_parallel(
            _mis_size_measure, 4, seed=5, processes=1, corpus=g
        )
        assert parallel == serial

    def test_corpus_serial_path_matches_plain_run_trials(self):
        g = self._graph()
        direct = run_trials(
            lambda rng: _mis_size_measure(rng, g), 3, seed=5
        )
        assert (
            run_trials_parallel(
                _mis_size_measure, 3, seed=5, processes=1, corpus=g
            )
            == direct
        )

    def test_report_trials_share_memory_and_match_serial(self):
        g = self._graph()
        pooled = run_report_trials(
            "mis", n_trials=3, seed=5, processes=2, corpus=g
        )
        serial = run_report_trials(
            "mis", n_trials=3, seed=5, processes=1, corpus=g
        )
        for a, b in zip(pooled, serial):
            assert a.result == b.result
            assert a.steps == b.steps
            assert a.trace == b.trace
        # provenance names the transport faithfully
        assert {r.provenance["corpus"]["source"] for r in pooled} <= {
            "shm", "memory"
        }

    def test_report_trials_refuse_target_plus_corpus(self):
        g = self._graph()
        with pytest.raises(ProtocolError, match="not both"):
            run_report_trials("mis", g, 2, 0, corpus=g)


# ---------------------------------------------------------------------------
# 7. CLI: --corpus runs a stored entry through the same front door.
# ---------------------------------------------------------------------------


class TestCLICorpus:
    def test_corpus_flag_runs_entry(self, tmp_path, capsys):
        from repro.cli import main

        g = corpus.random_udg_csr(
            50, side=4.0, rng=np.random.default_rng(7)
        )
        store = corpus.CorpusStore(tmp_path)
        entry = store.path(store.add(g))
        code = main(
            ["mis", "--corpus", str(entry), "--seed", "3", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n"] == 50
        assert report["valid"] is True

    def test_corpus_flag_refused_for_graph_protocols(self, tmp_path, capsys):
        from repro.cli import main

        g = corpus.random_udg_csr(
            50, side=4.0, rng=np.random.default_rng(7)
        )
        store = corpus.CorpusStore(tmp_path)
        entry = store.path(store.add(g))
        code = main(["broadcast", "--corpus", str(entry), "--seed", "3"])
        assert code == 2
        assert "to_networkx" in capsys.readouterr().err


class TestGeneratorEdgeCases:
    """Validation and refusal branches of the array-native generators."""

    def test_udg_csr_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\) point array"):
            udg_csr(np.zeros((4, 3)))
        with pytest.raises(ValueError, match=r"\(n, 2\) point array"):
            udg_csr(np.zeros(8))

    def test_udg_csr_graph_wraps_with_metadata(self):
        points = np.array([[0.0, 0.0], [0.5, 0.0], [3.0, 3.0]])
        g = generate.udg_csr_graph(points, radius=1.0)
        assert isinstance(g, CSRGraph)
        assert g.number_of_nodes() == 3
        assert _edge_set(*g.csr_arrays()) == {(0, 1)}
        assert g.graph["family"] == "udg"
        assert g.graph["radius"] == 1.0
        assert np.array_equal(g.positions, points)

    def test_int32_edge_overflow_refused(self, monkeypatch):
        # The real bound needs > 2^31 directed edges (terabytes);
        # lower it so the guard itself is exercised.
        monkeypatch.setattr(generate, "_INT32_MAX", 4)
        points = np.zeros((4, 2))  # coincident: 12 directed edges
        with pytest.raises(ValueError, match="overflow the int32"):
            udg_csr(points)

    def test_random_udg_csr_rejects_n_below_one(self):
        with pytest.raises(ValueError, match="n must be >= 1"):
            corpus.random_udg_csr(0, 4.0, np.random.default_rng(0))

    def test_random_udg_csr_connectivity_retries_exhaust(self):
        # n=3 in a 40x40 square at radius 1 is essentially never
        # connected; two attempts must exhaust and refuse.
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="could not sample a connected"):
            corpus.random_udg_csr(3, 40.0, rng, max_attempts=2)

    def test_grid_udg_csr_rejects_empty_grid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="at least 1x1"):
            corpus.grid_udg_csr(0, 3, rng)

    def test_qudg_rejects_bad_radii(self):
        rng = np.random.default_rng(0)
        points = np.zeros((2, 2))
        with pytest.raises(ValueError, match="0 < r <= R"):
            corpus.qudg_csr_graph(points, r=2.0, R=1.0, rng=rng)
        with pytest.raises(ValueError, match="0 < r <= R"):
            corpus.qudg_csr_graph(points, r=0.0, R=1.0, rng=rng)

    def test_qudg_rejects_wrong_shape(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match=r"\(n, 2\) point array"):
            corpus.qudg_csr_graph(np.zeros((3, 4)), r=0.5, R=1.0, rng=rng)

    def test_qudg_single_point(self):
        rng = np.random.default_rng(0)
        g = corpus.qudg_csr_graph(
            np.array([[0.5, 0.5]]), r=0.5, R=1.0, rng=rng
        )
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0
        assert g.graph["family"] == "quasi-udg"

    def test_qudg_default_rule_is_reproducible_bernoulli(self):
        # annulus_rule=None falls back to bernoulli_rule(0.5): the
        # stochastic default draws in sorted pair order, so two
        # same-seeded rngs build the identical graph.
        points = np.random.default_rng(11).uniform(0, 6, size=(80, 2))
        a = corpus.qudg_csr_graph(
            points, r=0.6, R=1.2, rng=np.random.default_rng(3)
        )
        b = corpus.qudg_csr_graph(
            points, r=0.6, R=1.2, rng=np.random.default_rng(3)
        )
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        # Hard edges (d <= r) are always present; the annulus makes it
        # a supergraph of the r-disk graph and a subgraph of the R one.
        hard = _edge_set(*udg_csr(points, radius=0.6))
        wide = _edge_set(*udg_csr(points, radius=1.2))
        got = _edge_set(*a.csr_arrays())
        assert hard <= got <= wide
