"""Tests for EstimateEffectiveDegree (Algorithm 6 / Lemma 11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core.effective_degree import (
    EstimateEffectiveDegree,
    estimate_effective_degree,
    exact_effective_degree,
)
from repro.radio import RadioNetwork


class TestExactOracle:
    def test_exact_effective_degree_star(self):
        g = graphs.star(6)
        net = RadioNetwork(g)
        p = np.full(6, 0.5)
        active = np.ones(6, dtype=bool)
        d = exact_effective_degree(net, p, active)
        hub = net.index_of(0)
        assert d[hub] == pytest.approx(0.5 * 5)
        leaf = net.index_of(1)
        assert d[leaf] == pytest.approx(0.5)

    def test_inactive_neighbors_excluded(self):
        g = graphs.star(6)
        net = RadioNetwork(g)
        p = np.full(6, 0.5)
        active = np.ones(6, dtype=bool)
        active[net.index_of(1)] = False
        d = exact_effective_degree(net, p, active)
        assert d[net.index_of(0)] == pytest.approx(0.5 * 4)


class TestLemma11:
    """High-degree nodes get High; low-degree nodes get Low (whp)."""

    def test_high_effective_degree_returns_high(self, rng):
        # Hub of a star with p = 1/2 leaves: d_t(hub) = 16 * 0.5 = 8 >= 1.
        g = graphs.star(17)
        net = RadioNetwork(g)
        p = np.full(net.n, 0.5)
        active = np.ones(net.n, dtype=bool)
        result = estimate_effective_degree(net, p, active, rng, C=24)
        assert result.high[net.index_of(0)]

    def test_low_effective_degree_returns_low(self, rng):
        # Leaves of a star where the hub has tiny desire level:
        # d_t(leaf) = p_hub = 0.004 <= 0.01.
        g = graphs.star(9)
        net = RadioNetwork(g)
        p = np.full(net.n, 0.004)
        active = np.ones(net.n, dtype=bool)
        result = estimate_effective_degree(net, p, active, rng, C=24)
        for leaf in range(1, 9):
            assert not result.high[net.index_of(leaf)]

    def test_isolated_node_low(self, rng):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1)
        g.add_node(2)
        net = RadioNetwork(g)
        p = np.full(3, 0.5)
        active = np.ones(3, dtype=bool)
        result = estimate_effective_degree(net, p, active, rng, C=16)
        assert not result.high[net.index_of(2)]

    def test_clique_all_high(self, rng):
        # In a 32-clique at p = 1/2, every d_t(v) = 15.5 >= 1.
        g = graphs.clique(32)
        net = RadioNetwork(g)
        p = np.full(32, 0.5)
        active = np.ones(32, dtype=bool)
        result = estimate_effective_degree(net, p, active, rng, C=24)
        assert result.high.all()

    def test_accuracy_against_oracle(self, rng):
        # On a random UDG with mixed desire levels, the estimate must agree
        # with the oracle outside Lemma 11's (0.01, 1) dead zone.
        g = graphs.random_udg(n=60, side=3.0, rng=rng)
        net = RadioNetwork(g)
        p = rng.choice([0.001, 0.5], size=net.n, p=[0.5, 0.5])
        active = np.ones(net.n, dtype=bool)
        d = exact_effective_degree(net, p, active)
        result = estimate_effective_degree(net, p, active, rng, C=24)
        must_high = d >= 1.0
        must_low = d <= 0.01
        # Allow a small number of whp failures across 60 nodes.
        high_errors = int((must_high & ~result.high).sum())
        low_errors = int((must_low & result.high).sum())
        assert high_errors <= 2
        assert low_errors <= 2


class TestProtocolMechanics:
    def test_inactive_nodes_have_no_verdict(self, rng):
        g = graphs.clique(8)
        net = RadioNetwork(g)
        p = np.full(8, 0.5)
        active = np.ones(8, dtype=bool)
        active[0] = False
        result = estimate_effective_degree(net, p, active, rng, C=8)
        assert not result.high[0]

    def test_counts_shape(self, rng):
        g = graphs.path(8)
        net = RadioNetwork(g)
        protocol = EstimateEffectiveDegree(
            net, np.full(8, 0.5), np.ones(8, dtype=bool), C=4
        )
        assert protocol.counts.shape == (protocol.levels, 8)

    def test_total_steps_formula(self):
        g = graphs.path(16)
        net = RadioNetwork(g)
        protocol = EstimateEffectiveDegree(
            net, np.full(16, 0.5), np.ones(16, dtype=bool), C=4
        )
        # levels = log2(16) + 1 = 5, steps/level = 4 * 4 = 16.
        assert protocol.levels == 5
        assert protocol.steps_per_level == 16
        assert protocol.total_steps == 80

    def test_rejects_invalid_p(self):
        g = graphs.path(4)
        net = RadioNetwork(g)
        with pytest.raises(ValueError):
            EstimateEffectiveDegree(
                net, np.full(4, 1.5), np.ones(4, dtype=bool)
            )

    def test_rejects_invalid_C(self):
        g = graphs.path(4)
        net = RadioNetwork(g)
        with pytest.raises(ValueError):
            EstimateEffectiveDegree(
                net, np.full(4, 0.5), np.ones(4, dtype=bool), C=0
            )

    def test_rejects_bad_shapes(self):
        g = graphs.path(4)
        net = RadioNetwork(g)
        with pytest.raises(ValueError):
            EstimateEffectiveDegree(
                net, np.full(3, 0.5), np.ones(4, dtype=bool)
            )
