"""The fused coin+fault+delivery pipeline (ISSUE 9).

Four surfaces, every one pinned against an unfused twin:

* the scalar PCG64 coin arithmetic of the fused mask kernel
  (:func:`repro.engine.kernels._fused_mask_row`) against
  ``rng.random`` on the same stream offsets;
* the in-place fused fault transform
  (:meth:`~repro.faults.state.FaultState.transform_window_inplace`)
  and the point-wise deafness test
  (:meth:`~repro.faults.state.FaultState.deaf_at`) against the
  mask-materializing window forms, including realized counters;
* the COO delivery kernels
  (:meth:`~repro.engine.kernels.DeliveryKernels.execute_coo`) against
  the slab kernels on every routing regime;
* end-to-end: pipeline runs (the ``delivery="auto"`` fused pass and
  restricted COO folds) bit-identical to the unfused PR 7 paths for
  Decay, EED, and full Radio MIS — across arbitrary ``chunk_steps``
  splits, restriction modes, and fault schedules whose jam windows
  straddle chunk and section boundaries — plus the ``"pipeline"``
  mode's refusal-by-name when numba is absent, and the per-run reset
  of the provenance counters (ISSUE 9 satellite).
"""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

import repro.api as api
from repro.api import DecayConfig, EEDConfig
from repro.core import MISConfig, compute_mis, run_decay
from repro.core.effective_degree import estimate_effective_degree
from repro.engine import kernels
from repro.engine.kernels import (
    DeliveryKernels,
    _fused_mask_row,
    pipeline_disabled,
    pipeline_enabled,
    pipeline_mask_kernel,
    probe_numba,
    require_delivery_mode,
)
from repro.engine.pcg import row_base_states
from repro.faults.schedule import FaultSchedule, Jam
from repro.faults.state import FaultState
from repro.radio.errors import ProtocolError
from repro.radio.network import NO_SENDER, RadioNetwork
from repro.radio.trace import CheapTrace


def _udg(n: int, seed: int) -> nx.Graph:
    from repro import graphs

    side = float(np.sqrt(n * np.pi / 9.0))
    return graphs.random_udg(
        n, side, np.random.default_rng(seed), connected=False
    )


# ---------------------------------------------------------------------------
# The fused coin kernel's scalar PCG64 arithmetic
# ---------------------------------------------------------------------------


class TestFusedCoinArithmetic:
    @pytest.mark.parametrize("rows,n", [(1, 1), (3, 7), (5, 64), (2, 129)])
    def test_fused_rows_match_block_draw(self, rows, n):
        """Running the (uncompiled) fused row kernel from the
        row_base_states launch states reproduces ``rng.random((rows,
        n))`` masks bit-for-bit: same coins, same comparisons."""
        rng = np.random.default_rng(20240907)
        twin = np.random.default_rng(20240907)
        s_hi, s_lo, i_hi, i_lo, m_hi, m_lo = row_base_states(rng, rows, n)
        row_probs = np.linspace(0.05, 0.95, rows)
        col_probs = np.linspace(0.0, 1.0, n)
        out = np.zeros((rows, n), dtype=bool)
        with np.errstate(over="ignore"):
            for t in range(rows):
                _fused_mask_row(
                    s_hi[t], s_lo[t], i_hi, i_lo, m_hi, m_lo,
                    row_probs[t], col_probs, out[t],
                )
        expected = twin.random((rows, n)) < (
            row_probs[:, None] * col_probs[None, :]
        )
        assert (out == expected).all()

    def test_launch_states_do_not_advance_rng(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        row_base_states(rng, 4, 10)
        assert rng.bit_generator.state == before

    def test_pipeline_kernel_probe_gated(self):
        kernel = pipeline_mask_kernel()
        if probe_numba():  # pragma: no cover - optional-deps leg
            assert kernel is not None
        else:
            assert kernel is None


# ---------------------------------------------------------------------------
# The fused fault transform + point-wise deafness
# ---------------------------------------------------------------------------


def _fault_state(n: int = 40) -> FaultState:
    schedule = FaultSchedule(
        crashes=((3, 15), (8, 2)),
        joins=((5, 9), (11, 30)),
        sleeps=((7, 4, 22), (13, 0, 6)),
        jams=(Jam(5, 18, (1, 2, 7)), Jam(20, 26, None)),
        tx_prob=((9, 0.4), (17, 0.85)),
        energy=((12, 3), (19, 5)),
        seed=11,
    )
    return FaultState(schedule, n)


class TestFusedFaultTransform:
    @pytest.mark.parametrize("start", [0, 7, 13])
    @pytest.mark.parametrize("restricted", [False, True])
    def test_inplace_transform_matches_window_form(
        self, start, restricted
    ):
        n = 40
        rng = np.random.default_rng(start + 1)
        masks = rng.random((12, n)) < 0.4
        cols = None
        if restricted:
            cols = np.unique(rng.integers(0, n, size=25)).astype(np.int64)
            masks = masks[:, : cols.size].copy()

        ref_state = _fault_state(n)
        effective, _ = ref_state.transform_window(
            masks.copy(), start, cols
        )

        fused_state = _fault_state(n)
        fused = masks.copy()
        fused_state.transform_window_inplace(fused, start, cols)

        assert (fused == effective).all()
        assert dict(fused_state.realized) == dict(ref_state.realized)
        assert (
            fused_state.energy_remaining == ref_state.energy_remaining
        ).all()

    def test_inplace_counters_accumulate_across_chunks(self):
        """Chunked in-place transforms realize the same counters as
        one whole-window transform (the pipeline executes per chunk)."""
        n = 40
        rng = np.random.default_rng(3)
        masks = rng.random((24, n)) < 0.5

        whole = _fault_state(n)
        whole.transform_window(masks.copy(), 0)

        chunked = _fault_state(n)
        for start, stop in ((0, 6), (6, 11), (11, 17), (17, 24)):
            chunk = masks[start:stop].copy()
            chunked.transform_window_inplace(chunk, start)
        assert dict(chunked.realized) == dict(whole.realized)

    def test_deaf_at_matches_deaf_window(self):
        n = 40
        state = _fault_state(n)
        start, width = 3, 30
        alive = state.alive_window(start, width)
        deaf = state.deaf_window(start, width, alive)
        rng = np.random.default_rng(8)
        steps = rng.integers(start, start + width, size=200)
        nodes = rng.integers(0, n, size=200)
        point = state.deaf_at(steps, nodes)
        assert (point == deaf[steps - start, nodes]).all()


# ---------------------------------------------------------------------------
# COO delivery kernels against the slab kernels
# ---------------------------------------------------------------------------


class TestCooKernels:
    @pytest.mark.parametrize("mode", ["auto", "sparse", "dense"])
    @pytest.mark.parametrize(
        "family,width,density",
        [
            ("udg", 2, 0.1),    # narrow: gather regime
            ("udg", 12, 0.1),   # wide: spmm regime
            ("gnp", 6, 0.5),    # dense rows
            ("udg", 5, 0.0),    # all-empty: skip regime
        ],
    )
    def test_coo_matches_slab(self, mode, family, width, density):
        n = 120
        if family == "udg":
            g = _udg(n, 13)
        else:
            g = nx.gnp_random_graph(n, 0.4, seed=13)
        net = RadioNetwork(g)
        kern = DeliveryKernels(net._adj.indptr, net._adj.indices, n)
        rng = np.random.default_rng(width)
        masks = rng.random((width, n)) < density

        slab = np.full((width, n), NO_SENDER, dtype=np.int64)
        slab_counters: dict[str, int] = {}
        kern.execute(masks, slab, mode, slab_counters)

        coo_counters: dict[str, int] = {}
        step, node, sender = kern.execute_coo(masks, mode, coo_counters)

        rebuilt = np.full((width, n), NO_SENDER, dtype=np.int64)
        rebuilt[step, node] = sender
        assert (rebuilt == slab).all()
        assert sum(coo_counters.values()) == masks.shape[0]

    def test_coo_triples_are_int64_and_clean(self):
        g = _udg(90, 5)
        net = RadioNetwork(g)
        kern = DeliveryKernels(net._adj.indptr, net._adj.indices, net.n)
        rng = np.random.default_rng(1)
        masks = rng.random((9, net.n)) < 0.2
        step, node, sender = kern.execute_coo(masks, "auto", {})
        assert step.dtype == node.dtype == sender.dtype == np.int64
        # Clean receptions never land on a transmitter.
        assert not masks[step, node].any()


# ---------------------------------------------------------------------------
# Mode registry: pipeline availability, refusal, toggle
# ---------------------------------------------------------------------------


class TestPipelineMode:
    def test_pipeline_is_a_compiled_mode(self):
        assert "pipeline" in kernels.COMPILED_DELIVERY_MODES
        assert kernels.compiled_kernel_name("pipeline") == (
            "pipeline-numba"
        )

    @pytest.mark.skipif(
        probe_numba(), reason="numba installed: refusal cannot fire"
    )
    def test_forced_pipeline_refuses_naming_numba(self):
        with pytest.raises(ProtocolError) as err:
            require_delivery_mode("pipeline")
        message = str(err.value)
        assert "pipeline" in message
        assert "numba" in message

    def test_forced_pipeline_refusal_with_probe_pinned_off(
        self, monkeypatch
    ):
        """The refusal fires on any machine when the probe is pinned
        off — the no-numba CI leg's exact text."""
        monkeypatch.setitem(kernels._probe_cache, "numba", False)
        with pytest.raises(ProtocolError) as err:
            require_delivery_mode("pipeline")
        assert "numba" in str(err.value)

    def test_pipeline_disabled_toggle_nests(self):
        assert pipeline_enabled()
        with pipeline_disabled():
            assert not pipeline_enabled()
            with pipeline_disabled():
                assert not pipeline_enabled()
            assert not pipeline_enabled()
        assert pipeline_enabled()

    def test_forced_pipeline_runs_end_to_end_when_available(self):
        """delivery="pipeline" executes (refusing only without numba);
        under auto the fused numpy pass serves the same plans."""
        g = _udg(150, 21)
        if not probe_numba():
            with pytest.raises(ProtocolError):
                api.run(
                    "decay", g, seed=3,
                    policy=api.ExecutionPolicy(delivery="pipeline"),
                )
        else:  # pragma: no cover - optional-deps leg
            forced = api.run(
                "decay", g, seed=3,
                policy=api.ExecutionPolicy(delivery="pipeline"),
            )
            auto = api.run("decay", g, seed=3)
            assert forced.result == auto.result


# ---------------------------------------------------------------------------
# End-to-end equivalence: fused pipeline vs unfused paths
# ---------------------------------------------------------------------------


def _mis_run(g, seed, fused, **policy_kw):
    net = RadioNetwork(g, trace=CheapTrace())
    rng = np.random.default_rng(seed)
    policy = api.ExecutionPolicy(**policy_kw)
    if fused:
        result = compute_mis(net, rng, MISConfig(), policy=policy)
    else:
        with pipeline_disabled():
            result = compute_mis(net, rng, MISConfig(), policy=policy)
    probe = rng.integers(0, 2**63, 4).tolist()
    return result, net, probe


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("chunk_steps", [1, 3, 7, 64, 65])
    def test_decay_chunk_boundary_invariance(self, chunk_steps):
        """The fused pass folds identically whatever the chunk split —
        including heights of 1 and heights that straddle sweeps."""
        g = _udg(130, 31)
        net_a = RadioNetwork(g)
        net_b = RadioNetwork(g)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        active = np.arange(130) % 3 == 0
        with pipeline_disabled():
            ref = run_decay(
                net_a, active, rng_a, iterations=4,
                policy=api.ExecutionPolicy(chunk_steps=chunk_steps),
            )
        out = run_decay(
            net_b, active, rng_b, iterations=4,
            policy=api.ExecutionPolicy(chunk_steps=chunk_steps),
        )
        assert out == ref
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize("restrict", ["auto", "force", "off"])
    def test_eed_equivalence_across_restriction(self, restrict):
        g = _udg(140, 17)
        p = np.where(np.arange(140) % 2 == 0, 0.5, 0.125)
        active = np.arange(140) % 5 != 0
        runs = []
        for fused in (False, True):
            net = RadioNetwork(g)
            rng = np.random.default_rng(23)
            policy = api.ExecutionPolicy(restrict=restrict, chunk_steps=6)
            if fused:
                res = estimate_effective_degree(
                    net, p, active, rng, C=2, policy=policy
                )
            else:
                with pipeline_disabled():
                    res = estimate_effective_degree(
                        net, p, active, rng, C=2, policy=policy
                    )
            runs.append((res, net, rng.bit_generator.state))
        (ref, net_a, state_a), (out, net_b, state_b) = runs
        assert out == ref
        assert state_a == state_b
        assert net_a.trace.total_steps == net_b.trace.total_steps

    @pytest.mark.parametrize(
        "policy_kw",
        [
            {},
            {"chunk_steps": 7},
            {"restrict": "force"},
            {"restrict": "off", "chunk_steps": 5},
        ],
    )
    def test_mis_equivalence(self, policy_kw):
        g = _udg(150, 41)
        ref, net_a, probe_a = _mis_run(g, 11, fused=False, **policy_kw)
        out, net_b, probe_b = _mis_run(g, 11, fused=True, **policy_kw)
        assert out.mis == ref.mis
        assert out.steps_used == ref.steps_used
        assert out.history == ref.history
        assert probe_a == probe_b
        for attr in (
            "total_steps", "total_transmissions", "total_receptions"
        ):
            assert getattr(net_a.trace, attr) == getattr(
                net_b.trace, attr
            )

    @pytest.mark.parametrize("chunk_steps", [3, 11, None])
    def test_mis_with_faults_straddling_boundaries(self, chunk_steps):
        """Jam windows and sleeps that straddle chunk AND section
        boundaries realize identically through the fused transform."""
        g = _udg(130, 51)
        # One Decay section spans ceil(log2 130)*iters steps; windows
        # below are sized to cross both chunk splits and the
        # mis/decay-marked -> mis/decay-mis section boundary.
        faults = FaultSchedule(
            crashes=((5, 60),),
            joins=((9, 35),),
            sleeps=((11, 20, 160),),
            jams=(
                Jam(25, 95, (1, 2, 3, 11)),
                Jam(140, 260, None),
            ),
            tx_prob=((7, 0.6),),
            energy=((13, 8),),
            seed=4,
        )
        kw: dict = {"faults": faults}
        if chunk_steps is not None:
            kw["chunk_steps"] = chunk_steps
        ref, net_a, probe_a = _mis_run(g, 19, fused=False, **kw)
        out, net_b, probe_b = _mis_run(g, 19, fused=True, **kw)
        assert out.mis == ref.mis
        assert probe_a == probe_b
        assert dict(net_a._fault_state.realized) == dict(
            net_b._fault_state.realized
        )
        for attr in (
            "total_steps", "total_transmissions", "total_receptions"
        ):
            assert getattr(net_a.trace, attr) == getattr(
                net_b.trace, attr
            )

    def test_validated_run_still_green(self):
        """The validating runner pins the slab paths (it opts out of
        the COO fold), so a validated run of a pipeline-carrying plan
        still cross-checks every window."""
        g = _udg(90, 61)
        report = api.run(
            "mis", g, seed=2,
            policy=api.ExecutionPolicy(validate=True),
        )
        plain = api.run("mis", g, seed=2)
        assert report.result == plain.result


# ---------------------------------------------------------------------------
# Provenance: per-run counter reset, residual + timing surfaces
# ---------------------------------------------------------------------------


class TestProvenanceCounters:
    def test_residual_and_timing_in_provenance(self):
        report = api.run("mis", _udg(120, 71), seed=5)
        residual = report.provenance["residual"]
        assert set(residual) >= {"rebuilds"}
        timing = report.provenance["timing"]
        assert set(timing) == {
            "plan", "coins", "faults", "deliver", "commit"
        }
        assert all(v >= 0.0 for v in timing.values())
        assert timing["deliver"] > 0.0

    def test_counters_reset_per_run_on_reused_network(self):
        """Satellite: residual_stats (and kernel_use, timing) describe
        one run — a second run on the same network must not inherit
        the first run's rebuild counts."""
        net = RadioNetwork(_udg(120, 81), trace=CheapTrace())
        first = api.run(
            "mis", net, seed=6,
            policy=api.ExecutionPolicy(restrict="force"),
        )
        second = api.run(
            "mis", net, seed=6,
            policy=api.ExecutionPolicy(restrict="force"),
        )
        r1 = first.provenance["residual"]
        r2 = second.provenance["residual"]
        assert r1["rebuilds"] > 0
        assert r2["rebuilds"] == r1["rebuilds"]  # reset, not accumulated
        assert first.provenance["delivery"]["kernel_use"] == (
            second.provenance["delivery"]["kernel_use"]
        )

    def test_eed_ladder_shares_one_residual_context(self):
        """The whole EED level ladder is one plan: a forced-restricted
        block builds exactly one residual context (regression for the
        per-level rebuild ISSUE 9 closes)."""
        n = 140
        g = _udg(n, 91)
        report = api.run(
            "eed", g, seed=3,
            config=EEDConfig(p=0.25, C=2),
            policy=api.ExecutionPolicy(restrict="force"),
        )
        assert report.provenance["residual"]["rebuilds"] == 1

    def test_report_equality_ignores_timing(self):
        g = _udg(80, 95)
        assert api.run("mis", g, seed=4) == api.run("mis", g, seed=4)


# ---------------------------------------------------------------------------
# Decay config sanity for this suite's API use
# ---------------------------------------------------------------------------


def test_decay_config_roundtrip():
    report = api.run(
        "decay", _udg(100, 99), seed=1, config=DecayConfig(iterations=2)
    )
    assert report.steps > 0
