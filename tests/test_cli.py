"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_graph_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mis", "--graph", "torus"])


class TestMIS:
    def test_runs_and_reports_valid(self, capsys):
        code = main(
            ["mis", "--graph", "udg", "--n", "40", "--side", "3.0",
             "--seed", "3", "--oracle-degree"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mis_size" in out
        assert "valid: True" in out

    def test_json_output(self, capsys):
        code = main(
            ["mis", "--graph", "clique", "--n", "16", "--seed", "1",
             "--oracle-degree", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["valid"] is True
        assert report["mis_size"] == 1

    def test_full_protocol_path(self, capsys):
        code = main(
            ["mis", "--graph", "path", "--n", "16", "--seed", "2",
             "--eed-c", "4"]
        )
        assert code == 0


class TestBroadcast:
    def test_delivers(self, capsys):
        code = main(
            ["broadcast", "--graph", "grid", "--rows", "3", "--cols", "10",
             "--seed", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered: True" in out

    def test_baseline_flag(self, capsys):
        code = main(
            ["broadcast", "--graph", "chain", "--chains", "4",
             "--clique-size", "5", "--baseline", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "all"
        assert report["delivered"] is True


class TestLeader:
    def test_elects(self, capsys):
        code = main(
            ["leader", "--graph", "gnp", "--n", "60", "--p", "0.12",
             "--seed", "4", "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        # whp success; on the rare failure the exit code says so honestly.
        assert code in (0, 1)
        assert "elected" in report


class TestPartition:
    def test_reports_cluster_stats(self, capsys):
        code = main(
            ["partition", "--graph", "udg", "--n", "50", "--side", "3.5",
             "--beta", "0.25", "--seed", "6", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clusters_used"] >= 1
        assert report["max_radius"] >= 0


class TestClasses:
    def test_lists_families(self, capsys):
        code = main(["classes", "--n", "40", "--seed", "8", "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        families = {row["family"] for row in rows}
        assert {"udg", "path", "star"} <= families
