"""The obliviousness-contract suite: every emitter, every window, replayed.

Two layers of enforcement:

1. **Inventory** — an AST scan of ``src/repro`` finds every generator
   function that yields engine segments (the *schedule emitters*). The
   meta-test pins that set: adding an emitter without registering it in
   ``EMITTER_RUNS`` below fails the suite, which is what makes "the
   contract harness covers 100% of in-tree schedule emitters" a durable
   property instead of a point-in-time audit.

2. **Replay** — each registered emitter runs under
   :class:`repro.engine.validate.ValidatingRunner`, which re-executes
   every :class:`~repro.engine.segments.ObliviousWindow` step-by-step
   through :meth:`~repro.radio.network.RadioNetwork.deliver` on a
   shadow network and through the forced-sparse and forced-dense window
   strategies on two more, asserting bit-identical ``hear_from``
   everywhere. The windows checked are the ones the real protocols emit
   on the pipeline's graph families (UDG, quasi-UDG, hard instances),
   across seeds.
"""

from __future__ import annotations

import ast
import pathlib

import networkx as nx
import numpy as np
import pytest

import repro
from repro import graphs
from repro.baselines.bgi_broadcast import bgi_schedule
from repro.core import build_schedule, partition
from repro.core.decay import decay_block_schedule
from repro.core.effective_degree import effective_degree_schedule
from repro.core.intra_cluster import (
    DecayBackground,
    DecayBackgroundSource,
    ICPProtocol,
    decay_background_schedule,
)
from repro.core.mis import MISConfig, mis_schedule
from repro.core.mis_restart import (
    RestartableMISConfig,
    restartable_mis_schedule,
)
from repro.core.wakeup import _wakeup_mis_schedule
from repro.faults import FaultSchedule
from repro.engine import (
    ProtocolSegmentSource,
    ScheduleSegmentAdapter,
    ValidatingRunner,
    multiplex,
    protocol_schedule,
    segment_schedule,
)
from repro.engine.validate import ObliviousnessViolationError
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork
from repro.radio.protocol import TimeMultiplexer

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent
SEGMENT_NAMES = {
    "ObliviousWindow",
    "StreamedWindow",
    "DecisionStep",
    "TracePhase",
}


# ---------------------------------------------------------------------------
# Emitter inventory (AST scan).
# ---------------------------------------------------------------------------
def _own_nodes(func: ast.FunctionDef):
    """Nodes of ``func``'s own body, not descending into nested defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def find_schedule_emitters() -> set[str]:
    """Names of all in-tree generator functions that emit segments."""
    emitters: set[str] = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            own = list(_own_nodes(node))
            has_yield = any(
                isinstance(x, (ast.Yield, ast.YieldFrom)) for x in own
            )
            touches_segments = any(
                isinstance(x, ast.Name) and x.id in SEGMENT_NAMES
                for x in own
            )
            if has_yield and touches_segments:
                emitters.add(node.name)
    return emitters


#: Every schedule emitter in the tree, each mapped to the runner in
#: this file that drives it through the ValidatingRunner. Adding an
#: emitter to src/repro without registering it here fails
#: test_inventory_is_complete.
EMITTER_RUNS = {
    "decay_block_schedule": "test_decay_block",
    "effective_degree_schedule": "test_effective_degree",
    "mis_schedule": "test_mis",
    "restartable_mis_schedule": "test_mis_restart",
    "bgi_schedule": "test_bgi",
    "_wakeup_mis_schedule": "test_wakeup",
    "decay_background_schedule": "test_decay_background",
    "protocol_schedule": "test_legacy_protocol_adapter",
    "segment_schedule": "test_segment_schedule",
    # multiplex() validates eagerly and returns _multiplex, the
    # generator body the scan sees.
    "_multiplex": "test_multiplexed_icp",
}


def test_inventory_is_complete():
    found = find_schedule_emitters()
    registered = set(EMITTER_RUNS)
    assert found == registered, (
        "schedule emitters changed: "
        f"unregistered={sorted(found - registered)}, "
        f"stale={sorted(registered - found)} — every emitter must run "
        "under the ValidatingRunner in this suite"
    )
    for test_name in EMITTER_RUNS.values():
        assert test_name in globals() or any(
            hasattr(obj, test_name)
            for obj in globals().values()
            if isinstance(obj, type)
        ), f"runner {test_name} missing"


def test_inventory_matches_protocol_registry():
    """The AST-pinned emitter inventory must equal the registry's claims.

    Every emitter belongs either to exactly one registered
    :class:`repro.api.registry.ProtocolSpec` (its ``emitters`` tuple)
    or to the engine layer's generic adapter set — so a new emitter
    whose protocol forgets ``@register_protocol`` (or forgets to claim
    the emitter in its spec) fails here, keeping the registry a
    complete catalog rather than a point-in-time list.
    """
    import repro.api  # noqa: F401  (imports register the specs)
    from repro.api.registry import ADAPTER_EMITTERS, registered_emitters

    found = find_schedule_emitters()
    claimed = set(registered_emitters()) | set(ADAPTER_EMITTERS)
    assert found == claimed, (
        "registry out of sync with the emitter inventory: "
        f"unclaimed={sorted(found - claimed)}, "
        f"phantom={sorted(claimed - found)} — every emitter must be "
        "claimed by a @register_protocol spec (or be an engine adapter)"
    )
    # And no emitter is claimed twice: specs own their emitters.
    from repro.api import list_protocols

    seen: dict[str, str] = {}
    for spec in list_protocols():
        for emitter in spec.emitters:
            assert emitter not in seen, (
                f"emitter {emitter!r} claimed by both {seen[emitter]!r} "
                f"and {spec.name!r}"
            )
            assert emitter not in ADAPTER_EMITTERS, (
                f"emitter {emitter!r} is an engine adapter; a protocol "
                "spec cannot claim it"
            )
            seen[emitter] = spec.name


# ---------------------------------------------------------------------------
# Replay runs.
# ---------------------------------------------------------------------------
def _contract_graph(kind: str, seed: int) -> nx.Graph:
    rng = np.random.default_rng(3000 + seed)
    if kind == "udg":
        return graphs.random_udg(60, 3.0, rng)
    if kind == "qudg":
        return nx.convert_node_labels_to_integers(
            graphs.random_qudg(50, 3.0, rng)
        )
    return nx.convert_node_labels_to_integers(graphs.star_of_cliques(4, 6))


GRAPH_KINDS = ["udg", "qudg", "hard"]
SEEDS = [0, 1]


def _validated(graph: nx.Graph, delivery: str = "auto") -> ValidatingRunner:
    return ValidatingRunner(RadioNetwork(graph), delivery=delivery)


def _icp_fixture(g: nx.Graph, seed: int):
    setup = np.random.default_rng(40 + seed)
    mis = sorted(greedy_independent_set(g, setup, "random"))
    clustering = partition(g, 0.3, mis, setup)
    schedule = build_schedule(g, clustering)
    know = np.full(g.number_of_nodes(), -1, dtype=np.int64)
    know[0] = 7
    return clustering, schedule, know


class TestEmitterContracts:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_decay_block(self, kind, seed):
        g = _contract_graph(kind, seed)
        n = g.number_of_nodes()
        active = np.random.default_rng(seed).random(n) < 0.4
        active[0] = True
        runner = _validated(g)
        result = runner.run(
            decay_block_schedule(
                runner.network, active, np.random.default_rng(50 + seed),
                iterations=5,
            )
        )
        assert runner.windows_checked > 0
        assert result.heard.shape == (n,)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_effective_degree(self, kind, seed):
        g = _contract_graph(kind, seed)
        n = g.number_of_nodes()
        setup = np.random.default_rng(seed)
        # p ~ 0.5 pushes the low levels into the dense regime, so the
        # replay exercises the dense path through "auto" routing too.
        p = np.full(n, 0.5)
        active = setup.random(n) < 0.9
        runner = _validated(g)
        result = runner.run(
            effective_degree_schedule(
                runner.network, p, active,
                np.random.default_rng(60 + seed), C=4,
            )
        )
        assert runner.windows_checked > 0
        assert result.counts.shape[1] == n

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_mis(self, kind, seed):
        g = _contract_graph(kind, seed)
        runner = _validated(g)
        result = runner.run(
            mis_schedule(
                runner.network, np.random.default_rng(70 + seed),
                MISConfig(eed_C=3, record_golden=False),
            )
        )
        assert runner.windows_checked > 0
        assert graphs.is_maximal_independent_set(g, result.mis)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_mis_restart(self, kind, seed):
        # Driven under a non-empty fault schedule: the replay then also
        # exercises the validator's faulted shadow paths (cloned fault
        # state, per-window transforms on all three shadows).
        g = _contract_graph(kind, seed)
        n = g.number_of_nodes()
        schedule = FaultSchedule.sample(
            n, 2000, seed=seed, crash_rate=0.1, churn=0.2, jam=0.05,
        )
        runner = ValidatingRunner(RadioNetwork(g, faults=schedule))
        result = runner.run(
            restartable_mis_schedule(
                runner.network, np.random.default_rng(75 + seed),
                RestartableMISConfig(epochs=2, eed_C=3),
            )
        )
        assert runner.windows_checked > 0
        assert 0.0 <= result.dominated_fraction <= 1.0

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_bgi(self, kind, seed):
        g = _contract_graph(kind, seed)
        runner = _validated(g)
        result = runner.run(
            bgi_schedule(runner.network, 0, np.random.default_rng(80 + seed))
        )
        assert runner.windows_checked > 0
        assert result.delivered

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wakeup(self, seed):
        k = 24 + seed
        runner = _validated(nx.complete_graph(k))
        result = runner.run(
            _wakeup_mis_schedule(400, k, np.random.default_rng(90 + seed))
        )
        assert runner.windows_checked > 0
        assert result.k == k

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_decay_background(self, kind, seed):
        g = _contract_graph(kind, seed)
        clustering, _, know = _icp_fixture(g, seed)
        runner = _validated(g)
        runner.run(
            decay_background_schedule(
                runner.network, clustering, know,
                np.random.default_rng(100 + seed), total_steps=300,
            )
        )
        assert runner.windows_checked > 0

    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_legacy_protocol_adapter(self, kind):
        # protocol_schedule over the time-multiplexed ICP stack: the
        # decision-step emitter, validated per step.
        g = _contract_graph(kind, 2)
        clustering, schedule, know = _icp_fixture(g, 2)
        runner = _validated(g)
        main = ICPProtocol(runner.network, schedule, know, 3)
        background = DecayBackground(runner.network, clustering, know)
        muxed = TimeMultiplexer(runner.network, main, background)
        total = 2 * sum(len(p.slots) for p in main._passes) + 2
        runner.run(
            protocol_schedule(muxed, np.random.default_rng(3), steps=total)
        )
        assert runner.steps_checked > 0

    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_segment_schedule(self, kind):
        # The plan/commit-to-generator lift, over the generator-form
        # adapter: a full round trip through both directions.
        g = _contract_graph(kind, 3)
        n = g.number_of_nodes()
        active = np.random.default_rng(3).random(n) < 0.5
        runner = _validated(g)
        rng = np.random.default_rng(110)
        adapter = ScheduleSegmentAdapter(
            decay_block_schedule(runner.network, active, rng, iterations=4),
            n,
        )
        result = runner.run(segment_schedule(adapter, rng))
        assert runner.windows_checked > 0
        assert result.heard.shape == (n,)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_multiplexed_icp(self, kind, seed):
        # The mux combinator's joint windows, replayed step-by-step.
        g = _contract_graph(kind, seed)
        clustering, schedule, know = _icp_fixture(g, seed)
        runner = _validated(g)
        main = ICPProtocol(runner.network, schedule, know, 3)
        total = sum(len(p.slots) for p in main._passes)
        background = DecayBackground(runner.network, clustering, know)
        runner.run(
            multiplex(
                ProtocolSegmentSource(main, steps=total),
                DecayBackgroundSource(background),
                rng=np.random.default_rng(120 + seed),
            )
        )
        assert runner.windows_checked > 0


class TestValidatingRunnerDetectsViolations:
    def test_catches_engine_divergence(self):
        # Corrupt the primary's window execution: a violated promise
        # must raise, proving the harness is not vacuous.
        g = graphs.path(8)
        runner = _validated(g)
        masks = np.zeros((3, 8), dtype=bool)
        masks[1, 2] = True
        original = runner.network.deliver_window

        def corrupted(m, mode="auto"):
            out = original(m, mode)
            if out.size:
                out[0, 0] = 5  # claim node 0 heard node 5
            return out

        runner.network.deliver_window = corrupted  # type: ignore[assignment]

        def emit():
            from repro.engine import ObliviousWindow

            _ = yield ObliviousWindow(masks)
            return None

        with pytest.raises(ObliviousnessViolationError, match="diverged"):
            runner.run(emit())

    def test_checks_decision_steps_too(self):
        g = graphs.path(8)
        runner = _validated(g)
        original = runner.network.deliver

        def corrupted(mask):
            out = original(mask)
            out[3] = 1
            return out

        runner.network.deliver = corrupted  # type: ignore[assignment]

        def emit():
            from repro.engine import DecisionStep

            _ = yield DecisionStep(np.zeros(8, dtype=bool))
            return None

        with pytest.raises(ObliviousnessViolationError):
            runner.run(emit())
