"""Tests for the collision-detection model variant and CD broadcast."""

from __future__ import annotations

import numpy as np
import pytest

from repro import baselines, graphs
from repro.radio import (
    GraphContractError,
    InvalidActionError,
    NO_SENDER,
    RadioNetwork,
)


class TestDeliverDetect:
    def test_busy_on_collision(self):
        g = graphs.path(3)  # 0 - 1 - 2
        net = RadioNetwork(g)
        transmit = np.zeros(3, dtype=bool)
        transmit[net.index_of(0)] = True
        transmit[net.index_of(2)] = True
        hear_from, busy = net.deliver_detect(transmit)
        middle = net.index_of(1)
        # Two transmitting neighbors: nothing heard, but energy sensed.
        assert hear_from[middle] == NO_SENDER
        assert busy[middle]

    def test_busy_on_clean_reception(self):
        g = graphs.path(2)
        net = RadioNetwork(g)
        transmit = np.zeros(2, dtype=bool)
        transmit[net.index_of(0)] = True
        hear_from, busy = net.deliver_detect(transmit)
        listener = net.index_of(1)
        assert hear_from[listener] == net.index_of(0)
        assert busy[listener]

    def test_silence_is_not_busy(self):
        g = graphs.path(3)
        net = RadioNetwork(g)
        _, busy = net.deliver_detect(np.zeros(3, dtype=bool))
        assert not busy.any()

    def test_transmitters_never_busy(self):
        g = graphs.clique(4)
        net = RadioNetwork(g)
        _, busy = net.deliver_detect(np.ones(4, dtype=bool))
        assert not busy.any()

    def test_shape_validation(self):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(InvalidActionError):
            net.deliver_detect(np.zeros(3, dtype=bool))


class TestCDBroadcast:
    def test_delivers_on_path(self):
        net = RadioNetwork(graphs.path(15))
        result = baselines.cd_broadcast(net, 0)
        assert result.delivered

    def test_delivers_on_udg(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        net = RadioNetwork(g)
        result = baselines.cd_broadcast(net, 0)
        assert result.delivered

    def test_delivers_through_contention(self):
        # Two big cliques joined by a bridge: the worst case for
        # collision-prone strategies is trivial with CD.
        g = graphs.two_cliques_bottleneck(20)
        net = RadioNetwork(g)
        result = baselines.cd_broadcast(net, 0)
        assert result.delivered

    def test_steps_formula(self):
        # steps = cycles * bits * 2 subslots.
        net = RadioNetwork(graphs.path(10))
        result = baselines.cd_broadcast(net, 0)
        assert result.steps == result.cycles * result.message_bits * 2

    def test_deterministic(self):
        g = graphs.path(12)
        counts = set()
        for _ in range(3):
            net = RadioNetwork(g)
            counts.add(baselines.cd_broadcast(net, 5).steps)
        assert len(counts) == 1

    def test_cycles_track_eccentricity(self):
        # From one end of a path, the frontier moves >= 1 hop per cycle
        # and exactly 1 on a path: cycles == eccentricity of the source.
        n = 12
        net = RadioNetwork(graphs.path(n))
        result = baselines.cd_broadcast(net, 0)
        assert result.cycles == n - 1

    def test_custom_message_roundtrip(self):
        net = RadioNetwork(graphs.path(6))
        result = baselines.cd_broadcast(net, 0, message=37, message_bits=8)
        assert result.delivered
        assert result.message_bits == 8

    def test_message_must_fit(self):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ValueError):
            baselines.cd_broadcast(net, 0, message=9, message_bits=3)

    def test_rejects_disconnected(self):
        import networkx as nx

        net = RadioNetwork(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphContractError):
            baselines.cd_broadcast(net, 0)

    def test_faster_than_round_robin_without_cd(self):
        # The point of E13: determinism is cheap with CD, expensive
        # without (round-robin pays ~n per hop in the adverse direction).
        g = graphs.path(25)
        net_cd = RadioNetwork(g)
        cd = baselines.cd_broadcast(net_cd, 24)
        net_rr = RadioNetwork(g)
        rr = baselines.round_robin_broadcast(net_rr, 24)
        assert cd.steps < rr.steps
