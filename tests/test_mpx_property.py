"""Property-based tests of MPX clustering invariants on random graphs.

Hypothesis generates connected random graphs and center sets; every
Partition draw must satisfy the structural invariants the paper's
analysis rests on: total assignment, true hop distances, shifted-
distance optimality, and cluster connectivity.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import draw_shifts, partition
from repro.graphs import greedy_independent_set


@st.composite
def connected_graph_and_centers(draw):
    """A connected G(n, p) plus a center set (MIS or random nonempty)."""
    n = draw(st.integers(min_value=2, max_value=28))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    p = draw(st.floats(min_value=0.15, max_value=0.7))
    graph = nx.gnp_random_graph(n, p, seed=seed)
    # Force connectivity with a random-ish spanning path.
    order = list(graph.nodes)
    rng = np.random.default_rng(seed)
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        graph.add_edge(a, b)
    use_mis = draw(st.booleans())
    if use_mis:
        centers = sorted(greedy_independent_set(graph))
    else:
        k = draw(st.integers(min_value=1, max_value=n))
        centers = sorted(
            int(v) for v in rng.choice(n, size=k, replace=False)
        )
    beta = draw(st.floats(min_value=0.05, max_value=2.0))
    return graph, centers, beta, seed


@settings(max_examples=40, deadline=None)
@given(connected_graph_and_centers())
def test_every_node_assigned_to_a_center(params):
    graph, centers, beta, seed = params
    clustering = partition(graph, beta, centers, np.random.default_rng(seed))
    assert set(clustering.assignment.tolist()) <= set(centers)
    assert (clustering.distance_to_center >= 0).all()


@settings(max_examples=40, deadline=None)
@given(connected_graph_and_centers())
def test_distances_are_true_hop_distances(params):
    graph, centers, beta, seed = params
    clustering = partition(graph, beta, centers, np.random.default_rng(seed))
    dist = dict(nx.all_pairs_shortest_path_length(graph))
    for v in graph.nodes:
        c = int(clustering.assignment[v])
        assert clustering.distance_to_center[v] == dist[v][c]


@settings(max_examples=40, deadline=None)
@given(connected_graph_and_centers())
def test_assignment_is_shifted_distance_optimal(params):
    graph, centers, beta, seed = params
    rng = np.random.default_rng(seed)
    shifts = draw_shifts(centers, beta, rng)
    clustering = partition(graph, beta, centers, rng, shifts=shifts)
    dist = dict(nx.all_pairs_shortest_path_length(graph))
    for v in graph.nodes:
        chosen = int(clustering.assignment[v])
        achieved = dist[v][chosen] - shifts[chosen]
        best = min(dist[v][c] - shifts[c] for c in centers)
        assert achieved <= best + 1e-9


@settings(max_examples=30, deadline=None)
@given(connected_graph_and_centers())
def test_clusters_induce_connected_subgraphs(params):
    graph, centers, beta, seed = params
    clustering = partition(graph, beta, centers, np.random.default_rng(seed))
    clustering.validate(graph, None)


@settings(max_examples=30, deadline=None)
@given(connected_graph_and_centers())
def test_mean_distance_bounded_by_eccentricity(params):
    graph, centers, beta, seed = params
    clustering = partition(graph, beta, centers, np.random.default_rng(seed))
    assert clustering.mean_distance() <= nx.diameter(graph)
