"""Differential fuzzing of every engine/reference twin pair.

Each case draws seeded random graphs (mixing UDG, quasi-UDG, G(n, p),
paths, and hard star-of-cliques instances) and runs a protocol through
its independent implementations — the windowed engine, the step-wise
``*_reference`` twin, and where one exists the fused (multiplexed)
path — pinning:

* the protocol **result** (every field that is seed-deterministic);
* ``steps_elapsed`` and the **trace totals** (global and per phase);
* the **final rng-stream state** (``bit_generator.state``), the
  strictest possible check that both paths drew exactly the same
  randomness in the same order (exception: the wake-up reduction,
  whose windowed path documents a post-success rng divergence).

The matrix is sized by ``--fuzz-rounds`` (default 2 — the CI tier-1
budget); crank it up locally for a deeper sweep::

    PYTHONPATH=src python -m pytest tests/test_fuzz_differential.py --fuzz-rounds 20
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.baselines import (
    bgi_broadcast,
    bgi_broadcast_reference,
    binary_search_election,
    binary_search_election_reference,
)
from repro.core import (
    MISConfig,
    build_schedule,
    compute_mis,
    compute_mis_reference,
    estimate_effective_degree,
    estimate_effective_degree_reference,
    intra_cluster_propagation,
    partition,
    run_decay,
    run_decay_reference,
)
from repro.core.compete_packet import PacketCompeteConfig, compete_packet
from repro.core.intra_cluster import DecayBackground, decay_background_schedule
from repro.core.wakeup import (
    mis_as_wakeup_strategy,
    mis_as_wakeup_strategy_reference,
)
from repro.baselines.leader_uptime import (
    uptime_threshold_election,
    uptime_threshold_election_reference,
)
from repro.core.mis_restart import (
    compute_restartable_mis,
    restartable_mis_reference,
)
from repro.engine import run_schedule
from repro.engine.policy import ExecutionPolicy
from repro.faults import FaultSchedule
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork, run_steps


def _assert_trace_equal(a: RadioNetwork, b: RadioNetwork) -> None:
    assert a.steps_elapsed == b.steps_elapsed
    assert a.trace.total_steps == b.trace.total_steps
    assert a.trace.total_transmissions == b.trace.total_transmissions
    assert a.trace.total_receptions == b.trace.total_receptions
    assert {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in a.trace.phase_stats().items()
    } == {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in b.trace.phase_stats().items()
    }


def _assert_rng_equal(*rngs: np.random.Generator) -> None:
    states = [rng.bit_generator.state for rng in rngs]
    assert all(state == states[0] for state in states[1:])


def _fuzz_graph(round_index: int, case: str) -> nx.Graph:
    """A fresh seeded random graph per (round, case)."""
    seed = round_index * 7919 + sum(map(ord, case))
    rng = np.random.default_rng(seed)
    kind = int(rng.integers(5))
    if kind == 0:
        n = int(rng.integers(40, 90))
        return graphs.random_udg(n, float(rng.uniform(2.5, 4.0)), rng)
    if kind == 1:
        return nx.convert_node_labels_to_integers(
            graphs.random_qudg(int(rng.integers(35, 70)), 3.0, rng)
        )
    if kind == 2:
        return nx.convert_node_labels_to_integers(
            graphs.star_of_cliques(int(rng.integers(3, 6)), int(rng.integers(4, 8)))
        )
    if kind == 3:
        return graphs.path(int(rng.integers(20, 60)))
    return graphs.connected_gnp(
        int(rng.integers(30, 70)), float(rng.uniform(0.06, 0.15)), rng
    )


def _seed(round_index: int, case: str) -> int:
    return round_index * 104729 + sum(map(ord, case)) * 31


class TestDifferentialFuzz:
    def test_decay(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "decay")
            n = g.number_of_nodes()
            seed = _seed(r, "decay")
            active = np.random.default_rng(seed).random(n) < 0.45
            active[0] = True
            net_w, net_r = RadioNetwork(g), RadioNetwork(g)
            rng_w = np.random.default_rng(seed + 1)
            rng_r = np.random.default_rng(seed + 1)
            a = run_decay(net_w, active, rng_w, iterations=5)
            b = run_decay_reference(net_r, active, rng_r, iterations=5)
            assert (a.heard == b.heard).all()
            assert (a.heard_from == b.heard_from).all()
            assert a.messages == b.messages
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)

    @pytest.mark.parametrize("delivery", ["sparse", "dense"])
    def test_effective_degree(self, fuzz_rounds, delivery):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "eed" + delivery)
            n = g.number_of_nodes()
            seed = _seed(r, "eed")
            setup = np.random.default_rng(seed)
            p = setup.random(n) * 0.5
            active = setup.random(n) < 0.85
            net_w, net_r = RadioNetwork(g), RadioNetwork(g)
            rng_w = np.random.default_rng(seed + 1)
            rng_r = np.random.default_rng(seed + 1)
            a = estimate_effective_degree(
                net_w, p, active, rng_w, C=5, delivery=delivery
            )
            b = estimate_effective_degree_reference(
                net_r, p, active, rng_r, C=5
            )
            assert (a.high == b.high).all()
            assert (a.counts == b.counts).all()
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)

    def test_mis(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "mis")
            seed = _seed(r, "mis")
            config = MISConfig(eed_C=3)
            net_w, net_r = RadioNetwork(g), RadioNetwork(g)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = compute_mis(net_w, rng_w, config)
            b = compute_mis_reference(net_r, rng_r, config)
            assert a.mis == b.mis
            assert a.steps_used == b.steps_used
            assert a.rounds_used == b.rounds_used
            assert a.history == b.history
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)

    def test_bgi_broadcast(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "bgi")
            seed = _seed(r, "bgi")
            net_w, net_r = RadioNetwork(g), RadioNetwork(g)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = bgi_broadcast(net_w, 0, rng_w)
            b = bgi_broadcast_reference(net_r, 0, rng_r)
            assert a == b
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)

    def test_binary_search_election(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "leader")
            seed = _seed(r, "leader")
            net_w, net_r = RadioNetwork(g), RadioNetwork(g)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = binary_search_election(net_w, rng_w)
            b = binary_search_election_reference(net_r, rng_r)
            assert a == b
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)

    def test_wakeup(self, fuzz_rounds):
        # Result-only twin: the windowed path documents a post-success
        # rng-state divergence (it pre-draws the rest of the final coin
        # chunk), so each engine gets its own seeded generator.
        for r in range(fuzz_rounds):
            seed = _seed(r, "wakeup")
            setup = np.random.default_rng(seed)
            n = int(setup.integers(64, 1024))
            k = int(setup.integers(2, min(48, n)))
            a = mis_as_wakeup_strategy(n, k, np.random.default_rng(seed))
            b = mis_as_wakeup_strategy_reference(
                n, k, np.random.default_rng(seed)
            )
            assert a == b

    def test_icp_three_engines(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = nx.convert_node_labels_to_integers(_fuzz_graph(r, "icp"))
            seed = _seed(r, "icp")
            setup = np.random.default_rng(seed)
            mis = sorted(greedy_independent_set(g, setup, "random"))
            clustering = partition(g, 0.3, mis, setup)
            schedule = build_schedule(g, clustering)
            know = np.full(g.number_of_nodes(), -1, dtype=np.int64)
            know[0] = 3
            ell = int(setup.integers(2, 6))
            runs = {}
            for engine in ("reference", "windowed", "fused"):
                net = RadioNetwork(g)
                rng = np.random.default_rng(seed + 1)
                res = intra_cluster_propagation(
                    net, clustering, schedule, know, ell, rng,
                    engine=engine,
                )
                runs[engine] = (res, net, rng)
            ref, net_ref, rng_ref = runs["reference"]
            for engine in ("windowed", "fused"):
                res, net, rng = runs[engine]
                assert (res.knowledge == ref.knowledge).all()
                assert res.steps == ref.steps
                _assert_trace_equal(net, net_ref)
                _assert_rng_equal(rng, rng_ref)

    def test_decay_background(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = nx.convert_node_labels_to_integers(_fuzz_graph(r, "bg"))
            seed = _seed(r, "bg")
            setup = np.random.default_rng(seed)
            mis = sorted(greedy_independent_set(g, setup, "random"))
            clustering = partition(g, 0.35, mis, setup)
            n = g.number_of_nodes()
            know_w = np.full(n, -1, dtype=np.int64)
            know_w[: min(4, n)] = [6, -1, 2, 9][: min(4, n)]
            know_r = know_w.copy()
            total = int(setup.integers(50, 900))
            net_w, net_r = RadioNetwork(g), RadioNetwork(g)
            rng_w = np.random.default_rng(seed + 1)
            rng_r = np.random.default_rng(seed + 1)
            run_schedule(
                net_w,
                decay_background_schedule(
                    net_w, clustering, know_w, rng_w, total_steps=total
                ),
            )
            run_steps(
                DecayBackground(net_r, clustering, know_r), rng_r, total
            )
            assert (know_w == know_r).all()
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)

    def test_packet_compete(self, fuzz_rounds):
        # The full packet pipeline across all three engines; small
        # graphs — every stage is simulated step-for-step on the
        # reference side.
        for r in range(min(fuzz_rounds, 3)):
            seed = _seed(r, "compete")
            setup = np.random.default_rng(seed)
            g = nx.convert_node_labels_to_integers(
                graphs.random_udg(int(setup.integers(25, 45)), 2.5, setup)
            )
            sources = {0: 2, g.number_of_nodes() - 1: 5}
            runs = {}
            for engine in ("reference", "windowed", "fused"):
                net = RadioNetwork(g)
                res = compete_packet(
                    net, dict(sources), np.random.default_rng(seed + 1),
                    config=PacketCompeteConfig(engine=engine),
                )
                runs[engine] = (res, net)
            ref, net_ref = runs["reference"]
            for engine in ("windowed", "fused"):
                res, net = runs[engine]
                assert res == ref
                _assert_trace_equal(net, net_ref)


def _fuzz_schedule(n: int, seed: int) -> FaultSchedule:
    """A non-trivial shared fault environment for a twin pair."""
    return FaultSchedule.sample(
        n, 4000, seed=seed, crash_rate=0.08, churn=0.25, jam=0.1, hetero=0.3
    )


class TestFaultTwins:
    """Engine/reference pairs stay pinned under a shared FaultSchedule.

    The fault transforms are keyed purely on the global
    ``steps_elapsed`` clock, so the windowed engine and the step-wise
    reference twin must realize the *identical* fault pattern — same
    results, same trace totals, same final rng state, and the same
    realized-event counters. An empty schedule must additionally be
    bit-identical to no schedule at all.
    """

    @staticmethod
    def _twin_networks(g, seed):
        schedule = _fuzz_schedule(g.number_of_nodes(), seed)
        return (
            RadioNetwork(g, faults=schedule),
            RadioNetwork(g, faults=schedule),
        )

    @staticmethod
    def _assert_realized_equal(a: RadioNetwork, b: RadioNetwork) -> None:
        assert a._fault_state is not None and b._fault_state is not None
        assert a._fault_state.realized == b._fault_state.realized
        assert (
            a._fault_state.energy_remaining
            == b._fault_state.energy_remaining
        ).all()

    def test_decay_under_faults(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-decay")
            n = g.number_of_nodes()
            seed = _seed(r, "fault-decay")
            active = np.random.default_rng(seed).random(n) < 0.45
            active[0] = True
            net_w, net_r = self._twin_networks(g, seed)
            rng_w = np.random.default_rng(seed + 1)
            rng_r = np.random.default_rng(seed + 1)
            a = run_decay(net_w, active, rng_w, iterations=5)
            b = run_decay_reference(net_r, active, rng_r, iterations=5)
            assert (a.heard == b.heard).all()
            assert (a.heard_from == b.heard_from).all()
            assert a.messages == b.messages
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)
            self._assert_realized_equal(net_w, net_r)

    def test_effective_degree_under_faults(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-eed")
            n = g.number_of_nodes()
            seed = _seed(r, "fault-eed")
            setup = np.random.default_rng(seed)
            p = setup.random(n) * 0.5
            active = setup.random(n) < 0.85
            net_w, net_r = self._twin_networks(g, seed)
            rng_w = np.random.default_rng(seed + 1)
            rng_r = np.random.default_rng(seed + 1)
            a = estimate_effective_degree(net_w, p, active, rng_w, C=5)
            b = estimate_effective_degree_reference(net_r, p, active, rng_r, C=5)
            assert (a.high == b.high).all()
            assert (a.counts == b.counts).all()
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)
            self._assert_realized_equal(net_w, net_r)

    def test_mis_under_faults(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-mis")
            seed = _seed(r, "fault-mis")
            config = MISConfig(eed_C=3)
            net_w, net_r = self._twin_networks(g, seed)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = compute_mis(net_w, rng_w, config)
            b = compute_mis_reference(net_r, rng_r, config)
            assert a.mis == b.mis
            assert a.steps_used == b.steps_used
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)
            self._assert_realized_equal(net_w, net_r)

    def test_mis_restricted_under_faults(self, fuzz_rounds):
        # Active-set restriction × faults: a run forced onto residual
        # contexts realizes the identical fault masks (crashes, jams,
        # sleeps, energy debits land on the same global (step, node)
        # cells) as the unrestricted engine and the step-wise twin.
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-mis-restrict")
            seed = _seed(r, "fault-mis-restrict")
            config = MISConfig(eed_C=3)
            schedule = _fuzz_schedule(g.number_of_nodes(), seed)
            nets = [RadioNetwork(g, faults=schedule) for _ in range(3)]
            rngs = [np.random.default_rng(seed) for _ in range(3)]
            forced = compute_mis(
                nets[0], rngs[0], config,
                policy=ExecutionPolicy(restrict="force"),
            )
            off = compute_mis(
                nets[1], rngs[1], config,
                policy=ExecutionPolicy(restrict="off"),
            )
            ref = compute_mis_reference(nets[2], rngs[2], config)
            assert forced.mis == off.mis == ref.mis
            assert forced.steps_used == off.steps_used == ref.steps_used
            assert forced.history == off.history == ref.history
            _assert_trace_equal(nets[0], nets[1])
            _assert_trace_equal(nets[0], nets[2])
            _assert_rng_equal(*rngs)
            self._assert_realized_equal(nets[0], nets[1])
            self._assert_realized_equal(nets[0], nets[2])
            assert nets[0].residual_stats["restricted_steps"] > 0

    def test_decay_restricted_under_faults(self, fuzz_rounds):
        # Same property at the single-block level, where the support
        # (the Decay active set) is sparse from step 0.
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-decay-restrict")
            n = g.number_of_nodes()
            seed = _seed(r, "fault-decay-restrict")
            active = np.random.default_rng(seed).random(n) < 0.3
            active[0] = True
            net_f, net_r = self._twin_networks(g, seed)
            rng_f = np.random.default_rng(seed + 1)
            rng_r = np.random.default_rng(seed + 1)
            a = run_decay(
                net_f, active, rng_f, iterations=5,
                policy=ExecutionPolicy(restrict="force"),
            )
            b = run_decay_reference(net_r, active, rng_r, iterations=5)
            assert (a.heard == b.heard).all()
            assert (a.heard_from == b.heard_from).all()
            assert a.messages == b.messages
            _assert_trace_equal(net_f, net_r)
            _assert_rng_equal(rng_f, rng_r)
            self._assert_realized_equal(net_f, net_r)
            assert net_f.residual_stats["restricted_steps"] > 0

    def test_bgi_broadcast_under_faults(self, fuzz_rounds):
        # Crashed nodes can never be informed, so both twins run the
        # same bounded best-effort sweep budget.
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-bgi")
            seed = _seed(r, "fault-bgi")
            net_w, net_r = self._twin_networks(g, seed)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = bgi_broadcast(net_w, 0, rng_w, max_sweeps=40, best_effort=True)
            b = bgi_broadcast_reference(
                net_r, 0, rng_r, max_sweeps=40, best_effort=True
            )
            assert a == b
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)
            self._assert_realized_equal(net_w, net_r)

    def test_mis_restart_under_faults(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-restart")
            seed = _seed(r, "fault-restart")
            net_w, net_r = self._twin_networks(g, seed)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = compute_restartable_mis(net_w, rng_w)
            b = restartable_mis_reference(net_r, rng_r)
            assert a.mis == b.mis
            assert a.readmitted == b.readmitted
            assert a.conflict_edges == b.conflict_edges
            assert a.dominated_fraction == b.dominated_fraction
            assert a.history == b.history
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)
            self._assert_realized_equal(net_w, net_r)

    def test_leader_uptime_under_faults(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-uptime")
            seed = _seed(r, "fault-uptime")
            net_w, net_r = self._twin_networks(g, seed)
            rng_w = np.random.default_rng(seed)
            rng_r = np.random.default_rng(seed)
            a = uptime_threshold_election(net_w, rng_w, threshold=0.6)
            b = uptime_threshold_election_reference(
                net_r, rng_r, threshold=0.6
            )
            assert a == b
            _assert_trace_equal(net_w, net_r)
            _assert_rng_equal(rng_w, rng_r)
            self._assert_realized_equal(net_w, net_r)

    def test_icp_under_faults(self, fuzz_rounds):
        for r in range(fuzz_rounds):
            g = nx.convert_node_labels_to_integers(
                _fuzz_graph(r, "fault-icp")
            )
            seed = _seed(r, "fault-icp")
            setup = np.random.default_rng(seed)
            mis = sorted(greedy_independent_set(g, setup, "random"))
            clustering = partition(g, 0.3, mis, setup)
            schedule = build_schedule(g, clustering)
            know = np.full(g.number_of_nodes(), -1, dtype=np.int64)
            know[0] = 3
            faults = _fuzz_schedule(g.number_of_nodes(), seed)
            runs = {}
            for engine in ("reference", "windowed", "fused"):
                net = RadioNetwork(g, faults=faults)
                rng = np.random.default_rng(seed + 1)
                res = intra_cluster_propagation(
                    net, clustering, schedule, know, 3, rng,
                    policy=ExecutionPolicy(engine=engine),
                )
                runs[engine] = (res, net, rng)
            ref, net_ref, rng_ref = runs["reference"]
            for engine in ("windowed", "fused"):
                res, net, rng = runs[engine]
                assert (res.knowledge == ref.knowledge).all()
                assert res.steps == ref.steps
                _assert_trace_equal(net, net_ref)
                _assert_rng_equal(rng, rng_ref)
                self._assert_realized_equal(net, net_ref)

    @pytest.mark.parametrize("case", ["decay", "mis"])
    def test_empty_schedule_is_bit_identical_to_none(self, fuzz_rounds, case):
        for r in range(fuzz_rounds):
            g = _fuzz_graph(r, "fault-empty-" + case)
            n = g.number_of_nodes()
            seed = _seed(r, "fault-empty-" + case)
            empty = FaultSchedule(seed=seed & 0xFFFF)
            net_plain = RadioNetwork(g)
            net_empty = RadioNetwork(g, faults=empty)
            assert net_empty._fault_state is None
            rng_plain = np.random.default_rng(seed)
            rng_empty = np.random.default_rng(seed)
            if case == "decay":
                active = np.random.default_rng(seed + 9).random(n) < 0.5
                active[0] = True
                a = run_decay(net_plain, active, rng_plain, iterations=4)
                b = run_decay(net_empty, active, rng_empty, iterations=4)
                assert (a.heard == b.heard).all()
                assert (a.heard_from == b.heard_from).all()
            else:
                a = compute_mis(
                    net_plain, rng_plain, policy=ExecutionPolicy()
                )
                b = compute_mis(
                    net_empty, rng_empty,
                    policy=ExecutionPolicy(faults=empty),
                )
                assert a.mis == b.mis
                assert a.steps_used == b.steps_used
            _assert_trace_equal(net_plain, net_empty)
            _assert_rng_equal(rng_plain, rng_empty)
