"""Documentation quality gates.

The deliverable requires doc comments on every public item; these tests
enforce it mechanically so regressions cannot slip in: every public
module, class, function, and method in the package must carry a
docstring, and the repo-level documents must exist and reference each
other coherently.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import repro

# repro/__init__.py -> src/repro -> src -> repo root
REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


def _walk_modules():
    """Yield every module in the repro package."""
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(obj):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _walk_modules() if not inspect.getdoc(m)
        ]
        assert not undocumented, f"modules missing docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in _public_members(module):
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"missing docstrings: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in _walk_modules():
            for cls_name, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not inspect.getdoc(
                        member
                    ):
                        missing.append(
                            f"{module.__name__}.{cls_name}.{name}"
                        )
        assert not missing, f"methods missing docstrings: {missing}"


class TestRepoDocuments:
    def _read(self, name: str) -> str:
        path = REPO_ROOT / name
        assert path.exists(), f"{name} is missing"
        return path.read_text()

    def test_readme_covers_required_sections(self):
        readme = self._read("README.md")
        for required in ("Install", "Quickstart", "Architecture"):
            assert required in readme, f"README missing section {required}"

    def test_design_has_experiment_index(self):
        design = self._read("DESIGN.md")
        for eid in ("E1", "E6", "E10", "E13"):
            assert f"| {eid} " in design, f"DESIGN.md missing {eid} row"

    def test_experiments_records_every_experiment(self):
        experiments = self._read("EXPERIMENTS.md")
        for eid in (
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11", "E12", "E13",
        ):
            assert f"## {eid} " in experiments, (
                f"EXPERIMENTS.md missing section for {eid}"
            )

    def test_design_documents_substitutions(self):
        design = self._read("DESIGN.md")
        assert "Substitutions" in design
