"""Guard tests for the example scripts.

Examples are run manually (some take minutes), but the test suite still
guards against drift: each script must compile, import only things the
package actually exports, and expose a ``main`` entry point.
"""

from __future__ import annotations

import ast
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXPECTED = {
    "quickstart.py",
    "sensor_broadcast.py",
    "adhoc_leader_election.py",
    "mis_inspection.py",
    "lower_bound_reduction.py",
    "api_tour.py",
}


def _example_files() -> list[pathlib.Path]:
    return sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleScripts:
    def test_expected_examples_present(self):
        names = {p.name for p in _example_files()}
        assert EXPECTED <= names

    @pytest.mark.parametrize(
        "path", _example_files(), ids=lambda p: p.name
    )
    def test_compiles(self, path, tmp_path):
        py_compile.compile(
            str(path), cfile=str(tmp_path / (path.name + "c")), doraise=True
        )

    @pytest.mark.parametrize(
        "path", _example_files(), ids=lambda p: p.name
    )
    def test_has_main_and_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"
        functions = {
            node.name
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{path.name} needs a main()"

    @pytest.mark.parametrize(
        "path", _example_files(), ids=lambda p: p.name
    )
    def test_imports_resolve(self, path):
        """Every ``from repro...`` import in an example must exist."""
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if not node.module.startswith("repro"):
                    continue
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )
