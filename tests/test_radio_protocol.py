"""Tests for the protocol driver, multiplexer, and budget handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio import (
    BudgetExceededError,
    NO_SENDER,
    Protocol,
    ProtocolError,
    RadioNetwork,
    SilentProtocol,
    TimeMultiplexer,
    run_protocol,
    run_steps,
)


class CountdownProtocol(Protocol):
    """Finishes after a fixed number of steps; node 0 transmits always."""

    def __init__(self, network, steps):
        super().__init__(network)
        self.remaining = steps
        self.observed_steps = 0

    def transmit_mask(self, rng):
        mask = np.zeros(self.n, dtype=bool)
        mask[0] = True
        return mask

    def observe(self, hear_from):
        self.observed_steps += 1
        self.remaining -= 1
        if self.remaining <= 0:
            self._finished = True

    def result(self):
        return self.observed_steps


class TestRunProtocol:
    def test_runs_to_completion(self, net_path5, rng):
        protocol = CountdownProtocol(net_path5, steps=7)
        assert run_protocol(protocol, rng) == 7

    def test_budget_exceeded_raises(self, net_path5, rng):
        protocol = CountdownProtocol(net_path5, steps=100)
        with pytest.raises(BudgetExceededError):
            run_protocol(protocol, rng, max_steps=10)

    def test_budget_exactly_sufficient(self, net_path5, rng):
        protocol = CountdownProtocol(net_path5, steps=10)
        assert run_protocol(protocol, rng, max_steps=10) == 10

    def test_network_steps_advance(self, net_path5, rng):
        protocol = CountdownProtocol(net_path5, steps=4)
        run_protocol(protocol, rng)
        assert net_path5.steps_elapsed == 4

    def test_default_result_raises(self, net_path5):
        assert isinstance(SilentProtocol(net_path5), Protocol)
        with pytest.raises(ProtocolError):
            SilentProtocol(net_path5).result()


class TestRunSteps:
    def test_run_steps_partial(self, net_path5, rng):
        protocol = CountdownProtocol(net_path5, steps=10)
        run_steps(protocol, rng, 3)
        assert protocol.observed_steps == 3
        assert not protocol.finished

    def test_run_steps_stops_at_finish(self, net_path5, rng):
        protocol = CountdownProtocol(net_path5, steps=2)
        run_steps(protocol, rng, 100)
        assert protocol.observed_steps == 2
        assert net_path5.steps_elapsed == 2


class TestTimeMultiplexer:
    def test_main_gets_even_steps(self, net_path5, rng):
        main = CountdownProtocol(net_path5, steps=5)
        background = CountdownProtocol(net_path5, steps=1000)
        muxed = TimeMultiplexer(net_path5, main, background)
        run_protocol(muxed, rng, max_steps=100)
        assert main.finished
        # Main saw 5 steps; background saw 4 or 5 (interleaved).
        assert main.observed_steps == 5
        assert background.observed_steps in (4, 5)

    def test_multiplexer_result_is_mains(self, net_path5, rng):
        main = CountdownProtocol(net_path5, steps=3)
        muxed = TimeMultiplexer(net_path5, main, SilentProtocol(net_path5))
        assert run_protocol(muxed, rng, max_steps=100) == 3

    def test_multiplexer_doubles_step_count(self, net_path5, rng):
        main = CountdownProtocol(net_path5, steps=5)
        muxed = TimeMultiplexer(net_path5, main, SilentProtocol(net_path5))
        run_protocol(muxed, rng, max_steps=100)
        # 5 main steps at even slots -> 9 or 10 total network steps.
        assert net_path5.steps_elapsed in (9, 10)

    def test_rejects_foreign_network(self, net_path5, net_clique6):
        main = CountdownProtocol(net_path5, steps=1)
        foreign = CountdownProtocol(net_clique6, steps=1)
        with pytest.raises(ProtocolError):
            TimeMultiplexer(net_path5, main, foreign)

    def test_finished_background_stays_silent(self, net_path5, rng):
        main = CountdownProtocol(net_path5, steps=10)
        background = CountdownProtocol(net_path5, steps=1)
        muxed = TimeMultiplexer(net_path5, main, background)
        run_protocol(muxed, rng, max_steps=100)
        assert background.observed_steps == 1
        assert main.observed_steps == 10


class TestSilentProtocol:
    def test_never_transmits(self, net_path5, rng):
        protocol = SilentProtocol(net_path5)
        mask = protocol.transmit_mask(rng)
        assert not mask.any()

    def test_never_finishes(self, net_path5, rng):
        protocol = SilentProtocol(net_path5)
        run_steps(protocol, rng, 5)
        assert not protocol.finished
