"""The front-door contract: ``repro.api.run`` vs the legacy entry points.

Three layers of pinning:

1. **Bit-identity** — every registered protocol run through
   :func:`repro.api.run` must reproduce its legacy entry point exactly
   on a shared seed: results, radio-step counts, trace totals, and the
   *final rng state* (the strongest stream-equality statement — one
   extra coin anywhere diverges it).
2. **Uniform refusals** — unknown ``engine``/``delivery`` strings and
   malformed ``chunk_steps``/``mem_budget`` values raise
   :class:`~repro.radio.errors.ProtocolError` naming the accepted
   values, identically across the policy constructor, ``run``, the
   CLI, and ``run_trials*``.
3. **Deprecation shims** — the old per-call kwargs still work, produce
   bit-identical runs, and warn exactly once per entry point.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import numpy as np
import pytest

import repro.api as api
from repro import graphs
from repro.analysis import run_report_trials, run_trials, summarize_reports
from repro.api import (
    BGIConfig,
    BroadcastConfig,
    DecayConfig,
    EEDConfig,
    ExecutionPolicy,
    ICPConfig,
    LeaderConfig,
    PartitionConfig,
    RunReport,
    WakeupConfig,
    parse_mem_budget,
)
from repro.baselines.bgi_broadcast import bgi_broadcast
from repro.core import (
    CompeteConfig,
    MISConfig,
    broadcast,
    broadcast_packet_level,
    build_icp_inputs,
    compute_mis,
    elect_leader,
    elect_leader_packet,
    estimate_effective_degree,
    intra_cluster_propagation,
    mis_as_wakeup_strategy,
    partition,
    run_decay,
)
from repro.engine import policy as policy_module
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork
from repro.radio.errors import ProtocolError


def _udg(n: int = 80, seed: int = 5):
    return graphs.random_udg(n, 4.0, np.random.default_rng(seed))


def _rng_pair(seed: int = 17):
    return np.random.default_rng(seed), np.random.default_rng(seed)


def _state(rng):
    return rng.bit_generator.state


def _trace_totals(network):
    t = network.trace
    return {
        "steps": t.total_steps,
        "transmissions": t.total_transmissions,
        "receptions": t.total_receptions,
    }


# ---------------------------------------------------------------------------
# 1. Bit-identity per protocol.
# ---------------------------------------------------------------------------
class TestFrontDoorEquivalence:
    @pytest.mark.parametrize("engine", ["auto", "windowed", "reference"])
    def test_mis(self, engine):
        g = _udg()
        rng_a, rng_b = _rng_pair()
        config = MISConfig(eed_C=3, record_golden=False)
        net = RadioNetwork(g)
        legacy = compute_mis(net, rng_a, config, policy=ExecutionPolicy(engine=engine))
        report = api.run(
            "mis", g, rng=rng_b, config=config,
            policy=ExecutionPolicy(engine=engine),
        )
        assert report.result.mis == legacy.mis
        assert report.result.steps_used == legacy.steps_used
        assert report.steps == net.steps_elapsed
        assert report.trace == _trace_totals(net)
        assert _state(rng_a) == _state(rng_b)
        assert report.policy.engine == (
            "windowed" if engine == "auto" else engine
        )

    def test_decay(self):
        g = _udg()
        n = g.number_of_nodes()
        active = np.random.default_rng(2).random(n) < 0.5
        rng_a, rng_b = _rng_pair(3)
        net = RadioNetwork(g)
        legacy = run_decay(net, active, rng_a, iterations=5)
        report = api.run(
            "decay", g, rng=rng_b, config=DecayConfig(
                active=active, iterations=5
            ),
        )
        assert (report.result.heard_from == legacy.heard_from).all()
        assert report.steps == net.steps_elapsed
        assert report.trace == _trace_totals(net)
        assert _state(rng_a) == _state(rng_b)

    @pytest.mark.parametrize("delivery", ["auto", "sparse", "dense"])
    def test_eed(self, delivery):
        g = _udg()
        n = g.number_of_nodes()
        p = np.full(n, 0.5)
        active = np.ones(n, dtype=bool)
        rng_a, rng_b = _rng_pair(4)
        net = RadioNetwork(g)
        legacy = estimate_effective_degree(
            net, p, active, rng_a, C=3,
            policy=ExecutionPolicy(delivery=delivery),
        )
        report = api.run(
            "eed", g, rng=rng_b, config=EEDConfig(p=0.5, C=3),
            policy=ExecutionPolicy(delivery=delivery),
        )
        assert (report.result.counts == legacy.counts).all()
        assert report.trace == _trace_totals(net)
        assert _state(rng_a) == _state(rng_b)

    @pytest.mark.parametrize("engine", ["windowed", "fused", "reference"])
    def test_icp(self, engine):
        g = _udg(70, 6)
        rng_a, rng_b = _rng_pair(5)
        config = ICPConfig(beta=0.3, ell=3, sources={0: 7})
        # The legacy sequence the CLI and P3 bench always ran:
        clustering, schedule, knowledge = build_icp_inputs(
            g, rng_a, beta=0.3, sources={0: 7}
        )
        net = RadioNetwork(g)
        legacy = intra_cluster_propagation(
            net, clustering, schedule, knowledge, 3, rng_a,
            policy=ExecutionPolicy(engine=engine),
        )
        report = api.run(
            "icp", g, rng=rng_b, config=config,
            policy=ExecutionPolicy(engine=engine),
        )
        assert (report.result.knowledge == legacy.knowledge).all()
        assert report.result.steps == legacy.steps
        assert report.steps == net.steps_elapsed
        assert report.trace == _trace_totals(net)
        assert _state(rng_a) == _state(rng_b)

    def test_bgi(self):
        g = _udg(60, 7)
        rng_a, rng_b = _rng_pair(6)
        net = RadioNetwork(g)
        legacy = bgi_broadcast(net, 0, rng_a)
        report = api.run("bgi", g, rng=rng_b, config=BGIConfig(source=0))
        assert report.result.steps == legacy.steps
        assert report.result.sweeps == legacy.sweeps
        assert report.trace == _trace_totals(net)
        assert _state(rng_a) == _state(rng_b)

    def test_wakeup(self):
        rng_a, rng_b = _rng_pair(8)
        legacy = mis_as_wakeup_strategy(512, 24, rng_a)
        report = api.run(
            "wakeup", None, rng=rng_b, config=WakeupConfig(n=512, k=24)
        )
        assert report.result == legacy
        assert report.steps == legacy.steps
        assert _state(rng_a) == _state(rng_b)

    @pytest.mark.parametrize("baseline", [False, True])
    def test_broadcast_accounted(self, baseline):
        g = _udg(60, 9)
        rng_a, rng_b = _rng_pair(9)
        config = CompeteConfig(centers_mode="all" if baseline else "mis")
        legacy = broadcast(g, 0, rng_a, config=config)
        report = api.run(
            "broadcast", g, rng=rng_b,
            config=BroadcastConfig(source=0, baseline=baseline),
        )
        assert report.result.delivered == legacy.delivered
        assert report.result.total_rounds == legacy.total_rounds
        assert report.steps == 0  # round-accounted: no radio steps
        assert _state(rng_a) == _state(rng_b)

    def test_broadcast_packet(self):
        g = _udg(50, 10)
        rng_a, rng_b = _rng_pair(10)
        legacy = broadcast_packet_level(g, 0, rng_a)
        report = api.run(
            "broadcast", g, rng=rng_b,
            config=BroadcastConfig(source=0, packet=True),
        )
        assert report.result.delivered == legacy.delivered
        assert report.result.steps == legacy.steps
        assert report.result.stage_steps == legacy.stage_steps
        assert report.steps == legacy.steps
        assert _state(rng_a) == _state(rng_b)

    @pytest.mark.parametrize("packet", [False, True])
    def test_leader(self, packet):
        g = _udg(60, 11)
        rng_a, rng_b = _rng_pair(11)
        if packet:
            legacy = elect_leader_packet(RadioNetwork(g), rng_a)
            report = api.run(
                "leader", g, rng=rng_b, config=LeaderConfig(packet=True)
            )
            assert report.result.steps == legacy.steps
        else:
            legacy = elect_leader(g, rng_a)
            report = api.run("leader", g, rng=rng_b)
            assert report.result.total_rounds == legacy.total_rounds
        assert report.result.elected == legacy.elected
        assert report.result.leader == legacy.leader
        assert report.result.candidates == legacy.candidates
        assert _state(rng_a) == _state(rng_b)

    @pytest.mark.parametrize("engine", ["windowed", "reference"])
    def test_partition(self, engine):
        g = _udg(70, 12)
        rng_a, rng_b = _rng_pair(12)
        mis = sorted(greedy_independent_set(g, rng_a, strategy="random"))
        legacy = partition(g, 0.25, mis, rng_a)
        report = api.run(
            "partition", g, rng=rng_b, config=PartitionConfig(beta=0.25),
            policy=ExecutionPolicy(engine=engine),
        )
        # The reference (Dijkstra) twin is pinned bit-identical to the
        # frontier engine elsewhere; here both paths must match the
        # legacy draw exactly.
        assert (report.result.assignment == legacy.assignment).all()
        assert (
            report.result.distance_to_center == legacy.distance_to_center
        ).all()
        assert _state(rng_a) == _state(rng_b)

    def test_prebuilt_network_accounts_delta(self):
        # A reused network: the report must account only this run.
        g = _udg(50, 13)
        net = RadioNetwork(g)
        api.run("decay", net, seed=1, config=DecayConfig(iterations=3))
        before = net.steps_elapsed
        report = api.run("decay", net, seed=2, config=DecayConfig(iterations=3))
        assert report.steps == net.steps_elapsed - before
        assert report.trace["steps"] == report.steps

    def test_streaming_policy_bit_identical(self):
        g = _udg(60, 14)
        rng_a, rng_b = _rng_pair(15)
        plain = api.run("mis", g, rng=rng_a,
                        config=MISConfig(eed_C=3, record_golden=False))
        streamed = api.run(
            "mis", g, rng=rng_b,
            config=MISConfig(eed_C=3, record_golden=False),
            policy=ExecutionPolicy(mem_budget=1 << 18),
        )
        assert streamed.result.mis == plain.result.mis
        assert streamed.steps == plain.steps
        assert _state(rng_a) == _state(rng_b)
        assert streamed.policy.chunk_steps is not None

    def test_validating_policy(self):
        g = _udg(40, 16)
        report = api.run(
            "decay", g, seed=3, config=DecayConfig(iterations=3),
            policy=ExecutionPolicy(validate=True),
        )
        assert report.policy.validate
        assert report.result.heard.shape == (g.number_of_nodes(),)


# ---------------------------------------------------------------------------
# 2. The RunReport record.
# ---------------------------------------------------------------------------
class TestRunReport:
    def test_provenance_and_row(self):
        g = _udg(40, 20)
        report = api.run("eed", g, seed=123, config=EEDConfig(C=2))
        assert isinstance(report, RunReport)
        assert report.provenance["seed"] == 123
        assert report.provenance["graph"]["n"] == 40
        assert report.provenance["graph"]["family"] == "udg"
        assert report.provenance["version"]
        assert report.wall_time_s > 0
        assert report.peak_mem_bytes is None  # opt-in measurement
        row = report.row()
        json.dumps(row)  # must be JSON-clean
        assert row["protocol"] == "eed"
        assert row["engine"] == "windowed"

    def test_measure_memory(self):
        g = _udg(40, 21)
        report = api.run(
            "eed", g, seed=1, config=EEDConfig(C=2), measure_memory=True
        )
        assert report.peak_mem_bytes is not None
        assert report.peak_mem_bytes > 0

    def test_rng_provenance_is_none_for_live_generator(self):
        g = _udg(30, 22)
        report = api.run("decay", g, rng=np.random.default_rng(0))
        assert report.provenance["seed"] is None

    def test_policy_echo_resolves_budget_default(self):
        from repro.engine.streaming import set_memory_budget

        g = _udg(30, 23)
        set_memory_budget(1 << 20)
        try:
            report = api.run("decay", g, seed=0)
        finally:
            set_memory_budget(None)
        assert report.policy.mem_budget == 1 << 20
        assert report.policy.chunk_steps is not None


# ---------------------------------------------------------------------------
# 3. Registry discovery.
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_expected_protocols_registered(self):
        names = set(api.protocol_names())
        assert {
            "mis", "decay", "eed", "icp", "bgi", "wakeup",
            "broadcast", "leader", "partition",
        } <= names

    def test_specs_are_coherent(self):
        for spec in api.list_protocols():
            assert spec.default_engine in spec.engines
            assert spec.accepts in ("network", "graph", "none")
            if spec.cli is not None:
                assert spec.cli.help

    def test_unknown_protocol_refused_by_name(self):
        with pytest.raises(ProtocolError, match="registered"):
            api.get_protocol("does-not-exist")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ProtocolError, match="already registered"):
            api.register_protocol(
                name="mis", title="dup", config_cls=None, result_cls=object,
                engines=("windowed",), default_engine="windowed",
                emitters=(), reference=None,
            )(lambda *a: None)

    def test_wrong_config_type_refused(self):
        g = _udg(20, 24)
        with pytest.raises(ProtocolError, match="MISConfig"):
            api.run("mis", g, seed=0, config=DecayConfig())


# ---------------------------------------------------------------------------
# 4. Uniform refusals.
# ---------------------------------------------------------------------------
class TestUniformRefusals:
    def test_policy_names_accepted_engines(self):
        with pytest.raises(ProtocolError, match="windowed"):
            ExecutionPolicy(engine="bogus")

    def test_policy_names_accepted_deliveries(self):
        with pytest.raises(ProtocolError, match="sparse"):
            ExecutionPolicy(delivery="bogus")

    @pytest.mark.parametrize("value", [0, -3])
    def test_chunk_steps_bounds(self, value):
        with pytest.raises(ProtocolError, match="chunk_steps"):
            ExecutionPolicy(chunk_steps=value)

    def test_mem_budget_bounds(self):
        with pytest.raises(ProtocolError, match="mem_budget"):
            ExecutionPolicy(mem_budget=0)

    @pytest.mark.parametrize("text", ["", "12Q", "fast", "-5M"])
    def test_parse_mem_budget_malformed(self, text):
        with pytest.raises(ProtocolError):
            parse_mem_budget(text)

    def test_parse_mem_budget_suffixes(self):
        assert parse_mem_budget("64M") == 64 << 20
        assert parse_mem_budget("2g") == 2 << 30
        assert parse_mem_budget("512") == 512

    def test_protocol_refuses_engines_it_lacks(self):
        g = _udg(20, 25)
        with pytest.raises(ProtocolError, match="windowed"):
            api.run(
                "mis", g, seed=0, policy=ExecutionPolicy(engine="fused")
            )
        # Same refusal, legacy path:
        with pytest.raises(ProtocolError, match="windowed"):
            compute_mis(
                RadioNetwork(g), np.random.default_rng(0),
                policy=ExecutionPolicy(engine="fused"),
            )

    def test_numpy_integer_knobs_accepted(self):
        # Slab heights and budgets computed with numpy arithmetic are
        # natural here; the validators must not reject np integers.
        p = ExecutionPolicy(
            chunk_steps=np.int64(4), mem_budget=np.int64(1 << 20)
        )
        assert p.chunk_steps == 4 and p.mem_budget == 1 << 20
        with pytest.raises(ProtocolError, match="chunk_steps"):
            ExecutionPolicy(chunk_steps=np.int64(0))

    def test_partition_refuses_inert_validate(self):
        g = _udg(20, 28)
        with pytest.raises(ProtocolError, match="validate"):
            api.run(
                "partition", g, seed=0,
                policy=ExecutionPolicy(validate=True),
            )

    def test_validate_refuses_reference_engine(self):
        # The reference paths build no runner, so the contract checker
        # could not interpose — an inert validate refuses by name.
        g = _udg(20, 27)
        with pytest.raises(ProtocolError, match="validate"):
            api.run(
                "mis", g, seed=0,
                policy=ExecutionPolicy(engine="reference", validate=True),
            )
        with pytest.raises(ProtocolError, match="validate"):
            run_decay(
                RadioNetwork(g), np.ones(20, dtype=bool),
                np.random.default_rng(0),
                policy=ExecutionPolicy(engine="reference", validate=True),
            )

    def test_run_needs_exactly_one_randomness_source(self):
        g = _udg(20, 26)
        with pytest.raises(ProtocolError, match="exactly one"):
            api.run("decay", g)
        with pytest.raises(ProtocolError, match="exactly one"):
            api.run("decay", g, seed=1, rng=np.random.default_rng(1))

    def test_run_trials_refuses_double_budget(self):
        with pytest.raises(ProtocolError, match="policy"):
            run_trials(
                lambda rng: 0.0, 1, 0,
                mem_budget=1 << 20, policy=ExecutionPolicy(),
            )

    def test_cli_refuses_malformed_mem_budget(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["mis", "--n", "10", "--mem-budget", "12Q"])
        assert exc.value.code == 2
        assert "suffix" in capsys.readouterr().err

    def test_cli_refuses_unknown_engine(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["mis", "--n", "10", "--engine", "bogus"])
        assert exc.value.code == 2
        assert "windowed" in capsys.readouterr().err

    def test_cli_fused_contradiction(self, capsys):
        from repro.cli import main

        code = main(
            ["icp", "--n", "20", "--fused", "--engine", "reference"]
        )
        assert code == 2
        assert "contradicts" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# 5. Deprecation shims.
# ---------------------------------------------------------------------------
class TestDeprecationShims:
    def test_legacy_kwargs_equal_policy(self):
        g = _udg(50, 30)
        rng_a, rng_b = _rng_pair(31)
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = compute_mis(
                net_a, rng_a, MISConfig(eed_C=3, record_golden=False),
                engine="windowed", delivery="sparse",
            )
        new = compute_mis(
            net_b, rng_b, MISConfig(eed_C=3, record_golden=False),
            policy=ExecutionPolicy(engine="windowed", delivery="sparse"),
        )
        assert old.mis == new.mis
        assert old.steps_used == new.steps_used
        assert net_a.steps_elapsed == net_b.steps_elapsed
        assert _trace_totals(net_a) == _trace_totals(net_b)
        assert _state(rng_a) == _state(rng_b)

    def test_warning_emitted_once_per_entry_point(self):
        g = _udg(30, 32)
        policy_module._warned_legacy.discard("run_decay")
        active = np.ones(g.number_of_nodes(), dtype=bool)
        with pytest.warns(DeprecationWarning, match="run_decay"):
            run_decay(
                RadioNetwork(g), active, np.random.default_rng(0),
                iterations=1, chunk_steps=4,
            )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_decay(
                RadioNetwork(g), active, np.random.default_rng(0),
                iterations=1, chunk_steps=4,
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_policy_plus_legacy_kwargs_refused(self):
        g = _udg(20, 33)
        with pytest.raises(ProtocolError, match="both"):
            compute_mis(
                RadioNetwork(g), np.random.default_rng(0),
                engine="reference", policy=ExecutionPolicy(),
            )

    def test_packet_config_policy_and_engine_refused(self):
        from repro.core import PacketCompeteConfig

        with pytest.raises(ValueError, match="policy"):
            PacketCompeteConfig(engine="fused", policy=ExecutionPolicy())

    def test_packet_config_engine_rides_through_front_door(self):
        # A caller-supplied packet_compete keeps its legacy engine=
        # field working through run(): the engine moves onto the
        # injected policy instead of refusing against it.
        from repro.core import PacketCompeteConfig

        g = _udg(40, 34)
        rng_a, rng_b = _rng_pair(35)
        legacy = broadcast_packet_level(
            g, 0, rng_a, config=PacketCompeteConfig(engine="fused")
        )
        report = api.run(
            "broadcast", g, rng=rng_b,
            config=BroadcastConfig(
                packet=True,
                packet_compete=PacketCompeteConfig(engine="fused"),
            ),
        )
        assert report.result.steps == legacy.steps
        assert _state(rng_a) == _state(rng_b)
        # The echo names the engine that actually ran, not the
        # pre-override resolution.
        assert report.policy.engine == "fused"
        # A genuinely conflicting explicit policy engine still refuses.
        with pytest.raises(ProtocolError, match="conflicts"):
            api.run(
                "broadcast", g, seed=0,
                config=BroadcastConfig(
                    packet=True,
                    packet_compete=PacketCompeteConfig(engine="fused"),
                ),
                policy=ExecutionPolicy(engine="reference"),
            )

    def test_round_accounted_refuses_inert_knobs(self):
        g = _udg(30, 36)
        with pytest.raises(ProtocolError, match="packet=True"):
            api.run(
                "broadcast", g, seed=0,
                policy=ExecutionPolicy(engine="reference"),
            )
        with pytest.raises(ProtocolError, match="packet=True"):
            api.run(
                "leader", g, seed=0,
                policy=ExecutionPolicy(validate=True),
            )
        # The same knobs are honored in packet mode.
        report = api.run(
            "broadcast", g, seed=0,
            config=BroadcastConfig(packet=True),
            policy=ExecutionPolicy(engine="reference"),
        )
        assert report.policy.engine == "reference"

    def test_bgi_source_bounds_refused(self):
        g = _udg(30, 37)
        with pytest.raises(ProtocolError, match="out of range"):
            api.run("bgi", g, seed=0, config=BGIConfig(source=99))
        with pytest.raises(ProtocolError, match="out of range"):
            api.run("bgi", g, seed=0, config=BGIConfig(sources=[0, 99]))

    def test_run_trials_refuses_non_budget_policy_fields(self):
        # The trial runners drive opaque measure callables: the only
        # policy field they can impose is the memory budget, so other
        # fields refuse instead of being silently dropped.
        with pytest.raises(ProtocolError, match="mem_budget"):
            run_trials(
                lambda rng: 0.0, 1, 0,
                policy=ExecutionPolicy(chunk_steps=4),
            )
        with pytest.raises(ProtocolError, match="mem_budget"):
            run_trials(
                lambda rng: 0.0, 1, 0,
                policy=ExecutionPolicy(engine="reference"),
            )


# ---------------------------------------------------------------------------
# 6. Front-door trials.
# ---------------------------------------------------------------------------
class TestReportTrials:
    def test_reports_are_seed_reproducible(self):
        g = _udg(40, 40)
        a = run_report_trials("decay", g, 3, seed=7)
        b = run_report_trials("decay", g, 3, seed=7)
        assert [r.steps for r in a] == [r.steps for r in b]
        assert [
            (x.result.heard_from == y.result.heard_from).all()
            for x, y in zip(a, b)
        ] == [True, True, True]
        summary = summarize_reports(a)
        assert summary["steps"].count == 3

    def test_policy_travels_into_trials(self):
        g = _udg(40, 41)
        reports = run_report_trials(
            "eed", g, 2, seed=8,
            config=EEDConfig(C=2),
            policy=ExecutionPolicy(mem_budget=1 << 18),
        )
        assert all(r.policy.chunk_steps is not None for r in reports)


# ---------------------------------------------------------------------------
# 7. Policy resolution order.
# ---------------------------------------------------------------------------
class TestPolicyResolution:
    def test_explicit_chunk_beats_budget(self):
        p = ExecutionPolicy(chunk_steps=7, mem_budget=1 << 30)
        assert p.resolve(1000).chunk_steps == 7

    def test_budget_derives_chunk(self):
        p = ExecutionPolicy(mem_budget=64 << 20)
        from repro.engine.streaming import chunk_steps_for_budget

        assert p.resolve(100000).chunk_steps == chunk_steps_for_budget(
            100000, 64 << 20
        )

    def test_resolution_is_idempotent(self):
        p = ExecutionPolicy(mem_budget=1 << 20).resolve(500)
        assert p.resolve(500) == p

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPolicy().engine = "reference"  # type: ignore[misc]
