"""Equivalence tests for the vectorized hot-path engine (PR 1).

The engine work is only admissible because it is *exactly* equivalent to
the straightforward implementations it replaced. These tests pin that
down:

* ``deliver_window`` reproduces sequential ``deliver`` bit-for-bit on
  random mask windows (including trace totals and step counts);
* the batched ``run_decay`` consumes the same rng stream and produces
  the same result as driving the ``Decay`` protocol step by step;
* the CSR-native frontier ``partition`` engine matches the reference
  multi-source Dijkstra bit-for-bit under shared shifts;
* ``deliver_detect`` agrees with ``deliver`` plus an explicit
  carrier-sense recomputation;
* the csgraph-backed graph facts (diameter, distance histograms,
  schedule layers) match their networkx predecessors;
* the parallel trial runner returns the serial runner's numbers.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.analysis import experiments
from repro.core.cluster_stats import center_distance_histogram
from repro.core.decay import Decay, run_decay
from repro.core.mpx import draw_shifts, partition, partition_reference
from repro.core.schedule import build_schedule
from repro.graphs.context import GraphContext, distances_from, graph_context
from repro.radio import (
    CheapTrace,
    InvalidActionError,
    NO_SENDER,
    RadioNetwork,
    run_steps,
)


def _random_graph(rng: np.random.Generator, kind: int) -> nx.Graph:
    if kind % 4 == 0:
        return graphs.random_udg(60, 2.2, rng)
    if kind % 4 == 1:
        return graphs.path(40)
    if kind % 4 == 2:
        return graphs.connected_gnp(50, 0.08, rng)
    return graphs.star(30)


class TestDeliverWindowEquivalence:
    @pytest.mark.parametrize("kind", [0, 1, 2, 3])
    @pytest.mark.parametrize("density", [0.02, 0.2, 0.7])
    def test_matches_sequential_deliver(self, kind, density):
        rng = np.random.default_rng(100 + kind)
        g = _random_graph(rng, kind)
        net_seq = RadioNetwork(g)
        net_win = RadioNetwork(g)
        w = 37
        masks = rng.random((w, net_seq.n)) < density

        sequential = np.stack([net_seq.deliver(m) for m in masks])
        windowed = net_win.deliver_window(masks)

        assert (sequential == windowed).all()
        assert net_seq.steps_elapsed == net_win.steps_elapsed == w
        assert (
            net_seq.trace.total_transmissions
            == net_win.trace.total_transmissions
        )
        assert (
            net_seq.trace.total_receptions == net_win.trace.total_receptions
        )
        assert net_seq.trace.total_steps == net_win.trace.total_steps

    def test_empty_window(self):
        net = RadioNetwork(graphs.path(5))
        out = net.deliver_window(np.zeros((0, 5), dtype=bool))
        assert out.shape == (0, 5)
        assert net.steps_elapsed == 0

    def test_all_silent_window(self):
        net = RadioNetwork(graphs.path(5))
        out = net.deliver_window(np.zeros((4, 5), dtype=bool))
        assert (out == NO_SENDER).all()
        assert net.steps_elapsed == 4

    def test_rejects_bad_shape_and_dtype(self):
        net = RadioNetwork(graphs.path(5))
        with pytest.raises(InvalidActionError):
            net.deliver_window(np.zeros((3, 4), dtype=bool))
        with pytest.raises(InvalidActionError):
            net.deliver_window(np.zeros((3, 5), dtype=np.int64))

    def test_cheap_trace_counts_steps_only(self):
        net = RadioNetwork(graphs.path(6), trace=CheapTrace())
        masks = np.zeros((3, 6), dtype=bool)
        masks[:, 2] = True
        net.deliver_window(masks)
        net.deliver(np.zeros(6, dtype=bool))
        assert net.steps_elapsed == 4
        assert net.trace.total_steps == 4
        assert net.trace.total_transmissions == 0


class TestDeliverDetectSharedPath:
    @pytest.mark.parametrize("kind", [0, 2])
    def test_busy_matches_explicit_counts(self, kind):
        rng = np.random.default_rng(7 + kind)
        g = _random_graph(rng, kind)
        net = RadioNetwork(g)
        ref = RadioNetwork(g)
        for _ in range(25):
            mask = rng.random(net.n) < 0.3
            hear, busy = net.deliver_detect(mask)
            hear_ref = ref.deliver(mask)
            counts = ref.neighbor_sum(mask.astype(np.float64))
            assert (hear == hear_ref).all()
            assert (busy == ((~mask) & (counts >= 1.0))).all()

    def test_single_validation_single_step(self):
        net = RadioNetwork(graphs.path(4))
        net.deliver_detect(np.zeros(4, dtype=bool))
        # One deliver_detect call is exactly one radio step.
        assert net.steps_elapsed == 1


class TestBatchedDecayEquivalence:
    @pytest.mark.parametrize("kind", [0, 1, 2, 3])
    def test_same_result_and_rng_stream(self, kind):
        rng_batch = np.random.default_rng(555 + kind)
        rng_seq = np.random.default_rng(555 + kind)
        g = _random_graph(np.random.default_rng(kind), kind)
        net_batch = RadioNetwork(g)
        net_seq = RadioNetwork(g)
        active = np.random.default_rng(9).random(net_batch.n) < 0.5
        active[0] = True

        batched = run_decay(net_batch, active, rng_batch, iterations=6)

        protocol = Decay(net_seq, active, iterations=6)
        run_steps(protocol, rng_seq, protocol.total_steps)
        sequential = protocol.result()

        assert (batched.heard == sequential.heard).all()
        assert (batched.heard_from == sequential.heard_from).all()
        assert batched.messages == sequential.messages
        assert net_batch.steps_elapsed == net_seq.steps_elapsed
        # Identical downstream randomness: the batched path drew exactly
        # the same numbers in the same order.
        assert rng_batch.random() == rng_seq.random()


class TestPartitionEngineEquivalence:
    @pytest.mark.parametrize("trial", range(8))
    def test_bit_identical_to_dijkstra(self, trial):
        rng = np.random.default_rng(2000 + trial)
        g = _random_graph(rng, trial)
        g = nx.convert_node_labels_to_integers(g)
        n = g.number_of_nodes()
        n_centers = int(rng.integers(1, max(2, n // 3)))
        centers = sorted(
            int(c) for c in rng.choice(n, size=n_centers, replace=False)
        )
        beta = float(rng.uniform(0.05, 0.9))
        shifts = draw_shifts(centers, beta, rng)

        fast = partition(g, beta, centers, rng, shifts=shifts)
        ref = partition_reference(g, beta, centers, rng, shifts=shifts)

        assert (fast.assignment == ref.assignment).all()
        assert (fast.distance_to_center == ref.distance_to_center).all()
        assert fast.centers == ref.centers
        assert fast.delta == ref.delta

    def test_unreachable_nodes_still_rejected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="unreachable"):
            partition(g, 0.5, [0], rng)

    def test_unknown_engine_rejected(self):
        g = graphs.path(4)
        with pytest.raises(ValueError, match="engine"):
            partition(g, 0.5, [0], np.random.default_rng(0), engine="gpu")


class TestCsgraphGraphFacts:
    @pytest.mark.parametrize("kind", [0, 1, 2, 3])
    def test_diameter_matches_networkx(self, kind):
        g = _random_graph(np.random.default_rng(30 + kind), kind)
        assert graphs.diameter(g) == nx.diameter(g)

    def test_diameter_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            graphs.diameter(g)

    def test_distances_from_matches_networkx(self):
        g = _random_graph(np.random.default_rng(3), 0)
        src = list(g.nodes)[0]
        assert distances_from(g, src) == dict(
            nx.single_source_shortest_path_length(g, src)
        )

    @pytest.mark.parametrize("kind", [0, 2])
    def test_histogram_matches_networkx(self, kind):
        rng = np.random.default_rng(40 + kind)
        g = _random_graph(rng, kind)
        g = nx.convert_node_labels_to_integers(g)
        n = g.number_of_nodes()
        centers = sorted(
            int(c) for c in rng.choice(n, size=max(1, n // 4), replace=False)
        )
        for v in [0, n // 2, n - 1]:
            m = center_distance_histogram(g, v, centers)
            dist = nx.single_source_shortest_path_length(g, v)
            reach = [d for u, d in dist.items() if u in set(centers)]
            expected = np.zeros(max(reach) + 1, dtype=np.int64)
            for d in reach:
                expected[d] += 1
            assert (m == expected).all()

    def test_schedule_layers_match_percluster_bfs(self):
        rng = np.random.default_rng(77)
        g = nx.convert_node_labels_to_integers(graphs.random_udg(80, 2.4, rng))
        n = g.number_of_nodes()
        centers = sorted(graphs.greedy_independent_set(g, rng, "random"))
        clustering = partition(g, 0.4, centers, rng)
        schedule = build_schedule(g, clustering)
        labels = list(g.nodes)
        for center, members in clustering.members().items():
            sub = g.subgraph([labels[v] for v in members])
            depths = nx.single_source_shortest_path_length(
                sub, labels[center]
            )
            for v in members:
                assert schedule.layer[v] == depths[labels[v]]


class TestGraphContextCache:
    def test_memoized_per_graph(self):
        g = graphs.path(10)
        assert graph_context(g) is graph_context(g)

    def test_invalidated_on_mutation(self):
        g = graphs.path(10)
        ctx = graph_context(g)
        g.add_edge(0, 9)
        ctx2 = graph_context(g)
        assert ctx2 is not ctx
        assert ctx2.m == ctx.m + 1

    def test_cached_facts(self):
        g = graphs.path(10)
        ctx = graph_context(g)
        assert ctx.diameter == 9
        assert ctx.is_connected()
        assert list(ctx.degrees) == [1] + [2] * 8 + [1]
        mis = ctx.mis()
        assert graphs.is_maximal_independent_set(g, set(mis))
        assert ctx.mis() == mis  # stable across calls
        assert ctx.alpha_lower() == len(mis)

    def test_identity_csr_requires_integer_labels(self):
        g = nx.Graph([("a", "b")])
        ctx = GraphContext(g)
        with pytest.raises(ValueError):
            ctx.identity_csr()

    def test_edges_cover_both_directions(self):
        g = graphs.path(4)
        src, dst = graph_context(g).edges()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}


def _measure_sum(rng: np.random.Generator) -> float:
    """Module-level trial function (picklable for the process pool)."""
    return float(rng.random(64).sum())


class TestParallelTrials:
    def test_matches_serial(self):
        serial = experiments.run_trials(_measure_sum, 12, seed=3)
        parallel = experiments.run_trials_parallel(
            _measure_sum, 12, seed=3, processes=3
        )
        assert serial == parallel

    def test_single_process_short_circuits(self):
        assert experiments.run_trials_parallel(
            _measure_sum, 5, seed=1, processes=1
        ) == experiments.run_trials(_measure_sum, 5, seed=1)

    def test_unpicklable_measure_falls_back(self):
        serial = experiments.run_trials(lambda r: float(r.random()), 4, 9)
        parallel = experiments.run_trials_parallel(
            lambda r: float(r.random()), 4, 9, processes=2
        )
        assert serial == parallel

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            experiments.run_trials_parallel(_measure_sum, 0, 1)
        with pytest.raises(ValueError):
            experiments.run_trials_parallel(_measure_sum, 2, 1, processes=0)
