"""Tests for Message ordering and the accounting types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio import Charge, CostLedger, Message, StepTrace, highest


class TestMessageOrdering:
    def test_priority_dominates(self):
        assert Message(2, "a") > Message(1, "z")

    def test_payload_breaks_ties(self):
        low = Message(1, "a")
        high = Message(1, "b")
        assert low < high

    def test_equality_and_hash(self):
        assert Message(1, "x") == Message(1, "x")
        assert hash(Message(1, "x")) == hash(Message(1, "x"))

    def test_origin_does_not_affect_order(self):
        assert Message(1, "x", origin=5) == Message(1, "x", origin=9)

    def test_highest_of_empty_is_none(self):
        assert highest([]) is None

    def test_highest_picks_max(self):
        msgs = [Message(1), Message(5), Message(3)]
        assert highest(msgs) == Message(5)

    def test_comparison_with_non_message(self):
        with pytest.raises(TypeError):
            _ = Message(1) < 5

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_highest_matches_priority_max(self, priorities):
        msgs = [Message(p) for p in priorities]
        assert highest(msgs).priority == max(priorities)

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_order_is_total_and_consistent(self, a, b):
        ma, mb = Message(a), Message(b)
        assert (ma < mb) == (a < b) or a == b


class TestStepTrace:
    def test_records_totals(self):
        trace = StepTrace()
        trace.record_step(transmissions=3, receptions=2)
        trace.record_step(transmissions=1, receptions=0)
        assert trace.total_steps == 2
        assert trace.total_transmissions == 4
        assert trace.total_receptions == 2

    def test_phase_attribution(self):
        trace = StepTrace()
        trace.record_step(1, 1)
        trace.enter_phase("mis/eed")
        trace.record_step(2, 0)
        trace.record_step(2, 0)
        assert trace.steps_in_phase("default") == 1
        assert trace.steps_in_phase("mis/eed") == 2
        assert trace.steps_in_phase("missing") == 0

    def test_current_phase(self):
        trace = StepTrace()
        assert trace.current_phase == "default"
        trace.enter_phase("x")
        assert trace.current_phase == "x"

    def test_summary_mentions_phases(self):
        trace = StepTrace()
        trace.enter_phase("icp")
        trace.record_step(1, 1)
        assert "icp" in trace.summary()


class TestCostLedger:
    def test_totals_by_category(self):
        ledger = CostLedger()
        ledger.charge(100, "mis", "setup")
        ledger.charge(40, "icp", "propagation")
        ledger.charge(60, "icp", "propagation")
        assert ledger.total == 200
        assert ledger.setup_total == 100
        assert ledger.propagation_total == 100

    def test_by_reason_groups(self):
        ledger = CostLedger()
        ledger.charge(10, "icp")
        ledger.charge(5, "icp")
        ledger.charge(1, "seq", "setup")
        assert ledger.by_reason() == {"icp": 15, "seq": 1}

    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            CostLedger().charge(1, "x", "banana")

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValueError):
            CostLedger().charge(-1, "x")

    def test_itemized_preserves_order(self):
        ledger = CostLedger()
        ledger.charge(1, "a", "setup")
        ledger.charge(2, "b")
        items = ledger.itemized()
        assert items == [Charge(1, "a", "setup"), Charge(2, "b", "propagation")]

    def test_summary_contains_totals(self):
        ledger = CostLedger()
        ledger.charge(7, "icp")
        assert "7" in ledger.summary()

    @given(st.lists(st.integers(min_value=0, max_value=1000)))
    def test_total_is_sum(self, rounds):
        ledger = CostLedger()
        for r in rounds:
            ledger.charge(r, "x")
        assert ledger.total == sum(rounds)
