"""Tests for the Section 3 quantities and the Lemma 3/4/5 machinery.

These are the paper's actual analysis objects, so several tests verify
the *theorems themselves* empirically: Lemma 3's expected-distance bound
against measured MPX draws, Lemma 4's explicit ``S_beta`` bound, and
Lemma 5's cap on bad ``j`` values.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.core import (
    b_beta,
    b_constant,
    bad_j_report,
    center_distance_histogram,
    expected_distance_bound,
    is_bad_j,
    j_range,
    lemma4_bound,
    partition,
    prefix_counts,
    s_beta,
    t_beta,
)
from repro.graphs import greedy_independent_set

histograms = st.lists(
    st.integers(min_value=0, max_value=50), min_size=2, max_size=40
).filter(lambda m: sum(m) > 0 and m[0] + m[1] > 0)


class TestHistogram:
    def test_histogram_on_path(self):
        g = graphs.path(7)
        m = center_distance_histogram(g, 0, [0, 2, 6])
        assert m[0] == 1 and m[2] == 1 and m[6] == 1
        assert m.sum() == 3

    def test_histogram_counts_all_reachable_centers(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        mis = sorted(greedy_independent_set(g))
        m = center_distance_histogram(g, 5, mis)
        assert m.sum() == len(mis)

    def test_no_reachable_center_raises(self):
        import networkx as nx

        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            center_distance_histogram(g, 0, [2])

    def test_mis_domination_gives_s0_at_least_one(self, rng):
        # Lemma 5's fact: s_0 >= 1 because v is in the MIS or adjacent to it.
        g = graphs.connected_gnp(30, 0.15, rng)
        mis = sorted(greedy_independent_set(g))
        for v in range(30):
            m = center_distance_histogram(g, v, mis)
            assert prefix_counts(m, 0) >= 1


class TestSBeta:
    @given(histograms, st.floats(min_value=0.01, max_value=1.0))
    def test_s_beta_within_distance_range(self, m, beta):
        m = np.array(m)
        s = s_beta(m, beta)
        nonzero = np.nonzero(m)[0]
        assert nonzero.min() - 1e-9 <= s <= nonzero.max() + 1e-9

    @given(histograms)
    def test_s_beta_decreasing_in_beta(self, m):
        # Larger beta discounts far centers more -> smaller S_beta.
        m = np.array(m)
        assert s_beta(m, 0.9) <= s_beta(m, 0.1) + 1e-9

    def test_t_b_s_consistency(self):
        m = np.array([1, 2, 0, 4])
        beta = 0.3
        assert s_beta(m, beta) == pytest.approx(
            t_beta(m, beta) / b_beta(m, beta)
        )

    def test_s_beta_zero_histogram_raises(self):
        with pytest.raises(ValueError):
            s_beta(np.zeros(4), 0.5)

    def test_single_center_at_origin(self):
        m = np.array([1])
        assert s_beta(m, 0.5) == 0.0


class TestBConstant:
    def test_power_of_two(self):
        for alpha, d in [(100, 10), (10**6, 100), (50, 40), (2, 1000)]:
            b = b_constant(alpha, d)
            assert b >= 4
            assert b & (b - 1) == 0  # power of two

    def test_bracketing_inequality(self):
        # 4 log_D alpha <= b <= 8 log_D alpha when log_D alpha >= 1.
        alpha, d = 10**6, 30
        log_d_alpha = math.log(alpha) / math.log(d)
        b = b_constant(alpha, d)
        assert 4 * log_d_alpha <= b + 1e-9
        assert b <= 8 * log_d_alpha + 1e-9

    def test_clamped_regime(self):
        # alpha < D: clamp keeps b = 4.
        assert b_constant(3, 1000) == 4


class TestPrefixCounts:
    def test_saturates_beyond_histogram(self):
        m = np.array([1, 1, 1])
        assert prefix_counts(m, 10) == 3

    def test_prefix_matches_cumsum(self):
        m = np.array([1, 0, 2, 3, 0, 1])
        assert prefix_counts(m, 0) == m[:3].sum()  # radius 2^1 = 2
        assert prefix_counts(m, 1) == m[:5].sum()  # radius 2^2 = 4

    @given(histograms, st.integers(min_value=0, max_value=12))
    def test_monotone_in_j(self, m, j):
        m = np.array(m)
        assert prefix_counts(m, j) <= prefix_counts(m, j + 1)

    def test_negative_j_raises(self):
        with pytest.raises(ValueError):
            prefix_counts(np.array([1]), -1)


class TestBadJ:
    def test_flat_histogram_has_no_bad_j(self):
        # Slow growth cannot trigger the doubly exponential condition.
        m = np.ones(64, dtype=int)
        assert not is_bad_j(m, j=1, b=4)

    def test_requires_power_of_two_b(self):
        with pytest.raises(ValueError):
            is_bad_j(np.ones(8, dtype=int), j=1, b=6)

    def test_lemma5_bound_on_real_graphs(self, rng):
        # The number of bad j in the paper's window is at most
        # 0.02 log2 D... at simulation scales the bound rounds to "none
        # or almost none"; check against the recorded limit + slack of 1.
        for maker in (
            lambda: graphs.random_udg(80, 5.0, rng),
            lambda: graphs.connected_gnp(60, 0.1, rng),
        ):
            g = maker()
            d = graphs.diameter(g)
            alpha = graphs.exact_independence_number(g)
            mis = sorted(greedy_independent_set(g))
            m = center_distance_histogram(g, 0, mis)
            report = bad_j_report(m, j_range(d), alpha, d)
            assert len(report.bad) <= math.ceil(report.limit) + 1

    def test_good_fraction_accounts_for_window(self):
        m = np.ones(32, dtype=int)
        report = bad_j_report(m, [1, 2, 3], alpha=16, diameter=8)
        assert report.good_fraction == 1.0
        assert report.good == [1, 2, 3]


class TestLemma4AndTheorem2:
    def test_lemma4_explicit_bound_holds_when_condition_does(self, rng):
        # For graphs where no j is bad, S_{2^-j} <= (2^7 b + 6) 2^j.
        g = graphs.grid_udg(9, 9, rng)
        d = graphs.diameter(g)
        alpha = graphs.exact_independence_number(g)
        b = b_constant(alpha, d)
        mis = sorted(greedy_independent_set(g))
        m = center_distance_histogram(g, 12, mis)
        for j in j_range(d):
            if not is_bad_j(m, j, b):
                assert s_beta(m, 2.0**-j) <= lemma4_bound(j, b)

    def test_lemma3_expected_distance_vs_5_s_beta(self, rng):
        # Lemma 3: E[dist to cluster center] <= 5 S_beta. Estimate the
        # expectation over repeated Partition draws.
        g = graphs.random_udg(60, 4.0, rng)
        mis = sorted(greedy_independent_set(g))
        beta = 0.25
        v = 0
        m = center_distance_histogram(g, v, mis)
        bound = 5.0 * s_beta(m, beta)
        draws = [
            partition(g, beta, mis, rng).distance_to_center[v]
            for _ in range(60)
        ]
        assert np.mean(draws) <= bound + 1e-9

    def test_theorem2_normalizer_positive(self):
        assert expected_distance_bound(2, alpha=50, diameter=10) > 0

    def test_theorem2_good_fraction_on_growth_bounded_graph(self, rng):
        # Theorem 2: >= 0.77 of j values are good under MIS centers.
        g = graphs.grid_udg(10, 10, rng)
        d = graphs.diameter(g)
        alpha = graphs.exact_independence_number(g)
        mis = sorted(greedy_independent_set(g))
        fractions = []
        for v in [0, 25, 50, 99]:
            m = center_distance_histogram(g, v, mis)
            report = bad_j_report(m, j_range(d), alpha, d)
            fractions.append(report.good_fraction)
        assert min(fractions) >= 0.77
