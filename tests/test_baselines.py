"""Tests for the baseline algorithms (BGI, binary-search election, Luby,
analytic bounds)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import baselines, graphs
from repro.graphs import is_maximal_independent_set
from repro.radio import GraphContractError, RadioNetwork


class TestBGIBroadcast:
    def test_delivers_on_udg(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        net = RadioNetwork(g)
        result = baselines.bgi_broadcast(net, 0, rng)
        assert result.delivered
        assert result.steps == net.steps_elapsed

    def test_delivers_on_path(self, rng):
        g = graphs.path(30)
        net = RadioNetwork(g)
        result = baselines.bgi_broadcast(net, 0, rng)
        assert result.delivered

    def test_informed_history_monotone(self, rng):
        g = graphs.connected_gnp(40, 0.15, rng)
        net = RadioNetwork(g)
        result = baselines.bgi_broadcast(net, 0, rng)
        history = result.informed_history
        assert history[0] == 1
        assert all(a <= b for a, b in zip(history, history[1:]))
        assert history[-1] == 40

    def test_multi_source(self, rng):
        g = graphs.path(30)
        net = RadioNetwork(g)
        result = baselines.bgi_broadcast(net, 0, rng, sources=[0, 29])
        assert result.delivered

    def test_rejects_disconnected(self, rng):
        import networkx as nx

        net = RadioNetwork(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphContractError):
            baselines.bgi_broadcast(net, 0, rng)

    def test_steps_grow_with_diameter(self, rng):
        steps = []
        for length in (10, 60):
            net = RadioNetwork(graphs.path(length))
            steps.append(baselines.bgi_broadcast(net, 0, rng).steps)
        assert steps[1] > steps[0]

    def test_steps_roughly_d_log_n(self, rng):
        # On a path, steps / (D log n) should be a modest constant.
        n = 60
        net = RadioNetwork(graphs.path(n))
        result = baselines.bgi_broadcast(net, 0, rng)
        normalizer = (n - 1) * math.log2(n)
        assert result.steps <= 6 * normalizer


class TestBinarySearchElection:
    def test_elects_unique_max(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        net = RadioNetwork(g)
        result = baselines.binary_search_election(net, rng)
        assert result.elected
        assert 0 <= result.leader < net.n

    def test_phase_count_logarithmic_in_id_space(self, rng):
        g = graphs.connected_gnp(30, 0.2, rng)
        net = RadioNetwork(g)
        result = baselines.binary_search_election(net, rng, id_bits=12)
        assert result.phases <= 12

    def test_leader_holds_max_id(self, rng):
        g = graphs.path(20)
        net = RadioNetwork(g)
        result = baselines.binary_search_election(net, rng)
        assert result.leader_id >= 0

    def test_more_expensive_than_single_broadcast(self, rng):
        g = graphs.path(25)
        net_bc = RadioNetwork(g)
        bc = baselines.bgi_broadcast(net_bc, 0, rng)
        net_le = RadioNetwork(g)
        le = baselines.binary_search_election(net_le, rng)
        assert le.steps > bc.steps

    def test_rejects_disconnected(self, rng):
        import networkx as nx

        net = RadioNetwork(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphContractError):
            baselines.binary_search_election(net, rng)


class TestLubyMIS:
    def test_valid_mis_on_families(self, rng):
        for g in (
            graphs.clique(20),
            graphs.path(25),
            graphs.random_udg(50, 3.5, rng),
            graphs.connected_gnp(40, 0.15, rng),
        ):
            result = baselines.luby_mis(g, rng)
            assert result.valid
            assert is_maximal_independent_set(g, result.mis)

    def test_rounds_logarithmic(self, rng):
        g = graphs.connected_gnp(200, 0.05, rng)
        result = baselines.luby_mis(g, rng)
        assert result.rounds <= 8 * math.ceil(math.log2(200)) + 8

    def test_counts_messages(self, rng):
        g = graphs.clique(10)
        result = baselines.luby_mis(g, rng)
        # Round 1 alone exchanges 2 * |E| = 90 messages on a 10-clique.
        assert result.messages >= 90

    def test_empty_graph(self, rng):
        import networkx as nx

        result = baselines.luby_mis(nx.Graph(), rng)
        assert result.mis == set()
        assert result.valid


class TestAnalyticBounds:
    def test_paper_beats_cd21_when_alpha_small(self):
        n, d = 10**5, 500
        assert baselines.paper_bound(n, d, alpha=d) < (
            baselines.czumaj_davies_bound(n, d)
        )

    def test_paper_matches_cd21_when_alpha_is_n(self):
        n, d = 10**5, 500
        ours = baselines.paper_bound(n, d, alpha=n)
        theirs = baselines.czumaj_davies_bound(n, d)
        assert ours == pytest.approx(theirs, rel=0.01)

    def test_bgi_dominated_at_large_d(self):
        n = 10**6
        d = 10**4
        assert baselines.paper_bound(n, d, alpha=d) < baselines.bgi_bound(n, d)

    def test_lower_bounds_below_upper_bounds(self):
        n, d = 10**4, 100
        assert baselines.broadcast_lower_bound(n, d) <= baselines.bgi_bound(n, d)
        assert baselines.spontaneous_lower_bound(d) <= baselines.paper_bound(
            n, d, alpha=d
        )

    def test_mis_bounds_order(self):
        n = 10**5
        assert baselines.mis_lower_bound(n) < baselines.mis_paper_bound(n)

    def test_ghaffari_haeupler_le_positive(self):
        assert baselines.ghaffari_haeupler_le_bound(10**4, 50) > 0
