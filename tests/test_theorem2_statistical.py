"""Statistical validation of Theorem 2 across random instances.

Theorem 2 is the paper's central technical result: under
``Partition(beta, MIS)`` with ``beta = 2^-j`` for a random ``j`` in the
window, a node's expected distance to its cluster center is
``O(log_D(alpha)/beta)`` with probability at least 0.77 over ``j``.
These tests estimate the expectation by Monte Carlo over Partition
draws on multiple random graphs, checking the full chain
Lemma 3 -> Lemma 4 -> Theorem 2 quantitatively (not just shape).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import (
    b_constant,
    bad_j_report,
    center_distance_histogram,
    is_bad_j,
    j_range,
    lemma4_bound,
    partition,
    s_beta,
)
from repro.graphs import greedy_independent_set

DRAWS = 40


def _setup(maker, rng):
    g = maker(rng)
    d = graphs.diameter(g)
    alpha = graphs.exact_independence_number(g)
    mis = sorted(greedy_independent_set(g, rng, strategy="random"))
    return g, d, alpha, mis


@pytest.mark.parametrize(
    "maker",
    [
        lambda rng: graphs.grid_udg(9, 9, rng),
        lambda rng: graphs.random_udg(90, 5.0, rng),
        lambda rng: graphs.clique_chain(7, 7),
    ],
    ids=["grid", "udg", "chain"],
)
class TestTheorem2Chain:
    def test_lemma3_bound_across_nodes(self, maker, rng):
        """E[dist(v, center)] <= 5 S_beta, for several v and beta."""
        g, d, alpha, mis = _setup(maker, rng)
        nodes = list(g.nodes)
        sample = [nodes[int(i)] for i in rng.integers(len(nodes), size=3)]
        beta = 0.25
        draws = [partition(g, beta, mis, rng) for _ in range(DRAWS)]
        for v in sample:
            m = center_distance_histogram(g, v, mis)
            bound = 5.0 * s_beta(m, beta)
            mean_dist = float(
                np.mean([c.distance_to_center[v] for c in draws])
            )
            # Monte Carlo slack: the bound holds in expectation; allow
            # 15% estimation noise on top.
            assert mean_dist <= bound * 1.15 + 0.5

    def test_lemma4_bound_for_good_j(self, maker, rng):
        """S_beta <= (2^7 b + 6) 2^j whenever j passes the condition."""
        g, d, alpha, mis = _setup(maker, rng)
        b = b_constant(alpha, d)
        m = center_distance_histogram(g, 0, mis)
        checked = 0
        for j in j_range(d):
            if not is_bad_j(m, j, b):
                assert s_beta(m, 2.0**-j) <= lemma4_bound(j, b)
                checked += 1
        assert checked >= 1  # the window cannot be all-bad (Lemma 5)

    def test_theorem2_probability_threshold(self, maker, rng):
        """At least 0.77 of the j window is good, per sampled node."""
        g, d, alpha, mis = _setup(maker, rng)
        window = j_range(d)
        nodes = list(g.nodes)
        sample = [nodes[int(i)] for i in rng.integers(len(nodes), size=4)]
        for v in sample:
            m = center_distance_histogram(g, v, mis)
            report = bad_j_report(m, window, alpha, d)
            assert report.good_fraction >= 0.77

    def test_mis_centers_never_worse_than_all_by_alpha_factor(
        self, maker, rng
    ):
        """The paper's improvement is an analysis statement, but measured
        mean distances under MIS centers must stay within a small factor
        of the all-centers baseline (the clustering does not degrade)."""
        g, d, alpha, mis = _setup(maker, rng)
        beta = 0.25
        mis_mean = float(
            np.mean(
                [
                    partition(g, beta, mis, rng).mean_distance()
                    for _ in range(10)
                ]
            )
        )
        all_mean = float(
            np.mean(
                [
                    partition(g, beta, list(g.nodes), rng).mean_distance()
                    for _ in range(10)
                ]
            )
        )
        assert mis_mean <= max(2.0 * all_mean, all_mean + 2.0)
