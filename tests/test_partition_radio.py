"""Tests for the packet-level radio Partition implementation (after [18])."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import draw_shifts, partition, partition_radio
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork


class TestRadioPartition:
    def test_all_nodes_assigned(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        mis = sorted(greedy_independent_set(g))
        clustering = partition_radio(net, 0.3, mis, rng)
        assert (clustering.assignment >= 0).all()
        assert set(clustering.assignment.tolist()) <= set(mis)

    def test_clusters_connected(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        net = RadioNetwork(g)
        mis = sorted(greedy_independent_set(g))
        clustering = partition_radio(net, 0.25, mis, rng)
        clustering.validate(g, None)

    def test_matches_centralized_on_same_integer_shifts(self, rng):
        # The wave process realizes MPX with floored shifts up to two
        # effects: tie-breaking (radio breaks shifted-distance ties by
        # arrival order, centralized by center index — integer shifts
        # make ties common) and occasional Decay failures. So compare the
        # achieved *shifted distances*: radio can never beat the optimum,
        # and should achieve it for the vast majority of nodes.
        import networkx as nx

        g = graphs.random_udg(45, 3.0, rng)
        net = RadioNetwork(g)
        mis = sorted(greedy_independent_set(g))
        shifts = draw_shifts(mis, 0.25, rng)
        int_shifts = {c: float(int(s)) for c, s in shifts.items()}
        radio_cl = partition_radio(
            net, 0.25, mis, rng, shifts=shifts, decay_amplification=6.0
        )
        dist = dict(nx.all_pairs_shortest_path_length(g))
        optimal = np.array(
            [min(dist[v][c] - int_shifts[c] for c in mis) for v in range(net.n)]
        )
        achieved = np.array(
            [
                dist[v][int(radio_cl.assignment[v])]
                - int_shifts[int(radio_cl.assignment[v])]
                for v in range(net.n)
            ]
        )
        assert (achieved >= optimal - 1e-9).all()
        assert (achieved == optimal).mean() >= 0.85

    def test_distances_at_least_centralized(self, rng):
        # The radio wave can only be late, never early: recorded distance
        # is at least the true hop distance to the assigned center.
        import networkx as nx

        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        mis = sorted(greedy_independent_set(g))
        clustering = partition_radio(net, 0.3, mis, rng)
        dist = dict(nx.all_pairs_shortest_path_length(g))
        for v in range(net.n):
            c = int(clustering.assignment[v])
            assert clustering.distance_to_center[v] >= dist[v][c]

    def test_single_center(self, rng):
        g = graphs.path(10)
        net = RadioNetwork(g)
        clustering = partition_radio(net, 0.5, [0], rng)
        assert (clustering.assignment == 0).all()

    def test_step_cost_scales_with_cluster_radius(self, rng):
        # Small beta -> larger shifts & radii -> more epochs -> more steps.
        g = graphs.grid_udg(6, 6, rng)
        mis = sorted(greedy_independent_set(g))
        net_small = RadioNetwork(g)
        partition_radio(net_small, 1.0, mis, rng)
        net_large = RadioNetwork(g)
        partition_radio(net_large, 0.05, mis, rng)
        assert net_large.steps_elapsed >= net_small.steps_elapsed

    def test_requires_centers(self, rng):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ValueError):
            partition_radio(net, 0.5, [], rng)

    def test_deterministic_given_seed(self):
        g = graphs.random_udg(30, 2.5, np.random.default_rng(5))
        mis = sorted(greedy_independent_set(g))
        results = []
        for _ in range(2):
            net = RadioNetwork(g)
            cl = partition_radio(net, 0.3, mis, np.random.default_rng(17))
            results.append(cl.assignment.copy())
        assert (results[0] == results[1]).all()
