"""Tests for the packet-level Compete (fully simulated pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import (
    PacketCompeteConfig,
    broadcast_packet,
    compete_packet,
)
from repro.radio import GraphContractError, RadioNetwork


class TestDelivery:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: graphs.random_udg(50, 3.5, rng),
            lambda rng: graphs.clique_chain(4, 6),
            lambda rng: graphs.path(25),
            lambda rng: graphs.connected_gnp(40, 0.15, rng),
        ],
        ids=["udg", "chain", "path", "gnp"],
    )
    def test_broadcast_delivers(self, maker, rng):
        g = maker(rng)
        net = RadioNetwork(g)
        result = broadcast_packet(net, 0, rng)
        assert result.delivered

    def test_highest_message_wins(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        result = compete_packet(net, {0: 2, 10: 9, 20: 5}, rng)
        assert result.winner == 9
        assert result.delivered

    def test_steps_are_real_simulated_steps(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        result = broadcast_packet(net, 0, rng)
        assert result.steps == net.steps_elapsed
        assert result.steps == sum(result.stage_steps.values())

    def test_stage_breakdown_nonzero(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        result = broadcast_packet(net, 0, rng)
        assert result.stage_steps["mis"] > 0
        assert result.stage_steps["partition"] > 0
        assert result.stage_steps["icp"] > 0

    def test_mis_size_reported(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        result = broadcast_packet(net, 0, rng)
        assert 1 <= result.mis_size <= 40


class TestValidation:
    def test_rejects_disconnected(self, rng):
        import networkx as nx

        net = RadioNetwork(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphContractError):
            compete_packet(net, {0: 1}, rng)

    def test_rejects_empty_sources(self, rng):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ValueError):
            compete_packet(net, {}, rng)

    def test_rejects_negative_keys(self, rng):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ValueError):
            compete_packet(net, {0: -1}, rng)

    def test_rejects_out_of_range_source(self, rng):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ValueError):
            broadcast_packet(net, 7, rng)


class TestConfig:
    def test_alpha_override(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        result = compete_packet(net, {0: 1}, rng, alpha=5)
        assert result.delivered

    def test_more_clusterings_allowed(self, rng):
        g = graphs.path(20)
        net = RadioNetwork(g)
        config = PacketCompeteConfig(clusterings_per_j=3)
        result = compete_packet(net, {0: 1}, rng, config=config)
        assert result.delivered

    def test_deterministic_given_seed(self):
        g = graphs.clique_chain(3, 5)
        runs = []
        for _ in range(2):
            net = RadioNetwork(g)
            r = compete_packet(net, {0: 1}, np.random.default_rng(11))
            runs.append((r.steps, r.phases))
        assert runs[0] == runs[1]
