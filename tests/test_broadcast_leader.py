"""Tests for broadcasting (Theorem 7) and leader election (Theorem 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import (
    CompeteConfig,
    broadcast,
    candidate_probability,
    elect_leader,
    id_bits,
)


class TestBroadcast:
    def test_delivers_on_udg(self, rng):
        g = graphs.random_udg(70, 4.0, rng)
        result = broadcast(g, 0, rng)
        assert result.delivered
        assert result.source == 0

    def test_delivers_from_any_source(self, rng):
        g = graphs.clique_chain(4, 6)
        for source in (0, 11, 23):
            assert broadcast(g, source, rng).delivered

    def test_rejects_unknown_source(self, rng):
        with pytest.raises(ValueError):
            broadcast(graphs.path(5), 99, rng)

    def test_round_breakdown_consistent(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        result = broadcast(g, 0, rng)
        assert (
            result.total_rounds
            == result.setup_rounds + result.propagation_rounds
        )

    def test_baseline_mode_passthrough(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        result = broadcast(
            g, 0, rng, config=CompeteConfig(centers_mode="all")
        )
        assert result.delivered

    def test_alpha_passthrough(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        result = broadcast(g, 0, rng, alpha=12)
        assert result.compete.alpha_used == 12


class TestLeaderElectionParameters:
    def test_candidate_probability_shape(self):
        # Theta(log n / n): decreasing in n, capped at 1.
        assert candidate_probability(2) == 1.0 or candidate_probability(2) <= 1.0
        assert candidate_probability(100) < candidate_probability(10)
        assert candidate_probability(10**6) < 0.001

    def test_candidate_probability_validation(self):
        with pytest.raises(ValueError):
            candidate_probability(0)

    def test_id_bits_grows_logarithmically(self):
        assert id_bits(2**10) == 30
        assert id_bits(2**20) == 60
        assert id_bits(2) >= 4

    def test_expected_candidates_theta_log_n(self, rng):
        n = 500
        p = candidate_probability(n)
        draws = rng.random((200, n)) < p
        mean_candidates = draws.sum(axis=1).mean()
        log_n = np.log2(n)
        assert 0.5 * log_n <= mean_candidates <= 2.0 * log_n


class TestLeaderElection:
    def test_elects_on_udg(self, rng):
        g = graphs.random_udg(80, 4.5, rng)
        result = elect_leader(g, rng)
        # whp success; with these sizes failures are rare but legal —
        # rerun once on failure like a real deployment would.
        if not result.elected:
            result = elect_leader(g, rng)
        assert result.elected
        assert result.leader in result.candidates
        assert result.candidates[result.leader] == result.leader_id

    def test_everyone_learns_the_winner(self, rng):
        g = graphs.connected_gnp(50, 0.12, rng)
        result = elect_leader(g, rng)
        if result.elected:
            assert all(
                k == result.leader_id
                for k in result.compete.knowledge.values()
            )

    def test_success_rate_high(self, rng):
        g = graphs.clique_chain(4, 6)
        outcomes = [
            elect_leader(g, np.random.default_rng(seed)).elected
            for seed in range(12)
        ]
        assert np.mean(outcomes) >= 0.75

    def test_no_candidates_reports_failure(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        result = elect_leader(g, rng, c_cand=1e-9)
        assert not result.elected
        assert result.leader is None
        assert result.total_rounds == 0

    def test_rounds_charged_on_success(self, rng):
        g = graphs.random_udg(60, 4.0, rng)
        result = elect_leader(g, rng)
        if result.elected:
            assert result.total_rounds > 0

    def test_candidate_count_reasonable(self, rng):
        g = graphs.connected_gnp(100, 0.08, rng)
        result = elect_leader(g, rng)
        # Theta(log n) candidates: allow a wide but bounded window.
        assert 0 <= len(result.candidates) <= 40
