"""Tests for the experiment service (repro.service) and its wire format.

The load-bearing contracts:

1. **Wire round-trip** — ``RunReport.from_json(r.to_json()) == r``
   under the report's own outcome equality, for reports carrying
   ndarray payloads, nested dataclasses, sets, and fault provenance;
   the codec refuses foreign dataclasses and malformed documents by
   name.
2. **Pure-function store** — a job is determined by its
   :class:`~repro.service.JobKey`; the store serves repeats as cache
   hits, writes atomically, and two racing writers of one key are
   benign.
3. **Campaign = harness** — a store-backed campaign over one cell is
   bit-identical, report for report and aggregate for aggregate, to
   :func:`~repro.analysis.experiments.run_report_trials` — pooled or
   serial, uninterrupted or killed-and-resumed.
4. **HTTP front** — submit/status/stream/jobs/fetch/cancel over a live
   asyncio server, uniform ``ProtocolError``-shaped refusals on 4xx,
   and resubmission of a completed campaign is pure cache hits.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

import repro.api as api
from repro import graphs
from repro.analysis.experiments import (
    TrialStats,
    run_report_trials,
    summarize_reports,
)
from repro.api.report import RunReport
from repro.api.wire import decode_value, encode_value
from repro.corpus.generate import random_udg_csr
from repro.corpus.store import CorpusStore
from repro.engine.policy import ExecutionPolicy
from repro.faults import FaultSchedule
from repro.radio.errors import ProtocolError
from repro.service import (
    Campaign,
    CampaignSpec,
    JobKey,
    ReportStore,
    ServiceClient,
    ServiceError,
    config_digest,
    faults_digest,
    policy_digest,
    run_campaign,
    start_in_thread,
)


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """One corpus with two small graphs, shared across the module."""
    root = tmp_path_factory.mktemp("service")
    corpus = CorpusStore(root / "corpus")
    g1 = random_udg_csr(60, 5.0, np.random.default_rng(1))
    g2 = random_udg_csr(40, 4.0, np.random.default_rng(2))
    return corpus, corpus.add(g1), corpus.add(g2)


# ---------------------------------------------------------------------------
# wire format


class TestWire:
    def test_mis_report_round_trips(self):
        report = api.run("mis", graphs.random_udg(50, 4.0, np.random.default_rng(3)),
                         rng=np.random.default_rng(7))
        again = RunReport.from_json(report.to_json())
        assert again == report  # outcome equality: arrays byte-exact
        assert np.array_equal(
            np.asarray(again.result.mis), np.asarray(report.result.mis)
        )

    def test_decay_report_with_faults_round_trips(self):
        graph = graphs.random_udg(40, 4.0, np.random.default_rng(5))
        faults = FaultSchedule.sample(40, 64, seed=9, crash_rate=0.2)
        report = api.run(
            "decay", graph, rng=np.random.default_rng(1),
            policy=ExecutionPolicy(faults=faults),
        )
        again = RunReport.from_json(report.to_json())
        assert again == report
        assert again.provenance["faults"]["digest"] == \
            report.provenance["faults"]["digest"]

    def test_round_trip_preserves_measurements(self):
        report = api.run("decay", graphs.random_udg(30, 4.0, np.random.default_rng(1)),
                         rng=np.random.default_rng(0))
        again = RunReport.from_json(report.to_json())
        # Excluded from ==, so pin them explicitly.
        assert again.wall_time_s == report.wall_time_s
        assert again.peak_mem_bytes == report.peak_mem_bytes

    def test_scalar_and_container_kinds_round_trip(self):
        value = {
            "array": np.arange(7, dtype=np.int32),
            "floats": np.linspace(0, 1, 5),
            "set": {3, 1, 2},
            "frozen": frozenset({"b", "a"}),
            "tuple": (1, "two", None),
            "bytes": b"\x00\xff",
            "intkeys": {0: "zero", 1: "one"},
        }
        again = decode_value(json.loads(json.dumps(encode_value(value))))
        assert again["set"] == value["set"]
        assert isinstance(again["frozen"], frozenset)
        assert again["tuple"] == value["tuple"]
        assert again["bytes"] == value["bytes"]
        assert again["intkeys"] == value["intkeys"]
        assert np.array_equal(again["array"], value["array"])
        assert again["array"].dtype == np.int32

    def test_foreign_dataclass_refused_by_name(self):
        @dataclasses.dataclass
        class Foreign:
            x: int = 1

        with pytest.raises(ProtocolError, match="repro"):
            encode_value(Foreign())

    def test_decode_refuses_unknown_class_and_fields(self):
        doc = encode_value(ExecutionPolicy())
        hostile = dict(doc, **{"class": "os:system"})
        with pytest.raises(ProtocolError, match="repro"):
            decode_value(hostile)
        bad_fields = json.loads(json.dumps(doc))
        bad_fields["fields"]["not_a_field"] = 1
        with pytest.raises(ProtocolError, match="not_a_field"):
            decode_value(bad_fields)

    def test_from_json_refuses_non_report_documents(self):
        with pytest.raises(ProtocolError, match="RunReport"):
            RunReport.from_json(json.dumps(encode_value({"a": 1})))
        with pytest.raises(ProtocolError, match="JSON"):
            RunReport.from_json("{not json")


# ---------------------------------------------------------------------------
# TrialStats.merge + empty-aggregate refusals (satellite bugfix)


class TestAggregates:
    def test_merge_matches_from_values(self):
        rng = np.random.default_rng(11)
        values = rng.normal(5.0, 2.0, size=37)
        whole = TrialStats.from_values(values)
        merged = TrialStats.from_values(values[:13]).merge(
            TrialStats.from_values(values[13:])
        )
        assert merged.count == whole.count
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum
        assert math.isclose(merged.mean, whole.mean, rel_tol=1e-12)
        assert math.isclose(merged.std, whole.std, rel_tol=1e-12)

    def test_merge_single_values_chain(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        stats = TrialStats.from_values(values[:1])
        for v in values[1:]:
            stats = stats.merge(TrialStats.from_values([v]))
        whole = TrialStats.from_values(values)
        assert stats.count == whole.count
        assert math.isclose(stats.mean, whole.mean, rel_tol=1e-12)
        assert math.isclose(stats.std, whole.std, rel_tol=1e-12)

    def test_merge_refuses_non_stats(self):
        stats = TrialStats.from_values([1.0])
        with pytest.raises(ProtocolError, match="TrialStats"):
            stats.merge({"mean": 0.0})

    def test_from_values_refuses_empty(self):
        with pytest.raises(ProtocolError, match="zero trials"):
            TrialStats.from_values([])

    def test_summarize_reports_refuses_empty(self):
        with pytest.raises(ProtocolError, match="zero reports"):
            summarize_reports([])


# ---------------------------------------------------------------------------
# store


class TestStore:
    def _key(self, **kw):
        base = dict(protocol="decay", graph="ab" * 8, seed=0, trial=0,
                    policy=policy_digest(ExecutionPolicy(), 64))
        base.update(kw)
        return JobKey(**base)

    def test_key_digest_is_stable_and_distinct(self):
        a, b = self._key(), self._key()
        assert a.digest == b.digest
        assert a.digest != self._key(trial=1).digest
        assert a.digest != self._key(seed=1).digest
        assert a.digest != self._key(faults="f" * 16).digest
        assert a.digest != self._key(config="c" * 16).digest

    def test_config_digest_separates_configs(self):
        assert config_digest(None) == "none"
        one = config_digest(api.DecayConfig(iterations=1))
        assert one == config_digest(api.DecayConfig(iterations=1))
        assert one != config_digest(api.DecayConfig(iterations=3))
        assert one != "none"

    def test_key_refusals_name_the_field(self):
        with pytest.raises(ProtocolError, match="protocol"):
            self._key(protocol="")
        with pytest.raises(ProtocolError, match="trial"):
            self._key(trial=-1)
        with pytest.raises(ProtocolError, match="seed"):
            self._key(seed="zero")

    def test_policy_digest_resolves_and_strips_faults(self):
        auto = ExecutionPolicy()
        pinned = auto.resolve(64)
        assert policy_digest(auto, 64) == policy_digest(pinned, 64)
        faults = FaultSchedule.sample(64, 32, seed=1, crash_rate=0.5)
        with_faults = dataclasses.replace(auto, faults=faults)
        assert policy_digest(with_faults, 64) == policy_digest(auto, 64)
        assert faults_digest(with_faults) == faults.digest()
        assert faults_digest(auto) == "none"

    def test_put_get_round_trip_and_counters(self, tmp_path):
        store = ReportStore(tmp_path / "reports")
        report = api.run("decay", graphs.random_udg(30, 4.0, np.random.default_rng(1)),
                         rng=np.random.default_rng(0))
        key = self._key()
        assert store.get(key) is None
        assert key not in store
        path = store.put(key, report)
        assert path.is_file()
        assert key in store
        assert store.get(key) == report
        assert store.stats() == {
            "hits": 1, "misses": 1, "writes": 1, "entries": 1,
        }
        assert list(store.digests()) == [key.digest]

    def test_existing_entry_wins(self, tmp_path):
        store = ReportStore(tmp_path / "reports")
        report = api.run("decay", graphs.random_udg(30, 4.0, np.random.default_rng(1)),
                         rng=np.random.default_rng(0))
        key = self._key()
        path = store.put(key, report)
        stamp = path.stat().st_mtime_ns
        store.put(key, report)  # no rewrite
        assert path.stat().st_mtime_ns == stamp
        assert store.writes == 1

    def test_get_document_serves_key_fields(self, tmp_path):
        store = ReportStore(tmp_path / "reports")
        report = api.run("decay", graphs.random_udg(30, 4.0, np.random.default_rng(1)),
                         rng=np.random.default_rng(0))
        key = self._key()
        store.put(key, report)
        document = store.get_document(key.digest)
        assert document["key"] == key.asdict()
        assert document["digest"] == key.digest
        assert store.get_document("ff" * 32) is None

    def test_put_refuses_non_reports(self, tmp_path):
        store = ReportStore(tmp_path / "reports")
        with pytest.raises(ProtocolError, match="RunReport"):
            store.put(self._key(), {"steps": 3})


# ---------------------------------------------------------------------------
# campaign spec


class TestCampaignSpec:
    def test_refusals_name_the_problem(self, stores):
        _corpus, digest, _ = stores
        with pytest.raises(ProtocolError, match="unknown protocol"):
            CampaignSpec(protocol="nope", corpus=(digest,), n_trials=1)
        with pytest.raises(ProtocolError, match="corpus"):
            CampaignSpec(protocol="decay", corpus=(), n_trials=1)
        with pytest.raises(ProtocolError, match="n_trials"):
            CampaignSpec(protocol="decay", corpus=(digest,), n_trials=0)
        with pytest.raises(ProtocolError, match="policies"):
            CampaignSpec(protocol="decay", corpus=(digest,), n_trials=1,
                         policies=())
        with pytest.raises(ProtocolError, match="campaign"):
            CampaignSpec(protocol="partition", corpus=(digest,), n_trials=1)
        with pytest.raises(ProtocolError, match="config"):
            CampaignSpec(protocol="decay", corpus=(digest,), n_trials=1,
                         config=object())

    def test_tagged_json_round_trips_with_faults(self, stores):
        _corpus, digest, _ = stores
        faults = FaultSchedule.sample(60, 64, seed=4, churn=0.3)
        spec = CampaignSpec(
            protocol="mis", corpus=(digest,), n_trials=4, seed=9,
            policies=(ExecutionPolicy(),
                      ExecutionPolicy(faults=faults)),
        )
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.policies[1].faults.digest() == faults.digest()

    def test_plain_form_accepts_curl_shapes(self, stores):
        _corpus, digest, _ = stores
        spec = CampaignSpec.from_json(json.dumps({
            "protocol": "decay",
            "corpus": digest,
            "n_trials": 3,
            "policies": [{"engine": "windowed", "mem_budget": "64M"}],
        }))
        assert spec.corpus == (digest,)
        assert spec.policies[0].mem_budget == 64 * 1024 * 1024

    def test_plain_form_refusals(self, stores):
        _corpus, digest, _ = stores
        with pytest.raises(ProtocolError, match="missing"):
            CampaignSpec.from_json('{"protocol": "decay"}')
        with pytest.raises(ProtocolError, match="unknown field"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest],
                "n_trials": 1, "bogus": True,
            }))
        with pytest.raises(ProtocolError, match="valid JSON"):
            CampaignSpec.from_json("{nope")
        with pytest.raises(ProtocolError, match="fault"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 1,
                "policies": [{"faults": {}}],
            }))
        with pytest.raises(ProtocolError, match="field dict"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 1,
                "config": 7,
            }))

    def test_scalar_field_refusals(self, stores):
        _corpus, digest, _ = stores
        with pytest.raises(ProtocolError, match="seed"):
            CampaignSpec(protocol="decay", corpus=(digest,), n_trials=1,
                         seed="zero")
        with pytest.raises(ProtocolError, match="JSON object"):
            CampaignSpec.from_json("[1, 2]")
        with pytest.raises(ProtocolError, match="CampaignSpec"):
            CampaignSpec.from_json(
                json.dumps(encode_value(ExecutionPolicy()))
            )
        with pytest.raises(ProtocolError, match="protocol"):
            CampaignSpec.from_json(json.dumps({
                "protocol": 7, "corpus": [digest], "n_trials": 1,
            }))
        with pytest.raises(ProtocolError, match="bad config"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 1,
                "config": {"not_a_decay_field": 1},
            }))
        with pytest.raises(ProtocolError, match="policies must be"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 1,
                "policies": {"engine": "windowed"},
            }))
        with pytest.raises(ProtocolError, match="field dict"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 1,
                "policies": ["windowed"],
            }))
        with pytest.raises(ProtocolError, match="bad policy"):
            CampaignSpec.from_json(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 1,
                "policies": [{"enginee": "windowed"}],
            }))

    def test_total_jobs(self, stores):
        _corpus, d1, d2 = stores
        spec = CampaignSpec(
            protocol="decay", corpus=(d1, d2), n_trials=5,
            policies=(ExecutionPolicy(), ExecutionPolicy(delivery="dense")),
        )
        assert spec.total_jobs == 2 * 2 * 5


# ---------------------------------------------------------------------------
# campaign engine


class TestCampaign:
    def test_matches_run_report_trials_bit_identically(self, stores, tmp_path):
        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=6, seed=42)
        campaign = run_campaign(spec, ReportStore(tmp_path / "r"),
                                corpus=corpus)
        baseline = run_report_trials(
            "decay", corpus.load(digest), n_trials=6, seed=42
        )
        assert all(a == b for a, b in zip(campaign.reports, baseline))
        summary = summarize_reports(baseline)
        final = campaign.final_summary()
        assert final["steps"] == summary["steps"]

    def test_resubmission_is_pure_cache_hits(self, stores, tmp_path):
        corpus, digest, _ = stores
        store = ReportStore(tmp_path / "r")
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=6, seed=42)
        first = run_campaign(spec, store, corpus=corpus)
        again = run_campaign(spec, store, corpus=corpus)
        status = again.status()
        assert status["cached"] == 6 and status["executed"] == 0
        assert again.final_summary() == first.final_summary()
        assert all(a == b for a, b in zip(again.reports, first.reports))

    def test_distinct_configs_occupy_distinct_store_cells(
        self, stores, tmp_path
    ):
        """The review contract: two campaigns differing only in config
        must not collide in the store — the second runs, it is not
        served the first's cached reports."""
        corpus, digest, _ = stores
        store = ReportStore(tmp_path / "r")
        base = dict(protocol="decay", corpus=(digest,), n_trials=2, seed=5)
        short = run_campaign(
            CampaignSpec(config=api.DecayConfig(iterations=1), **base),
            store, corpus=corpus,
        )
        long = run_campaign(
            CampaignSpec(config=api.DecayConfig(iterations=3), **base),
            store, corpus=corpus,
        )
        status = long.status()
        assert status["cached"] == 0 and status["executed"] == 2
        digests = {
            job.key.digest for c in (short, long) for job in c.jobs
        }
        assert len(digests) == 4
        assert len(store) == 4
        # And the cells hold genuinely different outcomes.
        assert long.reports[0].steps > short.reports[0].steps
        # Defaults (config=None) are their own cell too.
        bare = run_campaign(CampaignSpec(**base), store, corpus=corpus)
        assert bare.status()["cached"] == 0

    def test_pooled_matches_serial(self, stores, tmp_path):
        corpus, digest, _ = stores
        spec = CampaignSpec(
            protocol="decay", corpus=(digest,), n_trials=4, seed=3,
            policies=(ExecutionPolicy(), ExecutionPolicy(delivery="dense")),
        )
        pooled = run_campaign(spec, ReportStore(tmp_path / "pool"),
                              corpus=corpus, workers=2)
        serial = run_campaign(spec, ReportStore(tmp_path / "serial"),
                              corpus=corpus, workers=1)
        assert pooled.status()["state"] == "completed"
        # Outcome fields are bit-identical; provenance names the
        # transport faithfully (shm vs mmap), so whole-report equality
        # is deliberately not asserted across pool boundaries.
        for a, b in zip(pooled.reports, serial.reports):
            assert a.result == b.result
            assert a.steps == b.steps
            assert a.trace == b.trace
        assert pooled.final_summary()["steps"] == \
            serial.final_summary()["steps"]

    def test_kill_and_resume_bit_identical(self, stores, tmp_path):
        """The issue's resume contract: kill mid-campaign, restart,
        completed jobs are store hits, aggregates bit-identical."""
        corpus, d1, d2 = stores
        spec = CampaignSpec(protocol="decay", corpus=(d1, d2),
                            n_trials=5, seed=17)
        uninterrupted = run_campaign(
            spec, ReportStore(tmp_path / "ref"), corpus=corpus
        )

        store = ReportStore(tmp_path / "killed")
        landed = [0]

        def count_and_die():
            landed[0] += 1

        first = run_campaign(
            spec, store, corpus=corpus,
            should_stop=lambda: landed[0] >= 4,
            on_update=count_and_die,
        )
        status = first.status()
        assert status["state"] == "cancelled"
        assert 0 < status["completed"] < spec.total_jobs

        resumed = run_campaign(spec, ReportStore(tmp_path / "killed"),
                               corpus=corpus)
        final = resumed.status()
        assert final["state"] == "completed"
        assert final["cached"] == status["completed"]
        assert final["executed"] == spec.total_jobs - status["completed"]
        # Deterministic aggregates are bit-identical to the
        # uninterrupted run (wall_time_s is a measurement — it differs
        # on every execution by nature, like RunReport equality says).
        assert resumed.final_summary()["steps"] == \
            uninterrupted.final_summary()["steps"]
        assert all(
            a == b
            for a, b in zip(resumed.reports, uninterrupted.reports)
        )

    def test_streaming_summary_counts_every_landed_job(
        self, stores, tmp_path
    ):
        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=5, seed=1)
        campaign = Campaign(spec, ReportStore(tmp_path / "r"),
                            corpus=corpus)
        seen = []
        campaign.run(on_update=lambda: seen.append(
            campaign.streaming_summary().get("steps")
        ))
        counts = [s.count for s in seen if s is not None]
        assert counts == sorted(counts)
        assert counts[-1] == 5
        # Same mean as the canonical summary (order-insensitive).
        assert math.isclose(
            seen[-1].mean, campaign.final_summary()["steps"].mean,
            rel_tol=1e-12,
        )

    def test_refusals(self, stores, tmp_path):
        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,), n_trials=1)
        with pytest.raises(ProtocolError, match="ReportStore"):
            Campaign(spec, {})
        with pytest.raises(ProtocolError, match="workers"):
            Campaign(spec, ReportStore(tmp_path / "r"), corpus=corpus,
                     workers=0)
        with pytest.raises(ProtocolError, match="resolve"):
            run_campaign(
                CampaignSpec(protocol="decay", corpus=("f00dfeed",),
                             n_trials=1),
                ReportStore(tmp_path / "r"), corpus=corpus,
            )
        with pytest.raises(ProtocolError, match="corpus store"):
            run_campaign(spec, ReportStore(tmp_path / "r"), corpus=None)
        campaign = run_campaign(spec, ReportStore(tmp_path / "r"),
                                corpus=corpus)
        with pytest.raises(ProtocolError, match="already ran"):
            campaign.run()

    def test_entry_directory_paths_resolve_without_store(
        self, stores, tmp_path
    ):
        corpus, digest, _ = stores
        path = corpus.path(digest)
        spec = CampaignSpec(protocol="decay", corpus=(str(path),),
                            n_trials=2, seed=8)
        campaign = run_campaign(spec, ReportStore(tmp_path / "r"))
        assert campaign.status()["state"] == "completed"

    def test_corpus_directory_path_resolves_digests(
        self, stores, tmp_path
    ):
        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=1, seed=8)
        campaign = run_campaign(spec, ReportStore(tmp_path / "r"),
                                corpus=str(corpus.directory))
        assert campaign.status()["state"] == "completed"

    def test_worker_attaches_shared_handles(self, stores):
        """The pool worker body, exercised in-process with a handle."""
        from repro.corpus.shm import SharedGraph
        from repro.service.campaign import _execute_job

        corpus, digest, _ = stores
        graph = corpus.load(digest)
        shared = SharedGraph.publish(graph)
        try:
            report = _execute_job((
                "decay", shared.handle,
                np.random.SeedSequence(5).spawn(1)[0],
                None, ExecutionPolicy(), None, None,
            ))
            assert report.protocol == "decay"
            assert report.provenance["corpus"]["source"] == "shm"
        finally:
            shared.close()
            shared.unlink()

    def test_graphs_without_digest_refused(self, stores, tmp_path,
                                           monkeypatch):
        import repro.service.campaign as campaign_mod

        corpus, digest, _ = stores
        bare = corpus.load(digest)
        bare.graph.pop("digest", None)
        monkeypatch.setattr(
            campaign_mod, "_resolve_corpus_entries",
            lambda entries, corpus: [bare],
        )
        spec = CampaignSpec(protocol="decay", corpus=(digest,), n_trials=1)
        with pytest.raises(ProtocolError, match="content"):
            Campaign(spec, ReportStore(tmp_path / "r"), corpus=corpus)

    def test_failing_jobs_are_recorded_not_fatal(
        self, stores, tmp_path, monkeypatch
    ):
        import repro.service.campaign as campaign_mod

        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,), n_trials=3)

        def explode(payload):
            raise RuntimeError("worker fell over")

        monkeypatch.setattr(campaign_mod, "_execute_job", explode)
        campaign = run_campaign(spec, ReportStore(tmp_path / "r"),
                                corpus=corpus)
        status = campaign.status()
        assert status["state"] == "failed"
        assert status["failed"] == 3
        assert "worker fell over" in status["errors"][0]
        with pytest.raises(ProtocolError, match="no completed jobs"):
            campaign.final_summary()

    def test_spec_level_refusal_fails_the_campaign(
        self, stores, tmp_path
    ):
        # decay implements windowed/reference only; a fused policy is
        # a spec problem, surfaced as a refusal, not a failure count.
        corpus, digest, _ = stores
        spec = CampaignSpec(
            protocol="decay", corpus=(digest,), n_trials=2,
            policies=(ExecutionPolicy(engine="fused"),),
        )
        campaign = Campaign(spec, ReportStore(tmp_path / "r"),
                            corpus=corpus)
        with pytest.raises(ProtocolError, match="fused"):
            campaign.run()
        assert campaign.status()["state"] == "failed"

    def test_unpicklable_payload_degrades_to_serial(
        self, stores, tmp_path, monkeypatch
    ):
        import pickle as pickle_mod

        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=3, seed=6)

        def refuse(obj, *a, **kw):
            raise TypeError("cannot pickle this payload")

        monkeypatch.setattr(pickle_mod, "dumps", refuse)
        with pytest.warns(RuntimeWarning, match="serial"):
            campaign = run_campaign(spec, ReportStore(tmp_path / "r"),
                                    corpus=corpus, workers=2)
        assert campaign.status()["state"] == "completed"

    def test_broken_pool_degrades_to_serial(
        self, stores, tmp_path, monkeypatch
    ):
        import concurrent.futures.process as process_mod

        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=3, seed=6)

        def broken(self, pending, shared, should_stop, notify):
            raise process_mod.BrokenProcessPool("no forks here")

        monkeypatch.setattr(Campaign, "_drain_pool", broken)
        campaign = run_campaign(spec, ReportStore(tmp_path / "r"),
                                corpus=corpus, workers=2)
        status = campaign.status()
        assert status["state"] == "completed"
        assert status["executed"] == 3

    def test_pooled_cancel_keeps_landed_work(self, stores, tmp_path):
        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=24, seed=13)
        store = ReportStore(tmp_path / "r")
        landed = [0]
        campaign = Campaign(spec, store, corpus=corpus, workers=2)
        campaign.run(
            should_stop=lambda: landed[0] >= 3,
            on_update=lambda: landed.__setitem__(0, landed[0] + 1),
        )
        status = campaign.status()
        assert status["state"] == "cancelled"
        assert status["completed"] < spec.total_jobs
        # Everything recorded is persisted: a resume serves it back.
        resumed = run_campaign(spec, ReportStore(tmp_path / "r"),
                               corpus=corpus)
        assert resumed.status()["cached"] >= status["completed"]

    def test_peak_memory_aggregates_when_measured(
        self, stores, tmp_path
    ):
        corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=2, seed=1)
        campaign = Campaign(spec, ReportStore(tmp_path / "r"),
                            corpus=corpus)
        report = api.run("decay", corpus.load(digest),
                         rng=np.random.default_rng(0))
        for job, peak in zip(campaign.jobs, (1024, 2048)):
            campaign._record(
                job, dataclasses.replace(report, peak_mem_bytes=peak),
                cached=False,
            )
        assert campaign.streaming_summary()["peak_mem_bytes"].count == 2
        summary = campaign.final_summary()
        assert summary["peak_mem_bytes"].maximum == 2048.0


# ---------------------------------------------------------------------------
# HTTP service + client


@pytest.fixture(scope="module")
def service(stores, tmp_path_factory):
    corpus, _d1, _d2 = stores
    root = tmp_path_factory.mktemp("service-http")
    with start_in_thread(root / "reports", corpus, workers=1) as handle:
        yield ServiceClient(port=handle.port)


class TestService:
    def test_health(self, service):
        health = service.health()
        assert health["ok"] is True
        assert set(health["store"]) == {
            "hits", "misses", "writes", "entries",
        }

    def test_submit_stream_fetch_resubmit(self, service, stores):
        _corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=6, seed=23)
        submitted = service.submit(spec)
        assert submitted["state"] in ("pending", "running", "completed")
        snapshots = list(service.stream(submitted["id"]))
        assert snapshots[-1]["state"] == "completed"
        final = service.wait(submitted["id"], timeout=120)
        assert final["completed"] == 6
        assert final["summary"]["steps"]["count"] == 6

        jobs = service.jobs(submitted["id"])
        assert len(jobs) == 6 and all(j["completed"] for j in jobs)
        report = service.fetch_report(jobs[0]["digest"])
        assert report.protocol == "decay"
        document = service.fetch_document(jobs[0]["digest"])
        assert document["digest"] == jobs[0]["digest"]

        # Resubmit: every job a store hit, summary identical.
        again = service.wait(service.submit(spec)["id"], timeout=120)
        assert again["cached"] == 6 and again["executed"] == 0
        assert again["summary"] == final["summary"]

    def test_identical_inflight_spec_deduplicates(self, service, stores):
        _corpus, _d1, digest = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=30, seed=77)
        first = service.submit(spec)
        second = service.submit(spec)
        if second.get("deduplicated"):
            assert second["id"] == first["id"]
        service.wait(first["id"], timeout=120)

    def test_cancel_endpoint(self, service, stores):
        _corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=200, seed=131)
        submitted = service.submit(spec)
        status = service.cancel(submitted["id"])
        assert "state" in status
        final = service.wait(submitted["id"], timeout=120)
        assert final["state"] in ("cancelled", "completed")

    def test_refusals_are_protocol_error_shaped(self, service):
        with pytest.raises(ServiceError, match="unknown protocol") as e:
            service.submit('{"protocol":"nope","corpus":["x"],"n_trials":1}')
        assert e.value.status == 400
        with pytest.raises(ServiceError, match="no campaign") as e:
            service.status("c0ffee")
        assert e.value.status == 404
        with pytest.raises(ServiceError, match="no stored report"):
            service.fetch_document("deadbeef")
        with pytest.raises(ServiceError, match="JSON body"):
            service.submit("")
        with pytest.raises(ServiceError, match="no such endpoint"):
            service._request("GET", "/bogus")
        with pytest.raises(ServiceError, match="not supported") as e:
            service._request("DELETE", "/campaigns")
        assert e.value.status == 405

    def test_malformed_content_length_is_a_client_refusal(self, service):
        import http.client

        for bad in ("banana", "-5"):
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=30
            )
            try:
                conn.putrequest("POST", "/campaigns",
                                skip_accept_encoding=True)
                conn.putheader("Content-Length", bad)
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 400
                payload = json.loads(response.read())
                assert "Content-Length" in payload["error"]["message"]
            finally:
                conn.close()

    def test_campaign_listing(self, service):
        listed = service.campaigns()
        assert isinstance(listed, list)
        assert all("id" in entry for entry in listed)

    def test_stream_of_unknown_campaign_refuses(self, service):
        with pytest.raises(ServiceError, match="no campaign"):
            list(service.stream("cnope"))

    def test_wait_timeout_names_progress(self, service, stores):
        _corpus, digest, _ = stores
        spec = CampaignSpec(protocol="decay", corpus=(digest,),
                            n_trials=500, seed=991)
        submitted = service.submit(spec)
        if submitted["state"] in ("pending", "running"):
            with pytest.raises(ServiceError, match="did not settle"):
                service.wait(submitted["id"], timeout=0.0)
        service.cancel(submitted["id"])
        service.wait(submitted["id"], timeout=120)

    def test_service_errors_are_protocol_errors(self):
        assert issubclass(ServiceError, ProtocolError)


# ---------------------------------------------------------------------------
# CLI


class TestCLI:
    def test_serve_and_campaign_round_trip(
        self, stores, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        corpus, digest, _ = stores
        with start_in_thread(tmp_path / "reports", corpus) as handle:
            spec_path = tmp_path / "spec.json"
            spec_path.write_text(json.dumps({
                "protocol": "decay", "corpus": [digest], "n_trials": 3,
            }))
            rc = main([
                "campaign", "submit", str(spec_path),
                "--port", str(handle.port), "--wait", "--json",
            ])
            assert rc == 0
            status = json.loads(capsys.readouterr().out)
            assert status["state"] == "completed"

            assert main([
                "campaign", "status", status["id"],
                "--port", str(handle.port),
            ]) == 0
            assert "state: completed" in capsys.readouterr().out

            assert main([
                "campaign", "watch", status["id"],
                "--port", str(handle.port),
            ]) == 0
            assert "3/3" in capsys.readouterr().out

    def test_campaign_refusals_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        missing.write_text('{"protocol":"nope","corpus":["x"],"n_trials":1}')
        with start_in_thread(tmp_path / "reports") as handle:
            assert main([
                "campaign", "submit", str(missing),
                "--port", str(handle.port),
            ]) == 2
            assert "unknown protocol" in capsys.readouterr().err
            assert main([
                "campaign", "status", "cbad", "--port", str(handle.port),
            ]) == 2

    def test_campaign_unreachable_service_exits_2(self, capsys):
        from repro.cli import main

        assert main([
            "campaign", "status", "c1", "--port", "1",
        ]) == 2
        assert "cannot reach" in capsys.readouterr().err
