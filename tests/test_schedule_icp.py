"""Tests for intra-cluster schedules and packet-level ICP (Algorithms 9-10)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.core import build_schedule, intra_cluster_propagation, partition
from repro.core.intra_cluster import ICPProtocol
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork


def _clustered_setup(rng, n=50, side=3.5, beta=0.25):
    g = graphs.random_udg(n, side, rng)
    mis = sorted(greedy_independent_set(g))
    clustering = partition(g, beta, mis, rng)
    schedule = build_schedule(g, clustering)
    return g, clustering, schedule


class TestSchedule:
    def test_layers_match_cluster_bfs(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        for center, members in clustering.members().items():
            sub = g.subgraph(members)
            depths = nx.single_source_shortest_path_length(sub, center)
            for v in members:
                assert schedule.layer[v] == depths[v]

    def test_coloring_is_distance2_proper_within_clusters(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        for center, members in clustering.members().items():
            sub = g.subgraph(members)
            square = nx.power(sub, 2) if len(members) > 1 else sub
            for u, v in square.edges:
                assert (
                    schedule.color[u] != schedule.color[v]
                ), "distance-2 neighbors share a color"

    def test_centers_are_layer_zero(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        for center in clustering.used_centers():
            assert schedule.layer[center] == 0

    def test_slot_members_partition_cluster_nodes(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        covered = np.zeros(clustering.n, dtype=bool)
        for layer in range(schedule.n_layers):
            for color in range(schedule.n_colors):
                mask = schedule.slot_members(layer, color)
                assert not (covered & mask).any()
                covered |= mask
        assert covered.all()

    def test_bounded_colors_on_growth_bounded_graph(self, rng):
        # UDG clusters have bounded distance-2 degree, so color counts
        # stay modest (this is the O(ell) schedule-length premise).
        g, clustering, schedule = _clustered_setup(rng, n=80, side=5.0)
        assert schedule.n_colors <= 64


class TestICPPacket:
    def test_center_message_reaches_cluster_within_ell(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        net = RadioNetwork(g)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        center = clustering.used_centers()[0]
        knowledge[center] = 7
        result = intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell=32, rng=rng
        )
        members = clustering.members()[center]
        informed = sum(1 for v in members if result.knowledge[v] == 7)
        # All in-cluster members within ell must learn it (the background
        # may even leak it further; we only require in-cluster coverage).
        assert informed == len(members)

    def test_member_message_reaches_center(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        net = RadioNetwork(g)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        center = max(
            clustering.members(), key=lambda c: len(clustering.members()[c])
        )
        members = clustering.members()[center]
        deepest = max(members, key=lambda v: schedule.layer[v])
        knowledge[deepest] = 9
        result = intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell=32, rng=rng
        )
        assert result.knowledge[center] == 9

    def test_knowledge_only_grows(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        net = RadioNetwork(g)
        knowledge = rng.integers(-1, 5, size=net.n).astype(np.int64)
        before = knowledge.copy()
        result = intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell=8, rng=rng
        )
        assert (result.knowledge >= before).all()

    def test_without_background_fewer_steps(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        knowledge = np.full(g.number_of_nodes(), -1, dtype=np.int64)
        knowledge[0] = 1
        net_bg = RadioNetwork(g)
        with_bg = intra_cluster_propagation(
            net_bg, clustering, schedule, knowledge, ell=8, rng=rng
        )
        net_nobg = RadioNetwork(g)
        without_bg = intra_cluster_propagation(
            net_nobg,
            clustering,
            schedule,
            knowledge,
            ell=8,
            rng=rng,
            with_background=False,
        )
        assert without_bg.steps < with_bg.steps

    def test_ell_validation(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        net = RadioNetwork(g)
        with pytest.raises(ValueError):
            ICPProtocol(net, schedule, np.full(net.n, -1, dtype=np.int64), 0)

    def test_input_not_mutated(self, rng):
        g, clustering, schedule = _clustered_setup(rng)
        net = RadioNetwork(g)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        knowledge[0] = 3
        original = knowledge.copy()
        intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell=4, rng=rng
        )
        assert (knowledge == original).all()
