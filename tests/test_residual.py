"""Residual delivery + compiled chunk kernels (ISSUE 7).

Four layers, each pinned independently:

* **PCG64 jump-ahead coins** (:mod:`repro.engine.pcg`) — the offset
  draws must reproduce numpy's own stream value-for-value *and* leave
  the generator in the exact state the full block draw would have.
  numpy's PCG64 conventions (one uint64 per double, post-advance
  output, XSL-RR, 53-bit mantissa) are pinned against numpy itself, so
  a numpy whose stream changes fails here instead of silently
  diverging downstream.
* **Delivery kernels** (:mod:`repro.engine.kernels`) — every mode is
  bit-identical to a brute-force dense reference on the same CSR, and
  degree-dependent routing state is recomputed from the CSR handed in
  (the satellite-2 regression: residual sub-graphs must not inherit a
  parent's degree extremes).
* **Mode registry** — ``available_delivery_modes`` reports what this
  process can run; explicit requests for absent compiled backends are
  refused with the uniform :class:`ProtocolError` naming the installed
  alternatives (silent fallback is reserved for ``"auto"``).
* **Restricted execution** (:mod:`repro.engine.residual` + runner) —
  member-set closure, context reuse, and full bit-identity (result,
  steps, per-phase trace totals, final rng state) of
  ``restrict="force"``/``"auto"`` against ``"off"`` and the step-wise
  references, including under :class:`ValidatingRunner`.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    MISConfig,
    compute_mis,
    compute_mis_reference,
    estimate_effective_degree,
    estimate_effective_degree_reference,
    run_decay,
    run_decay_reference,
)
from repro.engine.kernels import (
    ALL_DELIVERY_MODES,
    COMPILED_DELIVERY_MODES,
    DeliveryKernels,
    available_delivery_modes,
    compiled_kernel_name,
    probe_cupy,
    probe_numba,
    require_delivery_mode,
)
from repro.engine.pcg import (
    CoinField,
    OFFSET_COST_FACTOR,
    jump_transform,
    peek_uniform_block,
    supports_offset_draws,
)
from repro.engine.policy import ExecutionPolicy
from repro.engine.residual import (
    RESTRICT_MODES,
    ResidualContext,
    validate_restrict,
)
from repro.engine.runner import run_schedule
from repro.engine.segments import PlanSection, StreamedWindow
from repro.radio import RadioNetwork
from repro.radio.errors import ProtocolError
from repro.radio.network import (
    DELIVERY_MODES,
    GATHER_WINDOW_WIDTH,
    NO_SENDER,
    TransmitPlan,
)

_MASK128 = (1 << 128) - 1


def _assert_trace_equal(a: RadioNetwork, b: RadioNetwork) -> None:
    assert a.steps_elapsed == b.steps_elapsed
    assert a.trace.total_steps == b.trace.total_steps
    assert a.trace.total_transmissions == b.trace.total_transmissions
    assert a.trace.total_receptions == b.trace.total_receptions
    assert {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in a.trace.phase_stats().items()
    } == {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in b.trace.phase_stats().items()
    }


def _rng_state(rng: np.random.Generator):
    return rng.bit_generator.state


# ---------------------------------------------------------------------------
# PCG64 jump-ahead draws
# ---------------------------------------------------------------------------


class TestOffsetDraws:
    def test_jump_transform_matches_bit_generator_advance(self):
        # The closed-form (A_d, C_d) must advance the raw LCG state to
        # exactly where numpy's own ``advance`` puts it.
        for seed, delta in [(0, 1), (7, 13), (123, 4096), (5, 10**6)]:
            rng = np.random.default_rng(seed)
            state = rng.bit_generator.state["state"]
            s, inc = int(state["state"]), int(state["inc"])
            mult, plus = jump_transform(delta, inc)
            expected = (mult * s + plus) & _MASK128
            rng.bit_generator.advance(delta)
            assert rng.bit_generator.state["state"]["state"] == expected

    def test_jump_transform_refuses_negative(self):
        with pytest.raises(ValueError, match="jump delta"):
            jump_transform(-1, 0)

    def test_peek_matches_numpy_block_and_leaves_state(self):
        rows, stride = 9, 57
        cols = np.array([0, 3, 11, 12, 40, 56], dtype=np.int64)
        rng = np.random.default_rng(2024)
        twin = np.random.default_rng(2024)
        before = _rng_state(rng)
        vals = peek_uniform_block(rng, rows, stride, cols)
        # Peek is a pure read: the generator has not moved.
        assert _rng_state(rng) == before
        full = twin.random((rows, stride))
        np.testing.assert_array_equal(vals, full[:, cols])
        # One advance(rows * stride) lands on the full draw's state.
        rng.bit_generator.advance(rows * stride)
        assert _rng_state(rng) == _rng_state(twin)

    def test_supports_offset_draws_is_exact_pcg64_only(self):
        assert supports_offset_draws(np.random.default_rng(0))
        assert not supports_offset_draws(
            np.random.Generator(np.random.PCG64DXSM(0))
        )
        assert not supports_offset_draws(
            np.random.Generator(np.random.Philox(0))
        )

    def test_coinfield_draw_at_matches_draw_and_slice(self):
        n = 97
        cols = np.array([1, 5, 8, 44, 90], dtype=np.int64)
        assert cols.size * OFFSET_COST_FACTOR < n  # jump path
        rng_a = np.random.default_rng(31)
        rng_b = np.random.default_rng(31)
        fast = CoinField(rng_a, n)
        slow = CoinField(rng_b, n)
        # Consecutive intervals, per the streaming executor's contract.
        for start, stop in [(0, 4), (4, 5), (5, 12)]:
            np.testing.assert_array_equal(
                fast.draw_at(start, stop, cols),
                slow.draw(start, stop)[:, cols],
            )
        assert _rng_state(rng_a) == _rng_state(rng_b)

    def test_coinfield_wide_cols_take_fallback(self):
        # cols wide enough that draw-and-slice is cheaper: same values,
        # same state, different route.
        n = 12
        cols = np.arange(0, n, 2, dtype=np.int64)
        assert cols.size * OFFSET_COST_FACTOR >= n
        rng_a = np.random.default_rng(8)
        rng_b = np.random.default_rng(8)
        got = CoinField(rng_a, n).draw_at(0, 7, cols)
        want = CoinField(rng_b, n).draw(0, 7)[:, cols]
        np.testing.assert_array_equal(got, want)
        assert _rng_state(rng_a) == _rng_state(rng_b)

    def test_coinfield_non_pcg64_takes_fallback(self):
        n = 60
        cols = np.array([2, 17, 31], dtype=np.int64)
        rng_a = np.random.Generator(np.random.PCG64DXSM(5))
        rng_b = np.random.Generator(np.random.PCG64DXSM(5))
        got = CoinField(rng_a, n).draw_at(0, 6, cols)
        want = CoinField(rng_b, n).draw(0, 6)[:, cols]
        np.testing.assert_array_equal(got, want)
        assert _rng_state(rng_a) == _rng_state(rng_b)

    def test_coinfield_fallback_blocks_tall_windows(self):
        # The draw-and-slice fallback must bound its full-width scratch:
        # a very tall restricted window is drawn in coin_chunk-row
        # blocks, still value-identical to the monolithic draw.
        from repro.engine.segments import coin_chunk

        n = 9
        k = 3 * coin_chunk(n) + 5
        cols = np.arange(n, dtype=np.int64)  # wide -> fallback
        rng_a = np.random.default_rng(77)
        rng_b = np.random.default_rng(77)
        got = CoinField(rng_a, n).draw_at(0, k, cols)
        want = rng_b.random((k, n))[:, cols]
        np.testing.assert_array_equal(got, want)

    def test_coinfield_empty_interval(self):
        cf = CoinField(np.random.default_rng(0), 10)
        out = cf.draw_at(5, 5, np.array([1, 2], dtype=np.int64))
        assert out.shape == (0, 2)


# ---------------------------------------------------------------------------
# Delivery kernels on raw CSR
# ---------------------------------------------------------------------------


def _reference_delivery(adj: np.ndarray, masks: np.ndarray):
    """Brute-force radio semantics on a dense adjacency."""
    w, n = masks.shape
    hear = np.full((w, n), NO_SENDER, dtype=np.int64)
    tx = masks.astype(np.int64)
    counts = tx @ adj
    idsum = (tx * (np.arange(n) + 1)) @ adj
    clean = (counts == 1) & ~masks
    hear[clean] = idsum[clean] - 1
    return hear, int(clean.sum())


def _kernels_for(g: nx.Graph):
    net = RadioNetwork(g)
    csr = net._context.csr
    kern = DeliveryKernels(csr.indptr, csr.indices, net.n)
    return kern, csr.toarray().astype(np.int64)


class TestDeliveryKernels:
    @pytest.mark.parametrize("mode", ["auto", "sparse", "dense"])
    @pytest.mark.parametrize("width", [5, GATHER_WINDOW_WIDTH + 8])
    def test_modes_bit_identical_to_reference(self, mode, width):
        # width spans both sparse sub-kernels (gather vs spmm).
        g = nx.gnp_random_graph(48, 0.12, seed=11)
        kern, adj = _kernels_for(g)
        rng = np.random.default_rng(4)
        for density in (0.05, 0.5):
            masks = rng.random((width, kern.n)) < density
            want, want_rx = _reference_delivery(adj, masks)
            hear = np.full((width, kern.n), NO_SENDER, dtype=np.int64)
            got_rx = kern.execute(masks, hear, mode)
            np.testing.assert_array_equal(hear, want)
            assert got_rx == want_rx

    def test_empty_masks_counted_as_skip(self):
        g = nx.path_graph(10)
        kern, _ = _kernels_for(g)
        counters: dict[str, int] = {}
        hear = np.full((4, 10), NO_SENDER, dtype=np.int64)
        rx = kern.execute(
            np.zeros((4, 10), dtype=bool), hear, "auto", counters
        )
        assert rx == 0
        assert counters == {"skip-empty": 4}
        assert (hear == NO_SENDER).all()

    def test_counters_account_every_row(self):
        g = nx.gnp_random_graph(40, 0.2, seed=2)
        kern, _ = _kernels_for(g)
        rng = np.random.default_rng(9)
        masks = rng.random((12, kern.n)) < 0.3
        masks[3] = True  # guarantee at least one dense row
        counters: dict[str, int] = {}
        hear = np.full((12, kern.n), NO_SENDER, dtype=np.int64)
        kern.execute(masks, hear, "auto", counters)
        assert sum(counters.values()) == 12

    def test_degrees_recomputed_from_handed_in_csr(self):
        # Satellite 2: an induced sub-CSR's routing state reflects the
        # *sub-graph's* degrees. A star with the hub removed has no
        # edges at all — inheriting the parent's max_degree (n-1) would
        # poison the dense pre-emption and the packing bound.
        g = nx.star_graph(12)  # hub 0, leaves 1..12
        net = RadioNetwork(g)
        full = DeliveryKernels(
            net._context.csr.indptr, net._context.csr.indices, net.n
        )
        assert full.max_degree == 12
        leaves = np.arange(1, 13, dtype=np.int64)
        sub_indptr, sub_indices = net._context.induced_csr(leaves)
        sub = DeliveryKernels(sub_indptr, sub_indices, leaves.size)
        assert sub.max_degree == 0
        assert sub.min_degree == 0
        assert sub.degrees.sum() == 0

    def test_zero_node_kernels(self):
        kern = DeliveryKernels(
            np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64), 0
        )
        assert kern.max_degree == 0 and kern.min_degree == 0


# ---------------------------------------------------------------------------
# Mode registry: availability, refusals, provenance names
# ---------------------------------------------------------------------------


class TestModeRegistry:
    def test_available_modes_always_include_numpy_modes(self):
        avail = available_delivery_modes()
        for mode in DELIVERY_MODES:
            assert mode in avail
        for mode in COMPILED_DELIVERY_MODES:
            assert mode in ALL_DELIVERY_MODES
            probe = {
                "numba": probe_numba,
                "cupy": probe_cupy,
                "pipeline": probe_numba,
            }[mode]
            assert (mode in avail) == probe()

    def test_unknown_mode_refused_with_full_inventory(self):
        with pytest.raises(ProtocolError) as err:
            require_delivery_mode("quantum")
        assert "unknown delivery mode" in str(err.value)
        assert str(ALL_DELIVERY_MODES) in str(err.value)

    def test_installed_modes_accepted(self):
        for mode in available_delivery_modes():
            require_delivery_mode(mode)  # must not raise

    @pytest.mark.skipif(
        probe_numba(), reason="numba installed: refusal cannot fire"
    )
    def test_absent_numba_refused_by_name(self):
        with pytest.raises(ProtocolError) as err:
            require_delivery_mode("numba")
        msg = str(err.value)
        assert "'numba'" in msg and "not installed" in msg
        assert str(available_delivery_modes()) in msg
        # The policy front door refuses identically — no silent
        # fallback for an explicit request.
        with pytest.raises(ProtocolError, match="numba"):
            ExecutionPolicy(delivery="numba")

    @pytest.mark.skipif(
        probe_cupy(), reason="cupy usable: refusal cannot fire"
    )
    def test_absent_cupy_refused_by_name(self):
        with pytest.raises(ProtocolError, match="cupy"):
            ExecutionPolicy(delivery="cupy")

    def test_compiled_kernel_names(self):
        assert compiled_kernel_name("sparse") == "numpy"
        assert compiled_kernel_name("dense") == "numpy"
        assert compiled_kernel_name("numba") == "csr-numba"
        assert compiled_kernel_name("cupy") == "spmm-cupy"
        expected_auto = "csr-numba" if probe_numba() else "numpy"
        assert compiled_kernel_name("auto") == expected_auto

    def test_restrict_modes_validated(self):
        for mode in RESTRICT_MODES:
            validate_restrict(mode)  # must not raise
        with pytest.raises(ProtocolError, match="unknown restrict"):
            validate_restrict("maybe")
        with pytest.raises(ProtocolError, match="unknown restrict"):
            ExecutionPolicy(restrict="maybe")


# ---------------------------------------------------------------------------
# Residual contexts
# ---------------------------------------------------------------------------


class TestResidualContext:
    def test_members_are_support_plus_one_hop(self):
        g = nx.path_graph(7)  # 0-1-2-3-4-5-6
        net = RadioNetwork(g)
        support = np.zeros(7, dtype=bool)
        support[2] = True
        ctx = ResidualContext(net, support)
        np.testing.assert_array_equal(ctx.members, [1, 2, 3])
        assert ctx.k == 3
        assert ctx.live_at_build == 1
        # Induced sub-CSR degrees: path 1-2-3 relabeled 0-1-2.
        np.testing.assert_array_equal(ctx.kernels.degrees, [1, 2, 1])

    def test_covers_is_subset_of_build_support(self):
        g = nx.cycle_graph(8)
        net = RadioNetwork(g)
        support = np.zeros(8, dtype=bool)
        support[[1, 4]] = True
        ctx = ResidualContext(net, support)
        subset = np.zeros(8, dtype=bool)
        subset[4] = True
        assert ctx.covers(subset)
        assert ctx.covers(np.zeros(8, dtype=bool))
        other = np.zeros(8, dtype=bool)
        other[6] = True
        assert not ctx.covers(other)

    def test_support_shape_refused(self):
        net = RadioNetwork(nx.path_graph(5))
        with pytest.raises(ProtocolError, match="residual support"):
            ResidualContext(net, np.zeros(4, dtype=bool))

    def test_restricted_delivery_matches_full_on_members(self):
        # Executing a support-confined mask block on the residual
        # kernels, then translating senders back to global ids, equals
        # the full-graph delivery (non-members hear silence anyway).
        g = nx.gnp_random_graph(30, 0.15, seed=6)
        net = RadioNetwork(g)
        rng = np.random.default_rng(3)
        support = rng.random(30) < 0.3
        ctx = ResidualContext(net, support)
        masks = np.zeros((8, 30), dtype=bool)
        masks[:, support] = rng.random((8, int(support.sum()))) < 0.5
        adj = net._context.csr.toarray().astype(np.int64)
        want, _ = _reference_delivery(adj, masks)
        compact = masks[:, ctx.members]
        hear = np.full((8, ctx.k), NO_SENDER, dtype=np.int64)
        ctx.kernels.execute(compact, hear, "auto")
        heard = hear != NO_SENDER
        hear[heard] = ctx.members[hear[heard]]  # local -> global ids
        np.testing.assert_array_equal(hear, want[:, ctx.members])
        # And silence everywhere else.
        outside = np.ones(30, dtype=bool)
        outside[ctx.members] = False
        assert (want[:, outside] == NO_SENDER).all()


# ---------------------------------------------------------------------------
# Restricted execution: bit-identity end to end
# ---------------------------------------------------------------------------


def _twin_nets(g: nx.Graph, count: int = 2):
    return [RadioNetwork(g) for _ in range(count)]


class TestRestrictedEquivalence:
    def test_decay_restricted_bit_identical(self):
        g = nx.gnp_random_graph(90, 0.07, seed=13)
        active = np.random.default_rng(1).random(90) < 0.25
        active[0] = True
        net_f, net_o, net_r = _twin_nets(g, 3)
        rngs = [np.random.default_rng(21) for _ in range(3)]
        a = run_decay(
            net_f, active, rngs[0], iterations=4,
            policy=ExecutionPolicy(restrict="force"),
        )
        b = run_decay(
            net_o, active, rngs[1], iterations=4,
            policy=ExecutionPolicy(restrict="off"),
        )
        c = run_decay_reference(net_r, active, rngs[2], iterations=4)
        for other in (b, c):
            np.testing.assert_array_equal(a.heard, other.heard)
            np.testing.assert_array_equal(
                a.heard_from, other.heard_from
            )
            assert a.messages == other.messages
        _assert_trace_equal(net_f, net_o)
        _assert_trace_equal(net_f, net_r)
        states = [_rng_state(r) for r in rngs]
        assert states[0] == states[1] == states[2]
        assert net_f.residual_stats["restricted_steps"] > 0
        assert net_f.residual_stats["full_steps"] == 0
        assert net_o.residual_stats["restricted_steps"] == 0

    def test_eed_restricted_bit_identical(self):
        g = nx.gnp_random_graph(70, 0.1, seed=17)
        setup = np.random.default_rng(5)
        p = setup.random(70) * 0.4
        active = setup.random(70) < 0.3
        net_f, net_r = _twin_nets(g)
        rng_f = np.random.default_rng(6)
        rng_r = np.random.default_rng(6)
        a = estimate_effective_degree(
            net_f, p, active, rng_f, C=4,
            policy=ExecutionPolicy(restrict="force"),
        )
        b = estimate_effective_degree_reference(
            net_r, p, active, rng_r, C=4
        )
        np.testing.assert_array_equal(a.high, b.high)
        np.testing.assert_array_equal(a.counts, b.counts)
        _assert_trace_equal(net_f, net_r)
        assert _rng_state(rng_f) == _rng_state(rng_r)
        assert net_f.residual_stats["restricted_steps"] > 0

    @pytest.mark.parametrize("restrict", ["auto", "force"])
    def test_mis_restricted_bit_identical(self, restrict):
        g = nx.gnp_random_graph(110, 0.08, seed=23)
        config = MISConfig(eed_C=3)
        net_x, net_r = _twin_nets(g)
        rng_x = np.random.default_rng(42)
        rng_r = np.random.default_rng(42)
        a = compute_mis(
            net_x, rng_x, config,
            policy=ExecutionPolicy(restrict=restrict),
        )
        b = compute_mis_reference(net_r, rng_r, config)
        assert a.mis == b.mis
        assert a.steps_used == b.steps_used
        assert a.history == b.history
        _assert_trace_equal(net_x, net_r)
        assert _rng_state(rng_x) == _rng_state(rng_r)
        # Late MIS rounds always collapse the live set far enough for
        # auto to engage; force engages from round one.
        assert net_x.residual_stats["restricted_steps"] > 0
        if restrict == "auto":
            assert net_x.residual_stats["full_steps"] > 0

    def test_restricted_under_validating_runner(self):
        # ValidatingRunner re-derives each restricted slab full-width
        # and compares — restrict="force" under validate=True is the
        # strongest self-check the engine has; it must also stay
        # bit-identical to the plain run.
        g = nx.gnp_random_graph(60, 0.1, seed=29)
        config = MISConfig(eed_C=3)
        net_v, net_p = _twin_nets(g)
        rng_v = np.random.default_rng(8)
        rng_p = np.random.default_rng(8)
        a = compute_mis(
            net_v, rng_v, config,
            policy=ExecutionPolicy(restrict="force", validate=True),
        )
        b = compute_mis(net_p, rng_p, config)
        assert a.mis == b.mis
        assert a.steps_used == b.steps_used
        _assert_trace_equal(net_v, net_p)
        assert _rng_state(rng_v) == _rng_state(rng_p)
        assert net_v.residual_stats["restricted_steps"] > 0

    def test_rebuild_amortization_counters(self):
        # A full MIS run rebuilds contexts only as the live set
        # collapses: far fewer rebuilds than rounds.
        g = nx.gnp_random_graph(120, 0.06, seed=31)
        net = RadioNetwork(g)
        res = compute_mis(
            net, np.random.default_rng(11), MISConfig(eed_C=3),
            policy=ExecutionPolicy(restrict="force"),
        )
        stats = net.residual_stats
        assert 0 < stats["rebuilds"] <= len(res.history)
        assert stats["restricted_steps"] > 0


# ---------------------------------------------------------------------------
# Plan-surface contracts
# ---------------------------------------------------------------------------


class TestPlanContracts:
    def test_section_widths_must_cover_the_plan(self):
        net = RadioNetwork(nx.path_graph(6))

        def schedule():
            plan = TransmitPlan(
                4, lambda s, e: np.zeros((e - s, 6), dtype=bool)
            )
            yield StreamedWindow(
                plan,
                sections=(
                    PlanSection(3, None, lambda slab: None, None),
                ),
            )

        with pytest.raises(ProtocolError, match="sections cover 3"):
            run_schedule(net, schedule())

    def test_masks_at_shape_refused(self):
        n = 6
        net = RadioNetwork(nx.path_graph(n))
        support = np.zeros(n, dtype=bool)
        support[2] = True

        def schedule():
            plan = TransmitPlan(
                4,
                lambda s, e: np.zeros((e - s, n), dtype=bool),
                support=support,
                masks_at=lambda s, e, cols: np.zeros(
                    (e - s, cols.size + 1), dtype=bool
                ),
            )
            yield StreamedWindow(
                plan,
                consume=lambda slab: None,
                consume_at=lambda slab, cols: None,
            )

        with pytest.raises(ProtocolError, match="masks_at produced"):
            run_schedule(net, schedule(), restrict="force")

    def test_window_without_consume_surface_refused(self):
        net = RadioNetwork(nx.path_graph(4))

        def schedule():
            yield StreamedWindow(
                TransmitPlan(
                    2, lambda s, e: np.zeros((e - s, 4), dtype=bool)
                )
            )

        with pytest.raises(ProtocolError, match="without a\\s+consume"):
            run_schedule(net, schedule())
