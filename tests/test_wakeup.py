"""Tests for the single-hop wake-up problem and its MIS reduction."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    decay_schedule,
    expected_steps,
    mis_as_wakeup_strategy,
    run_wakeup,
    uniform_schedule,
)


class TestSchedules:
    def test_decay_schedule_cycles(self):
        schedule = decay_schedule(16)
        # span = 4: probabilities 1/2, 1/4, 1/8, 1/16, then repeat.
        assert schedule(0) == 0.5
        assert schedule(3) == 2.0**-4
        assert schedule(4) == 0.5

    def test_uniform_schedule_constant(self):
        schedule = uniform_schedule(0.125)
        assert schedule(0) == schedule(99) == 0.125

    def test_uniform_schedule_validates(self):
        with pytest.raises(ValueError):
            uniform_schedule(0.0)
        with pytest.raises(ValueError):
            uniform_schedule(1.5)


class TestWakeupGame:
    def test_single_active_node_wins_quickly(self, rng):
        # k=1: success the first time the lone node transmits.
        result = run_wakeup(1, decay_schedule(64), rng)
        assert result.succeeded
        assert result.steps <= 64

    def test_decay_succeeds_across_k_range(self, rng):
        for k in (1, 4, 16, 64, 256):
            result = run_wakeup(k, decay_schedule(256), rng, max_steps=2000)
            assert result.succeeded, f"decay failed at k={k}"

    def test_mistuned_uniform_struggles(self, rng):
        # p tuned for k=2 but k=256 active: collision probability stays
        # near 1, so the mistuned strategy should do much worse than
        # decay on average.
        k = 256
        uniform = expected_steps(
            k, uniform_schedule(0.5), rng, trials=10, max_steps=3000
        )
        decay = expected_steps(
            k, decay_schedule(256), rng, trials=10, max_steps=3000
        )
        assert decay < uniform

    def test_tuned_uniform_is_fast(self, rng):
        k = 64
        tuned = expected_steps(
            k, uniform_schedule(1.0 / k), rng, trials=20
        )
        assert tuned <= 20  # ~e steps in expectation

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            run_wakeup(0, decay_schedule(8), rng)

    def test_failure_reported_not_raised(self, rng):
        # An impossible schedule (always transmit, k >= 2) never succeeds.
        result = run_wakeup(4, uniform_schedule(1.0), rng, max_steps=50)
        assert not result.succeeded
        assert result.steps == 50


class TestMISReduction:
    def test_mis_produces_successful_transmission(self, rng):
        # The paper's reduction: Algorithm 7 run on a k-clique (believing
        # n) must produce a clean transmission — whp within its budget.
        for k in (2, 8, 32):
            result = mis_as_wakeup_strategy(n=256, k=k, rng=rng)
            assert result.succeeded, f"MIS wake-up failed at k={k}"

    def test_steps_scale_with_log_budget(self, rng):
        # The first success should land well inside O(log^2 n) steps.
        n = 256
        result = mis_as_wakeup_strategy(n=n, k=16, rng=rng)
        assert result.steps <= 40 * math.log2(n) ** 2

    def test_k_equals_one(self, rng):
        result = mis_as_wakeup_strategy(n=64, k=1, rng=rng)
        assert result.succeeded

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            mis_as_wakeup_strategy(n=8, k=0, rng=rng)
        with pytest.raises(ValueError):
            mis_as_wakeup_strategy(n=8, k=9, rng=rng)
