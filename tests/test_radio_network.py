"""Unit tests for the radio network simulator's collision semantics."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.radio import (
    GraphContractError,
    InvalidActionError,
    NO_SENDER,
    RadioNetwork,
)


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(GraphContractError):
            RadioNetwork(nx.Graph())

    def test_rejects_directed_graph(self):
        with pytest.raises(GraphContractError):
            RadioNetwork(nx.DiGraph([(0, 1)]))

    def test_rejects_self_loops(self):
        g = nx.Graph([(0, 1)])
        g.add_edge(1, 1)
        with pytest.raises(GraphContractError):
            RadioNetwork(g)

    def test_single_node_graph_is_allowed(self):
        g = nx.Graph()
        g.add_node("solo")
        net = RadioNetwork(g)
        assert net.n == 1

    def test_degrees_match_graph(self, star8):
        net = RadioNetwork(star8)
        hub = net.index_of(0)
        assert net.degrees[hub] == 7
        assert sorted(net.degrees) == [1] * 7 + [7]

    def test_label_index_roundtrip(self, small_udg):
        net = RadioNetwork(small_udg)
        for v in small_udg.nodes:
            assert net.label_of(net.index_of(v)) == v

    def test_labels_in_index_order(self, path5):
        net = RadioNetwork(path5)
        assert net.labels() == [net.label_of(i) for i in range(net.n)]

    def test_indices_of_vectorized(self, path5):
        net = RadioNetwork(path5)
        idx = net.indices_of([0, 2, 4])
        assert list(idx) == [net.index_of(v) for v in [0, 2, 4]]

    def test_neighbors_of(self, path5):
        net = RadioNetwork(path5)
        middle = net.index_of(2)
        neighbors = {net.label_of(i) for i in net.neighbors_of(middle)}
        assert neighbors == {1, 3}


class TestDeliverSemantics:
    def test_single_transmitter_reaches_all_neighbors(self, net_path5):
        transmit = np.zeros(5, dtype=bool)
        sender = net_path5.index_of(2)
        transmit[sender] = True
        hear = net_path5.deliver(transmit)
        for label in (1, 3):
            assert hear[net_path5.index_of(label)] == sender
        for label in (0, 4):
            assert hear[net_path5.index_of(label)] == NO_SENDER

    def test_transmitter_hears_nothing(self, net_path5):
        transmit = np.zeros(5, dtype=bool)
        transmit[net_path5.index_of(1)] = True
        hear = net_path5.deliver(transmit)
        assert hear[net_path5.index_of(1)] == NO_SENDER

    def test_two_transmitting_neighbors_collide(self, net_path5):
        transmit = np.zeros(5, dtype=bool)
        transmit[net_path5.index_of(1)] = True
        transmit[net_path5.index_of(3)] = True
        hear = net_path5.deliver(transmit)
        # Node 2 has two transmitting neighbors: collision, hears nothing.
        assert hear[net_path5.index_of(2)] == NO_SENDER
        # Nodes 0 and 4 each have exactly one: they hear.
        assert hear[net_path5.index_of(0)] == net_path5.index_of(1)
        assert hear[net_path5.index_of(4)] == net_path5.index_of(3)

    def test_no_collision_detection_soundness(self, net_clique6):
        """Collision (all transmit) is indistinguishable from silence."""
        silence = net_clique6.deliver(np.zeros(6, dtype=bool))
        everyone = net_clique6.deliver(np.ones(6, dtype=bool))
        assert (silence == NO_SENDER).all()
        assert (everyone == NO_SENDER).all()

    def test_clique_single_transmitter_reaches_everyone(self, net_clique6):
        transmit = np.zeros(6, dtype=bool)
        transmit[3] = True
        hear = net_clique6.deliver(transmit)
        others = [i for i in range(6) if i != 3]
        assert all(hear[i] == 3 for i in others)

    def test_clique_two_transmitters_collide_everywhere(self, net_clique6):
        transmit = np.zeros(6, dtype=bool)
        transmit[0] = transmit[1] = True
        hear = net_clique6.deliver(transmit)
        # 0 and 1 transmit (hear nothing); everyone else collides.
        assert (hear == NO_SENDER).all()

    def test_non_neighbor_transmission_not_heard(self):
        g = nx.Graph([(0, 1), (2, 3)])  # two disjoint edges
        net = RadioNetwork(g)
        transmit = np.zeros(4, dtype=bool)
        transmit[net.index_of(0)] = True
        hear = net.deliver(transmit)
        assert hear[net.index_of(2)] == NO_SENDER
        assert hear[net.index_of(3)] == NO_SENDER
        assert hear[net.index_of(1)] == net.index_of(0)

    def test_rejects_wrong_shape(self, net_path5):
        with pytest.raises(InvalidActionError):
            net_path5.deliver(np.zeros(4, dtype=bool))

    def test_rejects_non_boolean_mask(self, net_path5):
        with pytest.raises(InvalidActionError):
            net_path5.deliver(np.zeros(5, dtype=np.int64))

    def test_steps_counter_increments(self, net_path5):
        assert net_path5.steps_elapsed == 0
        net_path5.deliver(np.zeros(5, dtype=bool))
        net_path5.deliver(np.zeros(5, dtype=bool))
        assert net_path5.steps_elapsed == 2

    def test_trace_records_transmissions_and_receptions(self, net_path5):
        transmit = np.zeros(5, dtype=bool)
        transmit[net_path5.index_of(2)] = True
        net_path5.deliver(transmit)
        assert net_path5.trace.total_steps == 1
        assert net_path5.trace.total_transmissions == 1
        assert net_path5.trace.total_receptions == 2  # both path neighbors


class TestStepConvenience:
    def test_step_returns_heard_messages(self, net_path5):
        received = net_path5.step({2: "hello"})
        assert received == {1: "hello", 3: "hello"}

    def test_step_collision_returns_nothing(self, net_path5):
        received = net_path5.step({1: "a", 3: "b"})
        # Node 2 collides; 0 and 4 hear their unique neighbors.
        assert received == {0: "a", 4: "b"}

    def test_step_rejects_none_message(self, net_path5):
        with pytest.raises(InvalidActionError):
            net_path5.step({2: None})

    def test_step_empty_actions_is_silence(self, net_path5):
        assert net_path5.step({}) == {}


class TestNeighborSum:
    def test_neighbor_sum_on_path(self, net_path5):
        values = np.array(
            [1.0, 2.0, 4.0, 8.0, 16.0]
        )[np.argsort([net_path5.index_of(v) for v in range(5)])]
        # Build values so that values[index_of(v)] = 2^v.
        values = np.zeros(5)
        for v in range(5):
            values[net_path5.index_of(v)] = 2.0**v
        sums = net_path5.neighbor_sum(values)
        assert sums[net_path5.index_of(0)] == 2.0  # neighbor 1
        assert sums[net_path5.index_of(2)] == 2.0 + 8.0  # neighbors 1, 3

    def test_neighbor_sum_shape_check(self, net_path5):
        with pytest.raises(InvalidActionError):
            net_path5.neighbor_sum(np.zeros(3))


class TestConnectivity:
    def test_is_connected_true(self, net_path5):
        assert net_path5.is_connected()

    def test_is_connected_false(self):
        net = RadioNetwork(nx.Graph([(0, 1), (2, 3)]))
        assert not net.is_connected()
