"""Tests for the deterministic round-robin broadcast baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import baselines, graphs
from repro.radio import GraphContractError, RadioNetwork


class TestRoundRobin:
    def test_delivers_on_path(self):
        net = RadioNetwork(graphs.path(20))
        result = baselines.round_robin_broadcast(net, 0)
        assert result.delivered

    def test_delivers_on_udg(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        net = RadioNetwork(g)
        result = baselines.round_robin_broadcast(net, 0)
        assert result.delivered

    def test_deterministic_step_count(self):
        g = graphs.path(12)
        counts = set()
        for _ in range(3):
            net = RadioNetwork(g)
            counts.add(baselines.round_robin_broadcast(net, 0).steps)
        assert len(counts) == 1  # no randomness anywhere

    def test_steps_are_rotations_times_n(self):
        g = graphs.path(10)
        net = RadioNetwork(g)
        result = baselines.round_robin_broadcast(net, 0)
        assert result.steps == result.rotations * 10

    def test_one_rotation_gains_at_least_one_hop(self):
        # From source 0 on a path labeled 0..n-1, turn order matches hop
        # order, so a single rotation informs everyone — the best case.
        net = RadioNetwork(graphs.path(15))
        result = baselines.round_robin_broadcast(net, 0)
        assert result.rotations == 1

    def test_worst_case_direction(self):
        # From the far end the turn order opposes the hop order: each
        # rotation gains roughly one hop — the Theta(n D) regime.
        n = 15
        net = RadioNetwork(graphs.path(n))
        result = baselines.round_robin_broadcast(net, n - 1)
        assert result.rotations >= n - 2

    def test_rejects_disconnected(self):
        import networkx as nx

        net = RadioNetwork(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphContractError):
            baselines.round_robin_broadcast(net, 0)

    def test_rejects_bad_source(self):
        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ValueError):
            baselines.round_robin_broadcast(net, 9)

    def test_slower_than_randomized_decay_on_big_path(self, rng):
        g = graphs.path(40)
        net_rr = RadioNetwork(g)
        rr = baselines.round_robin_broadcast(net_rr, 39)
        net_bgi = RadioNetwork(g)
        bgi = baselines.bgi_broadcast(net_bgi, 39, rng)
        assert rr.steps > bgi.steps
