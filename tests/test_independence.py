"""Tests for independence-number computation and MIS validity checks."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.graphs import (
    alpha_estimate,
    exact_independence_number,
    greedy_independent_set,
    independence_number_bounds,
    is_independent_set,
    is_maximal_independent_set,
)


class TestExactAlpha:
    def test_known_values(self):
        assert exact_independence_number(graphs.clique(5)) == 1
        assert exact_independence_number(graphs.star(10)) == 9
        assert exact_independence_number(graphs.path(7)) == 4
        assert exact_independence_number(graphs.cycle(8)) == 4
        assert exact_independence_number(graphs.cycle(9)) == 4

    def test_empty_graph(self):
        assert exact_independence_number(nx.Graph()) == 0

    def test_edgeless_graph(self):
        g = nx.empty_graph(6)
        assert exact_independence_number(g) == 6

    def test_disconnected_sums_components(self):
        g = nx.disjoint_union(graphs.clique(4), graphs.path(5))
        assert exact_independence_number(g) == 1 + 3

    def test_petersen_graph(self):
        # alpha(Petersen) = 4, a classic.
        assert exact_independence_number(nx.petersen_graph()) == 4

    def test_complete_bipartite(self):
        assert exact_independence_number(nx.complete_bipartite_graph(3, 7)) == 7

    def test_max_nodes_guard(self):
        g = nx.empty_graph(50)
        with pytest.raises(ValueError):
            exact_independence_number(g, max_nodes=10)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=25), st.integers(0, 2**31 - 1))
    def test_matches_bruteforce_on_random_graphs(self, n, seed):
        g = nx.gnp_random_graph(n, 0.3, seed=seed)
        ours = exact_independence_number(g)
        # networkx complement + max clique as an independent oracle.
        complement = nx.complement(g)
        clique, _ = nx.max_weight_clique(complement, weight=None)
        assert ours == len(clique)


class TestGreedy:
    def test_greedy_is_maximal(self, rng):
        g = graphs.connected_gnp(40, 0.15, rng)
        for strategy in ("min-degree", "random"):
            result = greedy_independent_set(g, rng, strategy=strategy)
            assert is_maximal_independent_set(g, result)

    def test_greedy_on_empty_graph(self):
        assert greedy_independent_set(nx.Graph()) == set()

    def test_random_strategy_needs_rng(self):
        with pytest.raises(ValueError):
            greedy_independent_set(graphs.path(4), strategy="random")

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError):
            greedy_independent_set(graphs.path(4), rng, strategy="banana")

    def test_min_degree_optimal_on_star(self):
        # Min-degree greedy takes all the leaves of a star.
        assert len(greedy_independent_set(graphs.star(12))) == 11


class TestBounds:
    def test_bounds_sandwich_exact(self, rng):
        for _ in range(5):
            g = graphs.connected_gnp(30, 0.2, rng)
            lower, upper = independence_number_bounds(g, rng)
            exact = exact_independence_number(g)
            assert lower <= exact <= upper

    def test_bounds_tight_on_clique(self, rng):
        lower, upper = independence_number_bounds(graphs.clique(8), rng)
        assert lower == upper == 1

    def test_bounds_tight_on_star(self, rng):
        lower, upper = independence_number_bounds(graphs.star(10), rng)
        assert lower == upper == 9

    def test_bounds_on_empty(self, rng):
        assert independence_number_bounds(nx.Graph(), rng) == (0, 0)

    def test_alpha_estimate_is_positive_and_feasible(self, rng):
        g = graphs.random_udg(50, 4.0, rng)
        est = alpha_estimate(g, rng)
        assert 1 <= est <= exact_independence_number(g)


class TestValidityPredicates:
    def test_independent_set_detection(self):
        g = graphs.path(5)
        assert is_independent_set(g, {0, 2, 4})
        assert not is_independent_set(g, {0, 1})
        assert is_independent_set(g, set())

    def test_maximality_detection(self):
        g = graphs.path(5)
        assert is_maximal_independent_set(g, {0, 2, 4})
        assert is_maximal_independent_set(g, {1, 3})
        assert not is_maximal_independent_set(g, {0})  # 2, 3, 4 undominated

    def test_non_independent_cannot_be_maximal(self):
        g = graphs.path(4)
        assert not is_maximal_independent_set(g, {0, 1})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(0, 2**31 - 1))
    def test_greedy_always_valid_mis(self, n, seed):
        g = nx.gnp_random_graph(n, 0.25, seed=seed)
        mis = greedy_independent_set(g)
        assert is_maximal_independent_set(g, mis)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=24), st.integers(0, 2**31 - 1))
    def test_any_mis_lower_bounds_alpha(self, n, seed):
        g = nx.gnp_random_graph(n, 0.3, seed=seed)
        rng = np.random.default_rng(seed)
        mis = greedy_independent_set(g, rng, strategy="random")
        assert len(mis) <= exact_independence_number(g)
