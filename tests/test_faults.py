"""The fault layer's own suite (``repro.faults``).

Four layers of pinning:

1. **Schedule semantics** — :class:`FaultSchedule` is data: validation
   refuses every malformed spec by name, ``sample`` is deterministic in
   its seed, digests are stable provenance keys, pickling round-trips.
2. **Mask transforms** — :class:`FaultState` realizes the schedule as
   pure functions of the global step: lifetime windows, jam deafness,
   hash-coin suppression, and the depleting energy ledger, with the
   chunking-invariance contract checked at arbitrary split points.
3. **Integration** — installation on :class:`RadioNetwork`, the empty
   ≡ none bit-identity through :func:`repro.api.run`, RunReport
   provenance, and the ``run_trials*`` process-default threading.
4. **Uniform refusals** — the same :class:`ProtocolError` text from the
   policy constructor, the API, the CLI flag group, and the paths that
   cannot realize faults (round-accounted pipelines, partition, the
   wake-up reduction).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.api as api
from repro import graphs
from repro.analysis import run_report_trials, run_trials
from repro.api import ExecutionPolicy, FaultSchedule, Jam, RunReport
from repro.baselines import uptime_threshold_election
from repro.cli import main as cli_main
from repro.core import compute_restartable_mis, mis_as_wakeup_strategy
from repro.faults import (
    FaultState,
    default_faults,
    node_uptime_fractions,
    set_default_faults,
    validate_faults,
)
from repro.faults.state import _hash_uniform
from repro.radio import RadioNetwork
from repro.radio.errors import ProtocolError


def _udg(n: int = 60, seed: int = 3):
    return graphs.random_udg(n, 4.0, np.random.default_rng(seed))


def _sample(n: int = 60, horizon: int = 2000, seed: int = 11, **rates):
    return FaultSchedule.sample(n, horizon, seed=seed, **rates)


# ---------------------------------------------------------------------------
# 1. Schedule semantics
# ---------------------------------------------------------------------------


class TestScheduleValidation:
    """Every malformed spec refuses by name, before anything runs."""

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"crashes": ((0, -1),)}, r"crash entries are \(node, step\)"),
            ({"crashes": ((-2, 5),)}, r"crash entries are \(node, step\)"),
            ({"sleeps": ((0, 5, 5),)}, r"0 <= start < stop"),
            ({"sleeps": ((-1, 0, 4),)}, r"sleep entries are"),
            ({"joins": ((-1, 3),)}, r"join entries are"),
            ({"tx_prob": ((0, 1.5),)}, r"tx_prob probability must be in \[0, 1\]"),
            ({"tx_prob": ((0, -0.1),)}, r"tx_prob probability must be in \[0, 1\]"),
            ({"tx_prob": ((-1, 0.5),)}, r"tx_prob entries are"),
            ({"energy": ((0, -2),)}, r"energy entries are \(node, budget\)"),
            ({"energy": ((-1, 2),)}, r"energy entries are \(node, budget\)"),
            ({"horizon": 0}, r"fault horizon must be >= 1 step"),
            ({"seed": "zero"}, r"fault seed must be an integer"),
            ({"crashes": ((0, 1.5),)}, r"crash step must be an integer"),
            # bool is not an acceptable int-like (it would silently mean 0/1)
            ({"seed": True}, r"fault seed must be an integer"),
        ],
    )
    def test_malformed_schedules_refuse(self, kwargs, message):
        with pytest.raises(ProtocolError, match=message):
            FaultSchedule(**kwargs)

    def test_jam_window_form(self):
        with pytest.raises(ProtocolError, match=r"jam windows are \[start, stop\)"):
            Jam(4, 4)
        with pytest.raises(ProtocolError, match=r"jam windows are \[start, stop\)"):
            Jam(-1, 3)
        with pytest.raises(ProtocolError, match="jam region nodes must be >= 0"):
            Jam(0, 2, (-1, 4))

    def test_jam_past_horizon_refuses(self):
        with pytest.raises(
            ProtocolError,
            match=r"jam window \[100, 300\) extends past the declared "
            r"horizon 200",
        ):
            FaultSchedule(jams=(Jam(100, 300),), horizon=200)
        # At the horizon exactly is accepted: [start, stop) ends there.
        FaultSchedule(jams=(Jam(100, 200),), horizon=200)

    def test_crash_at_or_before_join_refuses(self):
        with pytest.raises(ProtocolError, match="strictly after its join"):
            FaultSchedule(crashes=((3, 5),), joins=((3, 5),))
        with pytest.raises(ProtocolError, match="strictly after its join"):
            FaultSchedule(crashes=((3, 2),), joins=((3, 5),))
        # Strictly after is a consistent lifetime.
        FaultSchedule(crashes=((3, 6),), joins=((3, 5),))

    def test_jam_tuples_coerce_to_jam(self):
        schedule = FaultSchedule(jams=((1, 4, None),))
        assert schedule.jams == (Jam(1, 4),)

    @pytest.mark.parametrize(
        "knob", ["crash_rate", "churn", "jam", "hetero"]
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_sample_rate_refusals(self, knob, bad):
        with pytest.raises(ProtocolError, match=r"must be in \[0, 1\]"):
            FaultSchedule.sample(20, 100, **{knob: bad})

    def test_sample_rate_non_number_refuses(self):
        with pytest.raises(ProtocolError, match=r"must be a number in \[0, 1\]"):
            FaultSchedule.sample(20, 100, jam="lots")

    def test_sample_size_refusals(self):
        with pytest.raises(ProtocolError, match="n >= 1 and horizon >= 1"):
            FaultSchedule.sample(0, 100)
        with pytest.raises(ProtocolError, match="n >= 1 and horizon >= 1"):
            FaultSchedule.sample(20, 0)

    def test_validate_faults(self):
        schedule = _sample(crash_rate=0.2)
        assert validate_faults(None) is None
        assert validate_faults(schedule) is schedule
        with pytest.raises(
            ProtocolError, match="faults must be a FaultSchedule or None"
        ):
            validate_faults(42)


class TestScheduleValue:
    """Schedules are data: seeded, hashable, digestible, picklable."""

    def test_sample_is_deterministic_in_seed(self):
        a = _sample(crash_rate=0.2, churn=0.3, jam=0.1, hetero=0.4)
        b = _sample(crash_rate=0.2, churn=0.3, jam=0.1, hetero=0.4)
        c = _sample(seed=12, crash_rate=0.2, churn=0.3, jam=0.1, hetero=0.4)
        assert a == b
        assert a.digest() == b.digest()
        assert a != c
        assert a.digest() != c.digest()

    def test_digest_covers_every_field(self):
        base = FaultSchedule()
        assert base.digest() != FaultSchedule(seed=1).digest()
        assert base.digest() != FaultSchedule(horizon=50).digest()
        assert base.digest() != FaultSchedule(crashes=((0, 1),)).digest()
        assert base.digest() != FaultSchedule(jams=(Jam(0, 5),)).digest()

    def test_is_empty_ignores_seed_and_horizon(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule(seed=9, horizon=50).is_empty
        assert not FaultSchedule(energy=((0, 3),)).is_empty

    def test_max_node_spans_all_fields(self):
        assert FaultSchedule().max_node() == -1
        schedule = FaultSchedule(
            crashes=((2, 10),),
            sleeps=((5, 0, 4),),
            jams=(Jam(0, 3, (7, 1)), Jam(4, 6)),
            tx_prob=((3, 0.5),),
        )
        assert schedule.max_node() == 7

    def test_event_counts(self):
        schedule = FaultSchedule(
            crashes=((0, 1), (1, 2)), jams=(Jam(0, 5),), energy=((2, 4),)
        )
        assert schedule.event_counts() == {
            "crashes": 2,
            "sleeps": 0,
            "joins": 0,
            "jams": 1,
            "tx_prob": 0,
            "energy": 1,
        }

    def test_pickle_round_trip(self):
        schedule = _sample(crash_rate=0.3, churn=0.2, jam=0.1, hetero=0.3)
        twin = pickle.loads(pickle.dumps(schedule))
        assert twin == schedule
        assert twin.digest() == schedule.digest()

    def test_sample_families_and_bounds(self):
        horizon = 640
        crashy = _sample(horizon=horizon, crash_rate=0.5)
        assert crashy.crashes and not (crashy.sleeps or crashy.joins)
        churny = _sample(horizon=horizon, churn=0.8)
        assert churny.sleeps and churny.joins
        jammy = _sample(horizon=horizon, jam=0.3)
        assert jammy.jams
        assert all(j.stop <= horizon for j in jammy.jams)
        hetero = _sample(horizon=horizon, hetero=0.8)
        assert hetero.tx_prob and hetero.energy
        assert all(0.3 <= p < 0.95 for _, p in hetero.tx_prob)
        assert all(b >= 1 for _, b in hetero.energy)
        # Drawn lifetimes are consistent by construction: late-joining
        # nodes crash strictly after their join (post_init would refuse).
        mixed = _sample(horizon=horizon, crash_rate=0.9, churn=0.9)
        joins = dict(mixed.joins)
        assert all(
            step > joins[node]
            for node, step in mixed.crashes
            if node in joins
        )


# ---------------------------------------------------------------------------
# 2. Mask transforms
# ---------------------------------------------------------------------------


class TestFaultState:
    def test_needs_a_schedule(self):
        with pytest.raises(ProtocolError, match="FaultState needs a FaultSchedule"):
            FaultState({"crashes": []}, 5)

    def test_node_out_of_range_refuses(self):
        schedule = FaultSchedule(crashes=((10, 3),))
        with pytest.raises(
            ProtocolError,
            match=r"names node 10 but the network has only 5 nodes "
            r"\(valid nodes are 0\.\.4\)",
        ):
            FaultState(schedule, 5)

    def test_alive_window_lifetimes(self):
        schedule = FaultSchedule(
            crashes=((0, 4),), joins=((1, 3),), sleeps=((2, 2, 5),)
        )
        alive = FaultState(schedule, 3).alive_window(0, 6)
        assert alive[:, 0].tolist() == [True] * 4 + [False] * 2
        assert alive[:, 1].tolist() == [False] * 3 + [True] * 3
        assert alive[:, 2].tolist() == [True, True, False, False, False, True]

    def test_deaf_window_down_plus_jammed(self):
        schedule = FaultSchedule(
            crashes=((0, 2),), jams=(Jam(1, 3), Jam(0, 6, (1,)))
        )
        state = FaultState(schedule, 3)
        alive = state.alive_window(0, 6)
        deaf = state.deaf_window(0, 6, alive)
        # Node 1 is region-jammed the whole window.
        assert deaf[:, 1].all()
        # Node 2 only during the global jam [1, 3).
        assert deaf[:, 2].tolist() == [False, True, True, False, False, False]
        # Node 0: global jam, plus down (crashed) from step 2.
        assert deaf[:, 0].tolist() == [False, True, True, True, True, True]

    def test_transform_counters_and_silence(self):
        schedule = FaultSchedule(crashes=((0, 0),))
        state = FaultState(schedule, 4)
        masks = np.ones((5, 4), dtype=bool)
        effective, deaf = state.transform_window(masks.copy(), 0)
        assert not effective[:, 0].any()
        assert effective[:, 1:].all()
        assert deaf[:, 0].all() and not deaf[:, 1:].any()
        assert state.realized["steps_faulted"] == 5
        assert state.realized["suppressed_transmissions"] == 5
        state.note_silenced(3)
        assert state.realized["silenced_receptions"] == 3

    def test_energy_ledger_depletes_exactly(self):
        schedule = FaultSchedule(energy=((1, 3),))
        state = FaultState(schedule, 2)
        masks = np.ones((10, 2), dtype=bool)
        effective, deaf = state.transform_window(masks.copy(), 0)
        # Exactly the first 3 transmissions of node 1 go out.
        assert effective[:, 1].tolist() == [True] * 3 + [False] * 7
        assert effective[:, 0].all()
        assert state.energy_remaining[1] == 0
        assert state.energy_remaining[0] == -1  # unlimited
        # Exhausted nodes stay up and keep hearing.
        assert not deaf.any()
        # Further windows stay silent for the exhausted node.
        again, _ = state.transform_window(masks.copy(), 10)
        assert not again[:, 1].any()

    def test_chunk_invariance_at_arbitrary_splits(self):
        n, width = 12, 24
        schedule = FaultSchedule(
            crashes=((0, 9),),
            sleeps=((1, 4, 15),),
            joins=((2, 6),),
            jams=(Jam(3, 8), Jam(10, 20, (4, 5))),
            tx_prob=((6, 0.5), (7, 0.25)),
            energy=((8, 5), (6, 3)),
            seed=77,
        )
        rng = np.random.default_rng(5)
        masks = rng.random((width, n)) < 0.6
        whole = FaultState(schedule, n)
        eff_whole, deaf_whole = whole.transform_window(masks.copy(), 0)
        for bounds in ([7, 12], [1, 2, 3, 23], [11]):
            chunked = FaultState(schedule, n)
            effs, deafs = [], []
            for lo, hi in zip([0] + bounds, bounds + [width]):
                e, d = chunked.transform_window(masks[lo:hi].copy(), lo)
                effs.append(e)
                deafs.append(d)
            np.testing.assert_array_equal(np.vstack(effs), eff_whole)
            np.testing.assert_array_equal(np.vstack(deafs), deaf_whole)
            np.testing.assert_array_equal(
                chunked.energy_remaining, whole.energy_remaining
            )
        assert whole.realized["suppressed_transmissions"] > 0

    def test_column_restricted_transform_matches_full(self):
        # Residual delivery feeds the transforms only the member
        # columns; every transform is keyed on GLOBAL node ids and the
        # global step clock, so the restricted call must equal the
        # same columns of the full-width call — including the hash
        # coins (tx_prob), the energy ledger, and the realized
        # counters for masks that are False outside the columns.
        n, width = 12, 24
        schedule = FaultSchedule(
            crashes=((0, 9),),
            sleeps=((1, 4, 15),),
            joins=((2, 6),),
            jams=(Jam(3, 8), Jam(10, 20, (4, 5))),
            tx_prob=((6, 0.5), (7, 0.25)),
            energy=((8, 5), (6, 3)),
            seed=77,
        )
        cols = np.array([0, 1, 2, 4, 6, 7, 8, 10], dtype=np.int64)
        rng = np.random.default_rng(5)
        masks = np.zeros((width, n), dtype=bool)
        masks[:, cols] = rng.random((width, cols.size)) < 0.6
        full = FaultState(schedule, n)
        eff_full, deaf_full = full.transform_window(masks.copy(), 0)
        restricted = FaultState(schedule, n)
        eff_r, deaf_r = restricted.transform_window(
            masks[:, cols].copy(), 0, cols=cols
        )
        np.testing.assert_array_equal(eff_r, eff_full[:, cols])
        np.testing.assert_array_equal(deaf_r, deaf_full[:, cols])
        np.testing.assert_array_equal(
            restricted.energy_remaining, full.energy_remaining
        )
        assert restricted.realized == full.realized
        # Same for the helper windows the runner uses directly.
        np.testing.assert_array_equal(
            restricted.alive_window(0, width, cols=cols),
            full.alive_window(0, width)[:, cols],
        )
        alive = full.alive_window(0, width)
        np.testing.assert_array_equal(
            restricted.deaf_window(0, width, alive[:, cols], cols=cols),
            full.deaf_window(0, width, alive)[:, cols],
        )

    def test_column_restricted_transform_is_chunk_invariant(self):
        # Crashes and late-joins landing mid-window while restricted:
        # splitting the restricted window at arbitrary points realizes
        # the identical fault masks and ledger.
        n, width = 10, 20
        schedule = FaultSchedule(
            crashes=((0, 7),), joins=((3, 11),), energy=((5, 4),),
            tx_prob=((2, 0.5),), seed=9,
        )
        cols = np.array([0, 2, 3, 5, 8], dtype=np.int64)
        rng = np.random.default_rng(8)
        compact = rng.random((width, cols.size)) < 0.7
        whole = FaultState(schedule, n)
        eff_whole, deaf_whole = whole.transform_window(
            compact.copy(), 0, cols=cols
        )
        for bounds in ([6, 13], [1, 2, 3, 19], [10]):
            chunked = FaultState(schedule, n)
            effs, deafs = [], []
            for lo, hi in zip([0] + bounds, bounds + [width]):
                e, d = chunked.transform_window(
                    compact[lo:hi].copy(), lo, cols=cols
                )
                effs.append(e)
                deafs.append(d)
            np.testing.assert_array_equal(np.vstack(effs), eff_whole)
            np.testing.assert_array_equal(np.vstack(deafs), deaf_whole)
            np.testing.assert_array_equal(
                chunked.energy_remaining, whole.energy_remaining
            )

    def test_transform_step_is_the_one_row_form(self):
        schedule = FaultSchedule(sleeps=((0, 2, 4),), seed=3)
        a, b = FaultState(schedule, 3), FaultState(schedule, 3)
        transmit = np.array([True, True, False])
        for step in range(5):
            eff_s, deaf_s = a.transform_step(transmit.copy(), step)
            eff_w, deaf_w = b.transform_window(transmit[None, :].copy(), step)
            np.testing.assert_array_equal(eff_s, eff_w[0])
            np.testing.assert_array_equal(deaf_s, deaf_w[0])

    def test_clone_carries_the_ledger_independently(self):
        schedule = FaultSchedule(energy=((0, 4),))
        state = FaultState(schedule, 2)
        state.transform_window(np.ones((3, 2), dtype=bool), 0)
        twin = state.clone()
        assert twin.energy_remaining[0] == state.energy_remaining[0] == 1
        assert twin.realized == state.realized
        twin.transform_window(np.ones((3, 2), dtype=bool), 3)
        assert twin.energy_remaining[0] == 0
        assert state.energy_remaining[0] == 1  # original untouched

    def test_hash_uniform_is_stateless_and_in_range(self):
        steps = np.arange(0, 50, dtype=np.uint64)[:, None]
        nodes = np.arange(0, 8, dtype=np.uint64)[None, :]
        coins = _hash_uniform(9, steps, nodes)
        assert coins.shape == (50, 8)
        assert ((coins >= 0.0) & (coins < 1.0)).all()
        # Counter-based: any restriction of the key grid reproduces it.
        np.testing.assert_array_equal(
            _hash_uniform(9, steps[17:30], nodes[:, 2:5]), coins[17:30, 2:5]
        )
        assert not np.array_equal(_hash_uniform(10, steps, nodes), coins)

    def test_uptime_fractions_math(self):
        schedule = FaultSchedule(
            crashes=((0, 4), (3, 5)),
            joins=((1, 6),),
            sleeps=((2, 2, 5), (3, 3, 20)),
            jams=(Jam(0, 10),),
        )
        up = FaultState(schedule, 5).uptime_fractions(10)
        # crash at 4 -> 4 steps up; join at 6 -> 4 steps up; sleep [2,5)
        # -> 7 up; crash at 5 with sleep [3,20) clipped to [3,5) -> 3 up;
        # jamming never reduces uptime (node 4 is jammed but up).
        np.testing.assert_allclose(up, [0.4, 0.4, 0.7, 0.3, 1.0])
        with pytest.raises(ProtocolError, match="uptime horizon must be >= 1"):
            FaultState(schedule, 5).uptime_fractions(0)

    def test_node_uptime_fractions_fault_free_limit(self):
        net = RadioNetwork(_udg(20))
        np.testing.assert_array_equal(
            node_uptime_fractions(net, 100), np.ones(20)
        )
        with pytest.raises(ProtocolError, match="uptime horizon must be >= 1"):
            node_uptime_fractions(net, 0)
        faulted = RadioNetwork(_udg(20), faults=FaultSchedule(crashes=((0, 5),)))
        assert node_uptime_fractions(faulted, 10)[0] == 0.5


# ---------------------------------------------------------------------------
# 3. Integration: installation, bit-identity, provenance, run_trials
# ---------------------------------------------------------------------------


class TestNetworkInstallation:
    def test_empty_schedule_installs_no_state(self):
        net = RadioNetwork(_udg(20), faults=FaultSchedule(seed=7))
        assert net.faults == FaultSchedule(seed=7)
        assert net._fault_state is None

    def test_install_refusals(self):
        net = RadioNetwork(_udg(20))
        net.install_faults(None)  # explicit no-op
        with pytest.raises(
            ProtocolError, match="install_faults needs a FaultSchedule"
        ):
            net.install_faults("crash everything")
        schedule = FaultSchedule(crashes=((1, 5),))
        net.install_faults(schedule)
        net.install_faults(FaultSchedule(crashes=((1, 5),)))  # idempotent
        with pytest.raises(
            ProtocolError, match="a different FaultSchedule is already installed"
        ):
            net.install_faults(FaultSchedule(crashes=((1, 6),)))

    def test_schedule_wider_than_network_refuses(self):
        with pytest.raises(ProtocolError, match="names node 90 but"):
            RadioNetwork(_udg(20), faults=FaultSchedule(crashes=((90, 5),)))

    @pytest.mark.parametrize("protocol", ["decay", "mis"])
    def test_empty_schedule_is_bit_identical_to_none(self, protocol):
        g = _udg(50, seed=9)
        plain = api.run(protocol, g, seed=21)
        empty = api.run(
            protocol, g, seed=21, policy=ExecutionPolicy(faults=FaultSchedule())
        )
        assert empty.steps == plain.steps
        assert empty.provenance["faults"] is None
        assert plain.provenance["faults"] is None
        assert repr(empty.result) == repr(plain.result)


class TestProvenance:
    def test_report_carries_digest_events_and_realized(self):
        g = _udg(50, seed=9)
        schedule = _sample(n=50, seed=4, crash_rate=0.1, churn=0.2, jam=0.1)
        report = api.run(
            "mis", g, seed=21, policy=ExecutionPolicy(faults=schedule)
        )
        assert isinstance(report, RunReport)
        prov = report.provenance["faults"]
        assert prov["digest"] == schedule.digest()
        assert prov["events"] == schedule.event_counts()
        assert prov["realized"]["steps_faulted"] > 0
        assert prov["realized"]["suppressed_transmissions"] >= 0
        assert report.row()["faults"] == schedule.digest()

    def test_fault_free_rows_say_none(self):
        report = api.run("decay", _udg(30), seed=2)
        assert report.row()["faults"] is None


class TestRunTrialsThreading:
    def test_policy_faults_become_the_trial_default(self):
        schedule = _sample(n=40, crash_rate=0.2)
        seen = []

        def measure(rng):
            seen.append(default_faults())
            return 1.0

        run_trials(measure, 2, 0, policy=ExecutionPolicy(faults=schedule))
        assert seen == [schedule, schedule]
        assert default_faults() is None

    def test_default_restored_after_a_failing_trial(self):
        def explode(rng):
            raise RuntimeError("trial failed")

        with pytest.raises(RuntimeError, match="trial failed"):
            run_trials(
                explode, 1, 0,
                policy=ExecutionPolicy(faults=_sample(crash_rate=0.2)),
            )
        assert default_faults() is None

    def test_non_trial_policy_fields_still_refuse(self):
        with pytest.raises(
            ProtocolError, match="mem_budget and faults"
        ):
            run_trials(
                lambda rng: 1.0, 1, 0,
                policy=ExecutionPolicy(
                    engine="reference", faults=_sample(crash_rate=0.2)
                ),
            )

    def test_run_report_trials_stamps_every_report(self):
        g = _udg(40, seed=6)
        schedule = _sample(n=40, seed=8, churn=0.3)
        reports = run_report_trials(
            "mis", g, 2, 0, policy=ExecutionPolicy(faults=schedule)
        )
        assert len(reports) == 2
        for report in reports:
            assert report.provenance["faults"]["digest"] == schedule.digest()
        assert default_faults() is None


# ---------------------------------------------------------------------------
# 4. Uniform refusals across surfaces
# ---------------------------------------------------------------------------


class TestUniformRefusals:
    def test_policy_constructor_refuses_bad_faults(self):
        with pytest.raises(
            ProtocolError, match="faults must be a FaultSchedule or None"
        ):
            ExecutionPolicy(faults=3.14)

    def test_cli_refuses_malformed_rates_with_the_same_text(self, capsys):
        rc = cli_main(
            ["decay", "--graph", "clique", "--n", "16", "--seed", "1",
             "--crash-rate", "-0.5"]
        )
        assert rc == 2
        assert "crash rate must be in [0, 1]" in capsys.readouterr().err

    def test_cli_refuses_inert_fault_paths(self, capsys):
        rc = cli_main(
            ["broadcast", "--graph", "clique", "--n", "16", "--seed", "1",
             "--jam", "0.2"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot realize a FaultSchedule" in err
        assert "packet=True" in err

    @pytest.mark.parametrize("protocol", ["broadcast", "leader", "partition"])
    def test_api_refuses_inert_fault_paths(self, protocol):
        g = _udg(30)
        schedule = _sample(n=30, crash_rate=0.2)
        with pytest.raises(
            ProtocolError, match="cannot realize a FaultSchedule"
        ):
            api.run(
                protocol, g, seed=1, policy=ExecutionPolicy(faults=schedule)
            )
        # The empty schedule is bit-identical to none, so it passes.
        api.run(
            protocol, g, seed=1, policy=ExecutionPolicy(faults=FaultSchedule())
        )

    def test_wakeup_reduction_refuses_caller_faults(self):
        schedule = _sample(n=8, crash_rate=0.3)
        with pytest.raises(ProtocolError, match="cannot\\s+apply"):
            mis_as_wakeup_strategy(
                64, 8, np.random.default_rng(0),
                policy=ExecutionPolicy(faults=schedule),
            )
        # The process-wide default reaches it too (run_trials threading).
        set_default_faults(schedule)
        try:
            with pytest.raises(ProtocolError, match="cannot\\s+apply"):
                mis_as_wakeup_strategy(64, 8, np.random.default_rng(0))
        finally:
            set_default_faults(None)


# ---------------------------------------------------------------------------
# 5. Robustness variants (the fuzz/contract suites pin their twins;
#    here: the degraded-guarantee semantics).
# ---------------------------------------------------------------------------


class TestRobustnessVariants:
    def test_uptime_election_fault_free_elects(self):
        net = RadioNetwork(_udg(50, seed=9))
        result = uptime_threshold_election(
            net, np.random.default_rng(3), threshold=0.5
        )
        assert result.elected
        assert result.candidates == 50
        assert 0 <= result.leader < 50

    def test_uptime_election_zero_candidates_collapses(self):
        n = 30
        schedule = FaultSchedule(
            crashes=tuple((node, 1) for node in range(n)), horizon=400
        )
        net = RadioNetwork(_udg(n), faults=schedule)
        result = uptime_threshold_election(
            net, np.random.default_rng(3), threshold=0.5
        )
        assert not result.elected
        assert result.leader == -1
        assert result.candidates == 0
        assert result.steps == 0

    def test_uptime_election_threshold_validation(self):
        net = RadioNetwork(_udg(30))
        with pytest.raises(ValueError, match="threshold"):
            uptime_threshold_election(
                net, np.random.default_rng(0), threshold=1.5
            )

    def test_restartable_mis_fault_free_is_maximal(self):
        g = _udg(60, seed=4)
        net = RadioNetwork(g)
        result = compute_restartable_mis(net, np.random.default_rng(2))
        assert result.conflict_edges == 0
        assert result.dominated_fraction == 1.0
        mis = set(result.mis)
        for u, v in g.edges():
            assert not (u in mis and v in mis)
        for node in g.nodes():
            assert node in mis or any(v in mis for v in g.neighbors(node))

    def test_restartable_mis_readmits_woken_nodes(self):
        n = 60
        schedule = _sample(n=n, horizon=3000, seed=5, churn=0.5)
        net = RadioNetwork(_udg(n, seed=4), faults=schedule)
        result = compute_restartable_mis(net, np.random.default_rng(2))
        assert result.epochs_used >= 2
        assert 0.0 <= result.dominated_fraction <= 1.0
        assert len(result.history) == result.epochs_used
