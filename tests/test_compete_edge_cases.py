"""Edge-case and failure-path tests for the Compete pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import CompeteConfig, broadcast, compete, elect_leader
from repro.radio import BudgetExceededError


class TestPhaseCap:
    def test_tiny_phase_cap_raises(self, rng):
        g = graphs.grid_udg(3, 20, rng)
        config = CompeteConfig(max_phases=1)
        with pytest.raises(BudgetExceededError):
            compete(g, {0: 1}, rng, config=config)

    def test_error_message_mentions_rounds(self, rng):
        g = graphs.grid_udg(3, 15, rng)
        config = CompeteConfig(max_phases=1)
        with pytest.raises(BudgetExceededError, match="rounds"):
            compete(g, {0: 1}, rng, config=config)


class TestConfigKnobs:
    def test_sequence_length_respected(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        config = CompeteConfig(sequence_length=7)
        result = compete(g, {0: 1}, rng, config=config)
        seq_charge = [
            r for r in result.ledger.by_reason() if "sequence" in r
        ]
        assert seq_charge  # the charge exists and used the given length

    def test_fine_per_j_configurable(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        for fine_per_j in (1, 4):
            result = compete(
                g, {0: 1}, rng, config=CompeteConfig(fine_per_j=fine_per_j)
            )
            assert result.delivered

    def test_bg_rounds_per_hop_slows_background(self, rng):
        # A much slower background cannot make delivery faster; on a
        # background-dependent graph (boundaries everywhere) it shows up
        # as more phases. We only assert delivery still happens.
        g = graphs.clique_chain(5, 5)
        slow = compete(
            g, {0: 1}, rng, config=CompeteConfig(bg_rounds_per_hop=4.0)
        )
        assert slow.delivered

    def test_cost_model_constants_scale_ledger(self, rng):
        from repro.core import CostModel

        g = graphs.random_udg(40, 3.0, rng)
        cheap = compete(g, {0: 1}, np.random.default_rng(3))
        pricey = compete(
            g,
            {0: 1},
            np.random.default_rng(3),
            config=CompeteConfig(cost_model=CostModel(c_mis=5.0)),
        )
        from repro.core import CostModel as CM

        mis_cheap = cheap.ledger.by_reason()["ComputeMIS (Thm 14)"]
        mis_pricey = pricey.ledger.by_reason()["ComputeMIS (Thm 14)"]
        assert mis_cheap == CM().mis_rounds(40)
        assert mis_pricey == CM(c_mis=5.0).mis_rounds(40)


class TestSourceConfigurations:
    def test_all_nodes_as_sources(self, rng):
        g = graphs.random_udg(30, 2.5, rng)
        sources = {v: v for v in g.nodes}
        result = compete(g, sources, rng)
        assert result.winner == 29
        assert result.delivered

    def test_duplicate_keys_allowed(self, rng):
        g = graphs.path(15)
        result = compete(g, {0: 5, 14: 5}, rng)
        assert result.winner == 5
        assert result.delivered

    def test_source_already_everywhere(self, rng):
        # Degenerate: every node already knows the winner at phase 0.
        g = graphs.path(10)
        sources = {v: 1 for v in g.nodes}
        result = compete(g, sources, rng)
        assert result.delivered
        assert len(result.phases) == 0


class TestLeaderElectionKnobs:
    def test_everyone_candidate_still_elects(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        result = elect_leader(g, rng, c_cand=1e9)  # probability caps at 1
        assert len(result.candidates) == 40
        # Unique max over 40 random ids whp; allow the rare collision.
        if result.elected:
            assert result.leader is not None

    def test_alpha_passthrough_to_compete(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        result = elect_leader(g, rng, alpha=9)
        if result.compete is not None:
            assert result.compete.alpha_used == 9


class TestBroadcastOnHardInstances:
    def test_layered_barrier(self, rng):
        g = graphs.layered_barrier(3, 5, rng)
        import networkx as nx

        g = nx.convert_node_labels_to_integers(g)
        assert broadcast(g, 0, rng).delivered

    def test_star_of_cliques(self, rng):
        g = graphs.star_of_cliques(3, 6)
        assert broadcast(g, 0, rng).delivered

    def test_two_cliques(self, rng):
        g = graphs.two_cliques_bottleneck(10)
        assert broadcast(g, 0, rng).delivered
