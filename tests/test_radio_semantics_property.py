"""Property-based cross-validation of the vectorized delivery semantics.

The vectorized ``RadioNetwork.deliver`` (sparse matvecs) is the
foundation everything else stands on; these tests check it against a
direct, obviously-correct reimplementation of the model's rules on
random graphs and random transmit masks.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import NO_SENDER, RadioNetwork


def _naive_deliver(graph: nx.Graph, transmit: np.ndarray) -> np.ndarray:
    """The model's rules, written out per node."""
    n = graph.number_of_nodes()
    result = np.full(n, NO_SENDER, dtype=np.int64)
    nodes = list(graph.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    for v in nodes:
        i = index[v]
        if transmit[i]:
            continue  # transmitting nodes do not listen
        transmitting_neighbors = [
            index[u] for u in graph.neighbors(v) if transmit[index[u]]
        ]
        if len(transmitting_neighbors) == 1:
            result[i] = transmitting_neighbors[0]
    return result


graph_and_mask = st.integers(min_value=0, max_value=2**31 - 1).flatmap(
    lambda seed: st.tuples(
        st.just(seed),
        st.integers(min_value=2, max_value=24),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=1.0),
    )
)


@settings(max_examples=60, deadline=None)
@given(graph_and_mask)
def test_vectorized_matches_naive(params):
    seed, n, edge_p, tx_p = params
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n, edge_p, seed=seed)
    transmit = rng.random(n) < tx_p
    net = RadioNetwork(graph)
    assert (net.deliver(transmit) == _naive_deliver(graph, transmit)).all()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_hearers_never_transmitted(n, seed):
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n, 0.4, seed=seed)
    transmit = rng.random(n) < 0.5
    net = RadioNetwork(graph)
    hear_from = net.deliver(transmit)
    heard = hear_from != NO_SENDER
    assert not (heard & transmit).any()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_heard_sender_is_a_transmitting_neighbor(n, seed):
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n, 0.4, seed=seed)
    transmit = rng.random(n) < 0.5
    net = RadioNetwork(graph)
    hear_from = net.deliver(transmit)
    nodes = list(graph.nodes)
    for i in np.nonzero(hear_from != NO_SENDER)[0]:
        sender = int(hear_from[i])
        assert transmit[sender]
        assert graph.has_edge(nodes[i], nodes[sender])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(0, 2**31 - 1))
def test_silence_delivers_nothing(n, seed):
    graph = nx.gnp_random_graph(n, 0.4, seed=seed)
    net = RadioNetwork(graph)
    hear_from = net.deliver(np.zeros(n, dtype=bool))
    assert (hear_from == NO_SENDER).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=30), st.integers(0, 2**31 - 1))
def test_neighbor_sum_matches_naive(n, seed):
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n, 0.4, seed=seed)
    values = rng.random(n)
    net = RadioNetwork(graph)
    fast = net.neighbor_sum(values)
    nodes = list(graph.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    for v in nodes:
        expected = sum(values[index[u]] for u in graph.neighbors(v))
        assert fast[index[v]] == np.float64(expected) or abs(
            fast[index[v]] - expected
        ) < 1e-9
