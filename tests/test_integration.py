"""Integration tests: full pipelines across the paper's graph classes.

These exercise the end-to-end claims: MIS feeding Partition feeding
Compete, broadcast + leader election on every geometric class of
Section 1.3, and the packet-level and round-accounted paths agreeing on
what the algorithms compute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import baselines, graphs
from repro.core import (
    CompeteConfig,
    MISConfig,
    broadcast,
    build_schedule,
    compute_mis,
    elect_leader,
    intra_cluster_propagation,
    partition,
    partition_radio,
)
from repro.graphs import (
    EuclideanBox,
    is_maximal_independent_set,
)
from repro.radio import RadioNetwork


def _all_geometric_classes(rng):
    """One instance of each geometric class from paper Section 1.3."""
    return {
        "udg": graphs.random_udg(60, 4.0, rng),
        "quasi-udg": graphs.random_qudg(60, 3.5, rng, r=0.7, R=1.0),
        "unit-ball-3d": graphs.random_unit_ball_graph(
            EuclideanBox(dim=3, side=2.5), 60, rng
        ),
        "geometric-radio": graphs.random_geometric_radio(
            60, 3.5, rng, range_min=0.9, range_max=1.2
        ),
    }


class TestBroadcastAcrossClasses:
    def test_broadcast_on_every_geometric_class(self, rng):
        for name, g in _all_geometric_classes(rng).items():
            result = broadcast(g, 0, rng)
            assert result.delivered, f"broadcast failed on {name}"

    def test_leader_election_on_every_geometric_class(self, rng):
        elected = 0
        classes = _all_geometric_classes(rng)
        for name, g in classes.items():
            result = elect_leader(g, rng)
            elected += int(result.elected)
        # whp per class; allow one unlucky failure across the four.
        assert elected >= len(classes) - 1


class TestMISFeedsPartition:
    def test_radio_mis_output_works_as_partition_centers(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        net = RadioNetwork(g)
        mis_result = compute_mis(net, rng, MISConfig(oracle_degree=True))
        assert is_maximal_independent_set(g, mis_result.mis)
        clustering = partition(g, 0.25, sorted(mis_result.mis), rng)
        assert (clustering.assignment >= 0).all()
        clustering.validate(g, None)

    def test_full_packet_pipeline_mis_partition_icp(self, rng):
        """MIS -> radio Partition -> packet ICP, all at packet level."""
        g = graphs.random_udg(40, 3.0, rng)
        net = RadioNetwork(g)
        mis_result = compute_mis(net, rng, MISConfig(oracle_degree=True))
        clustering = partition_radio(
            net, 0.3, sorted(mis_result.mis), rng
        )
        schedule = build_schedule(g, clustering)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        knowledge[0] = 42
        icp = intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell=16, rng=rng
        )
        # The message must at least cover node 0's own cluster.
        own_cluster = int(clustering.assignment[0])
        members = clustering.members()[own_cluster]
        assert all(icp.knowledge[v] == 42 for v in members)


class TestOursVsBaselinesEndToEnd:
    def test_broadcast_and_bgi_agree_on_delivery(self, rng):
        g = graphs.clique_chain(5, 6)
        ours = broadcast(g, 0, rng)
        net = RadioNetwork(g)
        theirs = baselines.bgi_broadcast(net, 0, rng)
        assert ours.delivered and theirs.delivered

    def test_leading_term_beats_bgi_on_large_diameter_udg(self, rng):
        # Corollary 9's regime: alpha = poly(D) UDG with large D. The
        # paper algorithm's propagation rounds should grow like D while
        # BGI grows like D log n; at this size the gap is visible.
        g = graphs.grid_udg(3, 60, rng)  # long thin grid: D ~ 60
        ours = broadcast(g, 0, rng).propagation_rounds
        net = RadioNetwork(g)
        bgi = baselines.bgi_broadcast(net, 0, rng).steps
        assert ours < bgi

    def test_mis_radio_vs_luby_same_validity(self, rng):
        g = graphs.connected_gnp(60, 0.1, rng)
        net = RadioNetwork(g)
        ours = compute_mis(net, rng, MISConfig(oracle_degree=True))
        luby = baselines.luby_mis(g, rng)
        assert is_maximal_independent_set(g, ours.mis)
        assert is_maximal_independent_set(g, luby.mis)


class TestAdhocDiscipline:
    """Protocols must not read the topology — only per-node state and
    received messages. These tests catch accidental oracle use by
    checking behavioral consequences."""

    def test_mis_identical_on_isomorphic_relabeled_graph(self):
        # Relabeling nodes must not change the *distribution* of the
        # output; with a fixed seed and index-aligned relabeling the runs
        # are identical because protocols only use indices.
        g = graphs.random_udg(30, 2.5, np.random.default_rng(0))
        net1 = RadioNetwork(g)
        r1 = compute_mis(
            net1, np.random.default_rng(5), MISConfig(oracle_degree=True)
        )
        net2 = RadioNetwork(g.copy())
        r2 = compute_mis(
            net2, np.random.default_rng(5), MISConfig(oracle_degree=True)
        )
        assert r1.mis == r2.mis

    def test_eed_protocol_only_listens(self, rng):
        # EstimateEffectiveDegree derives verdicts purely from hear
        # counts: zeroing the counts must flip every verdict to Low.
        from repro.core.effective_degree import EstimateEffectiveDegree

        g = graphs.clique(16)
        net = RadioNetwork(g)
        protocol = EstimateEffectiveDegree(
            net, np.full(16, 0.5), np.ones(16, dtype=bool), C=4
        )
        protocol.counts[:] = 0
        protocol._finished = True
        assert not protocol.result().high.any()
