"""Tests for Radio MIS (Algorithm 7 / Theorem 14) — correctness across
graph classes, golden-round instrumentation, and step accounting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import graphs
from repro.core import MISConfig, compute_mis, mis_round_budget
from repro.graphs import is_independent_set, is_maximal_independent_set
from repro.radio import RadioNetwork

FAST = MISConfig(oracle_degree=True)
FULL = MISConfig(oracle_degree=False, eed_C=8)


def _run(graph, rng, config=FAST):
    net = RadioNetwork(graph)
    return compute_mis(net, rng, config), net


class TestCorrectness:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: graphs.clique(20),
            lambda rng: graphs.path(25),
            lambda rng: graphs.star(20),
            lambda rng: graphs.cycle(16),
            lambda rng: graphs.random_udg(50, 3.5, rng),
            lambda rng: graphs.connected_gnp(40, 0.15, rng),
            lambda rng: graphs.random_tree(35, rng),
            lambda rng: graphs.clique_chain(4, 6),
        ],
        ids=[
            "clique", "path", "star", "cycle", "udg", "gnp", "tree", "chain",
        ],
    )
    def test_outputs_maximal_independent_set(self, maker, rng):
        g = maker(rng)
        result, _ = _run(g, rng)
        assert result.all_removed
        assert is_maximal_independent_set(g, result.mis)

    def test_full_protocol_on_udg(self, rng):
        g = graphs.random_udg(45, 3.0, rng)
        result, _ = _run(g, rng, FULL)
        assert result.all_removed
        assert is_maximal_independent_set(g, result.mis)

    def test_full_protocol_on_clique(self, rng):
        g = graphs.clique(24)
        result, _ = _run(g, rng, FULL)
        assert result.all_removed
        # Clique MIS has exactly one node (and equals leader election).
        assert result.size == 1

    def test_disconnected_graph_supported(self, rng):
        import networkx as nx

        g = nx.disjoint_union(graphs.clique(8), graphs.path(9))
        result, _ = _run(g, rng)
        assert is_maximal_independent_set(g, result.mis)

    def test_single_node(self, rng):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        result, _ = _run(g, rng)
        assert result.mis == {0}

    def test_edgeless_graph_takes_everyone(self, rng):
        import networkx as nx

        g = nx.empty_graph(12)
        result, _ = _run(g, rng)
        assert result.mis == set(range(12))

    def test_independence_holds_even_midrun(self, rng):
        # Even if the budget is too small for maximality, the output set
        # must be independent (independence never depends on completion).
        g = graphs.random_udg(60, 4.0, rng)
        tight = MISConfig(oracle_degree=True, round_factor=0.5)
        result, _ = _run(g, rng, tight)
        assert is_independent_set(g, result.mis)


class TestRoundAndStepAccounting:
    def test_round_budget_formula(self):
        assert mis_round_budget(2, 10.0) == 10
        assert mis_round_budget(1024, 13.0) == 130

    def test_rounds_within_budget(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        result, _ = _run(g, rng)
        assert result.rounds_used <= mis_round_budget(40, FAST.round_factor)

    def test_steps_counted_on_network(self, rng):
        g = graphs.path(16)
        result, net = _run(g, rng)
        assert result.steps_used == net.steps_elapsed

    def test_full_mode_steps_dominated_by_eed(self, rng):
        # The O(log^2 n) EED blocks dominate each round's step cost.
        g = graphs.random_udg(40, 3.0, rng)
        result, net = _run(g, rng, FULL)
        eed_steps = net.trace.steps_in_phase("mis/eed")
        assert eed_steps > net.trace.steps_in_phase("mis/decay-marked")

    def test_oracle_mode_cheaper_than_full(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        fast, _ = _run(g, rng, FAST)
        full, _ = _run(g, rng, FULL)
        assert fast.steps_used < full.steps_used

    def test_steps_scale_polylog(self, rng):
        # Steps / log^3 n should not grow with n (Theorem 14's shape).
        ratios = []
        for n, side in [(30, 2.5), (120, 5.0)]:
            g = graphs.random_udg(n, side, rng)
            result, _ = _run(g, rng, FULL)
            ratios.append(result.steps_used / math.log2(n) ** 3)
        assert ratios[1] < ratios[0] * 4  # far from e.g. linear growth


class TestHistoryAndGoldenRounds:
    def test_history_records_every_round(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        result, _ = _run(g, rng)
        assert len(result.history) == result.rounds_used
        assert all(r.active_before >= 0 for r in result.history)

    def test_joined_totals_match_mis_size(self, rng):
        g = graphs.random_udg(40, 3.0, rng)
        result, _ = _run(g, rng)
        assert sum(r.joined for r in result.history) == result.size

    def test_active_is_nonincreasing(self, rng):
        g = graphs.connected_gnp(40, 0.2, rng)
        result, _ = _run(g, rng)
        counts = [r.active_before for r in result.history]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_golden_rounds_recorded(self, rng):
        g = graphs.random_udg(50, 3.5, rng)
        result, _ = _run(g, rng)
        # Lemma 12: every node is removed or sees golden rounds; in a run
        # that removed everyone, at least some golden rounds must occur.
        total_golden = result.golden_type1.sum() + result.golden_type2.sum()
        assert total_golden > 0

    def test_golden_tracking_can_be_disabled(self, rng):
        g = graphs.path(16)
        config = MISConfig(oracle_degree=True, record_golden=False)
        result, _ = _run(g, rng, config)
        assert result.golden_type1.sum() == 0
        assert result.golden_type2.sum() == 0

    def test_stop_when_done_disabled_runs_full_budget(self, rng):
        g = graphs.path(8)
        config = MISConfig(oracle_degree=True, stop_when_done=False)
        result, _ = _run(g, rng, config)
        assert result.rounds_used == mis_round_budget(8, config.round_factor)


class TestDeterminismAndSeeding:
    def test_same_seed_same_output(self):
        g = graphs.clique_chain(3, 5)
        r1, _ = _run(g, np.random.default_rng(42))
        r2, _ = _run(g, np.random.default_rng(42))
        assert r1.mis == r2.mis

    def test_different_seeds_can_differ(self):
        g = graphs.clique(30)
        outcomes = {
            frozenset(_run(g, np.random.default_rng(seed))[0].mis)
            for seed in range(6)
        }
        assert len(outcomes) > 1
