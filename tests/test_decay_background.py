"""Direct tests for the ICP Decay background process (Algorithm 10)."""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.core import partition
from repro.core.intra_cluster import DecayBackground
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork, run_steps


def _setup(rng, n=40, side=3.0, beta=0.3):
    g = graphs.random_udg(n, side, rng)
    net = RadioNetwork(g)
    mis = sorted(greedy_independent_set(g))
    clustering = partition(g, beta, mis, rng)
    return g, net, clustering


class TestDecayBackground:
    def test_never_finishes(self, rng):
        g, net, clustering = _setup(rng)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        background = DecayBackground(net, clustering, knowledge)
        run_steps(background, rng, 50)
        assert not background.finished

    def test_silent_when_nothing_known(self, rng):
        g, net, clustering = _setup(rng)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        background = DecayBackground(net, clustering, knowledge)
        for _ in range(20):
            assert not background.transmit_mask(rng).any()
            background.observe(np.full(net.n, -1, dtype=np.int64))

    def test_eventually_crosses_cluster_boundaries(self, rng):
        # Left to itself long enough, the background alone floods the
        # graph one Decay hop at a time — the slow path Compete's
        # analysis falls back on at coarse boundaries.
        g, net, clustering = _setup(rng)
        knowledge = np.full(net.n, -1, dtype=np.int64)
        knowledge[0] = 7
        background = DecayBackground(net, clustering, knowledge)
        run_steps(background, rng, 30_000)
        informed = int((background.knowledge == 7).sum())
        assert informed == net.n

    def test_knowledge_monotone(self, rng):
        g, net, clustering = _setup(rng)
        knowledge = rng.integers(-1, 4, size=net.n).astype(np.int64)
        before = knowledge.copy()
        background = DecayBackground(net, clustering, knowledge)
        run_steps(background, rng, 500)
        assert (background.knowledge >= before).all()

    def test_cluster_coins_are_coordinated(self, rng):
        # All members of a cluster share the on/off coin per block: a
        # structural property the protocol needs so schedules and
        # background do not self-collide chaotically.
        g, net, clustering = _setup(rng)
        knowledge = np.zeros(net.n, dtype=np.int64)
        background = DecayBackground(net, clustering, knowledge)
        background.transmit_mask(rng)  # triggers coin refresh
        coins = background._cluster_on
        assert set(coins) == set(clustering.used_centers())
