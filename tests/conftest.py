"""Shared fixtures for the test suite.

Conventions: every randomized test takes its generator from the ``rng``
fixture (seeded per test name for reproducibility) or constructs one from
an explicit seed. Graph fixtures are small enough for packet-level
simulation to stay fast.
"""

from __future__ import annotations

import hashlib

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.radio import RadioNetwork


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fuzz-rounds",
        type=int,
        default=2,
        help=(
            "rounds per twin pair in the differential fuzz suite "
            "(tests/test_fuzz_differential.py); CI runs the small "
            "default, opt into larger sweeps locally"
        ),
    )


@pytest.fixture(scope="session")
def fuzz_rounds(request) -> int:
    """How many randomized rounds each differential fuzz case runs."""
    return int(request.config.getoption("--fuzz-rounds"))


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Per-test deterministic generator (seeded from the test's own id)."""
    digest = hashlib.sha256(request.node.nodeid.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


@pytest.fixture
def path5() -> nx.Graph:
    """A 5-node path."""
    return graphs.path(5)


@pytest.fixture
def clique6() -> nx.Graph:
    """A 6-node clique."""
    return graphs.clique(6)


@pytest.fixture
def star8() -> nx.Graph:
    """A star with 7 leaves."""
    return graphs.star(8)


@pytest.fixture
def small_udg(rng) -> nx.Graph:
    """A connected ~40-node unit disk graph."""
    return graphs.random_udg(n=40, side=3.0, rng=rng)


@pytest.fixture
def medium_udg(rng) -> nx.Graph:
    """A connected ~120-node unit disk graph with moderate diameter."""
    return graphs.random_udg(n=120, side=5.0, rng=rng)


@pytest.fixture
def net_path5(path5) -> RadioNetwork:
    """Radio network on the 5-path."""
    return RadioNetwork(path5)


@pytest.fixture
def net_clique6(clique6) -> RadioNetwork:
    """Radio network on the 6-clique."""
    return RadioNetwork(clique6)
