"""The window-multiplexing combinator (PR 3 tentpole).

``multiplex`` zips two plan/commit streams into joint oblivious
windows. Everything here is pinned against step-wise references:

* the fused ICP path (slot passes x Decay background) against both the
  ``TimeMultiplexer`` reference and the decision-point engine path,
  bit-for-bit across the graph-family matrix — knowledge, step counts,
  trace totals (per phase), and the post-run rng stream;
* generalized slot patterns (``(0, 1, 1)``) against an in-test
  step-wise pattern driver;
* termination semantics: the joint stream ends before the first row
  that would follow the main stream's last one (the reference drivers'
  per-step ``finished`` check), backgrounds that end first fall silent;
* the documented prohibitions: ``TracePhase`` inside a multiplexed
  sub-stream raises ``ProtocolError`` (previously only a docstring
  promise), as does a main stream without an exact remaining-step
  count.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import graphs
from repro.core import build_schedule, partition
from repro.core.intra_cluster import (
    DecayBackground,
    DecayBackgroundSource,
    ICPProtocol,
    intra_cluster_propagation,
)
from repro.engine import (
    DecisionStep,
    ObliviousWindow,
    ProtocolSegmentSource,
    ScheduleSegmentAdapter,
    SegmentProtocol,
    TracePhase,
    WindowedRunner,
    multiplex,
    run_schedule,
)
from repro.graphs import greedy_independent_set
from repro.radio import (
    NO_SENDER,
    ProtocolError,
    Protocol,
    RadioNetwork,
    run_steps,
)


def _family_graph(kind: int, seed: int) -> nx.Graph:
    rng = np.random.default_rng(1000 + seed)
    if kind == 0:
        return graphs.random_udg(70, 3.0, rng)
    if kind == 1:
        return nx.convert_node_labels_to_integers(
            graphs.random_qudg(60, 3.0, rng)
        )
    if kind == 2:
        return nx.convert_node_labels_to_integers(
            graphs.star_of_cliques(5, 6)
        )
    if kind == 3:
        return graphs.path(45)
    return graphs.connected_gnp(50, 0.1, np.random.default_rng(1000 + seed))


def _assert_trace_equal(a: RadioNetwork, b: RadioNetwork) -> None:
    assert a.steps_elapsed == b.steps_elapsed
    assert a.trace.total_steps == b.trace.total_steps
    assert a.trace.total_transmissions == b.trace.total_transmissions
    assert a.trace.total_receptions == b.trace.total_receptions
    assert {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in a.trace.phase_stats().items()
    } == {
        k: (s.steps, s.transmissions, s.receptions)
        for k, s in b.trace.phase_stats().items()
    }


def _icp_setup(kind: int, seed: int):
    g = nx.convert_node_labels_to_integers(_family_graph(kind, seed))
    setup = np.random.default_rng(11 + seed)
    mis = sorted(greedy_independent_set(g, setup, "random"))
    clustering = partition(g, 0.3, mis, setup)
    schedule = build_schedule(g, clustering)
    know = np.full(g.number_of_nodes(), -1, dtype=np.int64)
    know[0] = 9
    if g.number_of_nodes() > 5:
        know[5] = 4
    return g, clustering, schedule, know


class TestFusedICPEquivalence:
    """Acceptance: fused ICP bit-identical to the time-multiplexed
    reference on shared seeds across the equivalence matrix."""

    @pytest.mark.parametrize("kind", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("ell", [2, 4])
    def test_matrix(self, kind, ell):
        g, clustering, schedule, know = _icp_setup(kind, 60 + kind)
        results = {}
        for engine in ("reference", "windowed", "fused"):
            net = RadioNetwork(g)
            rng = np.random.default_rng(12 + kind)
            res = intra_cluster_propagation(
                net, clustering, schedule, know, ell, rng,
                with_background=True, engine=engine,
            )
            results[engine] = (res, net, rng)

        ref, net_ref, rng_ref = results["reference"]
        for engine in ("windowed", "fused"):
            res, net, rng = results[engine]
            assert (res.knowledge == ref.knowledge).all()
            assert res.steps == ref.steps
            _assert_trace_equal(net, net_ref)
            assert rng.bit_generator.state == rng_ref.bit_generator.state

    @pytest.mark.parametrize("delivery", ["auto", "sparse", "dense"])
    def test_delivery_modes_identical(self, delivery):
        g, clustering, schedule, know = _icp_setup(0, 7)
        net = RadioNetwork(g)
        res = intra_cluster_propagation(
            net, clustering, schedule, know, 3,
            np.random.default_rng(5), engine="fused", delivery=delivery,
        )
        net_ref = RadioNetwork(g)
        ref = intra_cluster_propagation(
            net_ref, clustering, schedule, know, 3,
            np.random.default_rng(5), engine="reference",
        )
        assert (res.knowledge == ref.knowledge).all()
        assert res.steps == ref.steps
        _assert_trace_equal(net, net_ref)

    def test_fused_without_background_matches_reference(self):
        g, clustering, schedule, know = _icp_setup(0, 8)
        a = intra_cluster_propagation(
            RadioNetwork(g), clustering, schedule, know, 3,
            np.random.default_rng(6), with_background=False,
            engine="fused",
        )
        b = intra_cluster_propagation(
            RadioNetwork(g), clustering, schedule, know, 3,
            np.random.default_rng(6), with_background=False,
            engine="reference",
        )
        assert (a.knowledge == b.knowledge).all()
        assert a.steps == b.steps


# ---------------------------------------------------------------------------
# Synthetic protocols for pattern and termination tests.
# ---------------------------------------------------------------------------
class _RotorProtocol(Protocol):
    """Deterministic-length adaptive protocol: one transmitter per step,
    rotated by the number of successful receptions observed so far (so
    any causal slippage in the combinator changes its masks)."""

    def __init__(self, network: RadioNetwork, length: int) -> None:
        super().__init__(network)
        self.length = length
        self.rotor = 0
        self.heard_total = 0
        self._step = 0
        self._finished = length == 0

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        mask = np.zeros(self.n, dtype=bool)
        mask[(self._step + self.rotor) % self.n] = True
        return mask

    def observe(self, hear_from: np.ndarray) -> None:
        got = int((hear_from != NO_SENDER).sum())
        self.heard_total += got
        self.rotor = (self.rotor + got) % self.n
        self._step += 1
        if self._step >= self.length:
            self._finished = True

    def result(self):
        return (self.rotor, self.heard_total)


class _BeepProtocol(Protocol):
    """Finishing background: transmits node ``step % n`` for ``length``
    steps, then stays finished (its multiplexed slots fall silent)."""

    def __init__(self, network: RadioNetwork, length: int) -> None:
        super().__init__(network)
        self.length = length
        self._step = 0
        self.heard = 0
        self._finished = length == 0

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        mask = np.zeros(self.n, dtype=bool)
        mask[self._step % self.n] = True
        return mask

    def observe(self, hear_from: np.ndarray) -> None:
        self.heard += int((hear_from != NO_SENDER).sum())
        self._step += 1
        if self._step >= self.length:
            self._finished = True

    def result(self):
        return self.heard


def _run_pattern_reference(
    network: RadioNetwork,
    protocols: list[Protocol],
    pattern: tuple[int, ...],
    rng: np.random.Generator,
) -> int:
    """Generalized step-wise time multiplexing: the executable
    specification ``multiplex`` is checked against for arbitrary slot
    patterns. Stops (like ``run_steps`` over ``TimeMultiplexer``)
    before the first step at which the main protocol is finished."""
    steps = 0
    pos = 0
    while not protocols[0].finished:
        active = protocols[pattern[pos % len(pattern)]]
        if active.finished:
            network.deliver(np.zeros(network.n, dtype=bool))
        else:
            hear = network.deliver(active.transmit_mask(rng))
            active.observe(hear)
        steps += 1
        pos += 1
    return steps


class TestMuxPatterns:
    @pytest.mark.parametrize("pattern", [(0, 1), (0, 1, 1), (0, 0, 1)])
    def test_pattern_matches_stepwise_reference(self, pattern):
        g, clustering, schedule, know_a = _icp_setup(0, 21)
        know_b = know_a.copy()
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)

        main_a = ICPProtocol(net_a, schedule, know_a, 3)
        bg_a = DecayBackground(net_a, clustering, know_a)
        total = sum(len(p.slots) for p in main_a._passes)
        result = run_schedule(
            net_a,
            multiplex(
                ProtocolSegmentSource(main_a, steps=total),
                DecayBackgroundSource(bg_a),
                slots=pattern,
                rng=rng_a,
            ),
        )

        main_b = ICPProtocol(net_b, schedule, know_b, 3)
        bg_b = DecayBackground(net_b, clustering, know_b)
        _run_pattern_reference(net_b, [main_b, bg_b], pattern, rng_b)

        assert (know_a == know_b).all()
        assert (result == know_a).all()
        _assert_trace_equal(net_a, net_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize("pattern", [(0, 1, 2), (0, 2, 1, 1), None])
    @pytest.mark.parametrize("stream", [False, True])
    def test_three_streams_match_stepwise_reference(self, pattern, stream):
        # k-way generalization: main slot passes + the Decay background
        # + a second background, zipped under a 3-stream pattern,
        # pinned against the generalized time-multiplexed reference
        # driver on shared seeds (knowledge, steps, trace, rng stream).
        # `None` exercises the default round-robin pattern; `stream`
        # runs the same zip with streamed joint windows.
        g, clustering, schedule, know_a = _icp_setup(0, 23)
        know_b = know_a.copy()
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        rng_a, rng_b = np.random.default_rng(17), np.random.default_rng(17)

        main_a = ICPProtocol(net_a, schedule, know_a, 3)
        bg_a = DecayBackground(net_a, clustering, know_a)
        beep_a = _BeepProtocol(net_a, 25)
        total = sum(len(p.slots) for p in main_a._passes)
        result = run_schedule(
            net_a,
            multiplex(
                ProtocolSegmentSource(main_a, steps=total),
                DecayBackgroundSource(bg_a),
                ProtocolSegmentSource(beep_a, steps=25),
                slots=pattern,
                rng=rng_a,
                stream=stream,
            ),
        )

        main_b = ICPProtocol(net_b, schedule, know_b, 3)
        bg_b = DecayBackground(net_b, clustering, know_b)
        beep_b = _BeepProtocol(net_b, 25)
        _run_pattern_reference(
            net_b,
            [main_b, bg_b, beep_b],
            pattern or (0, 1, 2),
            rng_b,
        )

        assert (know_a == know_b).all()
        assert (result == know_a).all()
        assert beep_a.heard == beep_b.heard
        _assert_trace_equal(net_a, net_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_finished_background_falls_silent(self):
        g = graphs.path(12)
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        rng_a, rng_b = np.random.default_rng(4), np.random.default_rng(4)

        main_a = _RotorProtocol(net_a, 40)
        bg_a = _BeepProtocol(net_a, 7)
        result = run_schedule(
            net_a,
            multiplex(
                ProtocolSegmentSource(main_a, steps=40),
                ProtocolSegmentSource(bg_a, steps=7),
                rng=rng_a,
            ),
        )

        main_b = _RotorProtocol(net_b, 40)
        bg_b = _BeepProtocol(net_b, 7)
        steps = _run_pattern_reference(net_b, [main_b, bg_b], (0, 1), rng_b)

        assert result == main_b.result()
        assert bg_a.heard == bg_b.heard
        assert net_a.steps_elapsed == steps == 79  # 2 * 40 - 1
        _assert_trace_equal(net_a, net_b)

    def test_stops_before_row_after_mains_last(self):
        # The reference drivers re-check main.finished before every
        # step; the joint stream must not execute the background row
        # that would follow main's final step.
        g = graphs.path(9)
        net = RadioNetwork(g)
        main = _RotorProtocol(net, 5)
        bg = _BeepProtocol(net, 1000)
        run_schedule(
            net,
            multiplex(
                ProtocolSegmentSource(main, steps=5),
                ProtocolSegmentSource(bg, steps=1000),
                rng=np.random.default_rng(0),
            ),
        )
        assert net.steps_elapsed == 9  # 2 * 5 - 1, not 10

    def test_max_steps_stops_mid_block(self):
        g, clustering, schedule, know_a = _icp_setup(0, 22)
        know_b = know_a.copy()
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        cap = 37  # deliberately inside a background sweep

        main_a = ICPProtocol(net_a, schedule, know_a, 3)
        total = sum(len(p.slots) for p in main_a._passes)
        run_schedule(
            net_a,
            multiplex(
                ProtocolSegmentSource(main_a, steps=total),
                DecayBackgroundSource(
                    DecayBackground(net_a, clustering, know_a)
                ),
                rng=rng_a,
                max_steps=cap,
            ),
        )

        main_b = ICPProtocol(net_b, schedule, know_b, 3)
        bg_b = DecayBackground(net_b, clustering, know_b)
        from repro.radio.protocol import TimeMultiplexer

        run_steps(TimeMultiplexer(net_b, main_b, bg_b), rng_b, cap)

        assert net_a.steps_elapsed == net_b.steps_elapsed == cap
        assert (know_a == know_b).all()
        _assert_trace_equal(net_a, net_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


# ---------------------------------------------------------------------------
# Prohibitions and contract errors.
# ---------------------------------------------------------------------------
class _TracePhaseSource(SegmentProtocol):
    def __init__(self, n: int) -> None:
        super().__init__(n)

    def plan(self, rng):
        return TracePhase("sneaky")

    def commit(self, reply):
        pass

    def steps_remaining(self):
        return 5


class TestMuxProhibitions:
    def _main(self, net, steps=6):
        return ProtocolSegmentSource(_RotorProtocol(net, steps), steps=steps)

    def test_trace_phase_in_background_raises(self):
        # Regression for the docstring-only promise in engine/segments:
        # TracePhase is not allowed inside multiplexed sub-schedules.
        net = RadioNetwork(graphs.path(6))

        def schedule():
            yield TracePhase("inner")
            yield ObliviousWindow(np.zeros((2, 6), dtype=bool))

        mux = multiplex(
            self._main(net),
            ScheduleSegmentAdapter(schedule(), 6),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ProtocolError, match="TracePhase"):
            run_schedule(net, mux)

    def test_trace_phase_in_main_raises(self):
        net = RadioNetwork(graphs.path(6))
        mux = multiplex(
            _TracePhaseSource(6),
            self._main(net),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ProtocolError, match="TracePhase"):
            run_schedule(net, mux)

    def test_main_without_exact_remaining_rejected(self):
        net = RadioNetwork(graphs.path(6))

        def schedule():
            yield ObliviousWindow(np.zeros((2, 6), dtype=bool))

        with pytest.raises(ProtocolError, match="steps_remaining"):
            multiplex(
                ScheduleSegmentAdapter(schedule(), 6),
                self._main(net),
                rng=np.random.default_rng(0),
            )

    def test_refusal_names_the_offending_source(self):
        # The refusal must name the offending source's type, so the
        # error is actionable from any entry point (CLI --fused, packet
        # Compete, a direct call) without a traceback spelunk.
        net = RadioNetwork(graphs.path(6))

        def schedule():
            yield ObliviousWindow(np.zeros((2, 6), dtype=bool))

        with pytest.raises(ProtocolError, match="ScheduleSegmentAdapter"):
            multiplex(
                ScheduleSegmentAdapter(schedule(), 6),
                self._main(net),
                rng=np.random.default_rng(0),
            )
        # ProtocolSegmentSource without an exact step bound is the
        # other common way to hit it.
        bare = ProtocolSegmentSource(_RotorProtocol(net, 4))
        with pytest.raises(ProtocolError, match="ProtocolSegmentSource"):
            multiplex(bare, self._main(net), rng=np.random.default_rng(0))

    def test_needs_a_background(self):
        net = RadioNetwork(graphs.path(6))
        with pytest.raises(ProtocolError, match="background"):
            multiplex(self._main(net), rng=np.random.default_rng(0))

    def test_streamed_window_in_substream_rejected(self):
        from repro.engine import StreamedWindow
        from repro.radio import TransmitPlan

        net = RadioNetwork(graphs.path(6))

        class _Streamy(SegmentProtocol):
            def plan(self, rng):
                return StreamedWindow(
                    TransmitPlan(
                        2, lambda s, e: np.zeros((e - s, 6), dtype=bool)
                    )
                )

            def commit(self, reply):
                pass

        mux = multiplex(
            self._main(net), _Streamy(6), rng=np.random.default_rng(0)
        )
        with pytest.raises(ProtocolError, match="StreamedWindow"):
            run_schedule(net, mux)

    def test_slot_pattern_validation(self):
        net = RadioNetwork(graphs.path(6))
        with pytest.raises(ProtocolError, match="slots"):
            multiplex(
                self._main(net), self._main(net),
                slots=(), rng=np.random.default_rng(0),
            )
        with pytest.raises(ProtocolError, match="slots"):
            multiplex(
                self._main(net), self._main(net),
                slots=(0, 2), rng=np.random.default_rng(0),
            )
        with pytest.raises(ProtocolError, match="main"):
            multiplex(
                self._main(net), self._main(net),
                slots=(1, 1), rng=np.random.default_rng(0),
            )

    def test_stream_size_mismatch_rejected(self):
        net6 = RadioNetwork(graphs.path(6))
        net7 = RadioNetwork(graphs.path(7))
        with pytest.raises(ProtocolError, match="sizes"):
            multiplex(
                self._main(net6),
                ProtocolSegmentSource(_BeepProtocol(net7, 3), steps=3),
                rng=np.random.default_rng(0),
            )

    def test_decision_step_accepted_as_width_one(self):
        # A sub-stream planning DecisionSteps is legal: each becomes a
        # width-1 row of the joint window, and its commit reply keeps
        # the 1-D hear-vector shape every other driver delivers for a
        # DecisionStep.
        net = RadioNetwork(graphs.path(6))

        class DecisionSource(SegmentProtocol):
            def __init__(self):
                super().__init__(6)
                self.left = 4

            def plan(self, rng):
                if not self.left:
                    return None
                self.left -= 1
                mask = np.zeros(6, dtype=bool)
                mask[self.left] = True
                return DecisionStep(mask)

            def commit(self, reply):
                assert reply.shape == (6,)

            def steps_remaining(self):
                return self.left

            def result(self):
                return "done"

        result = run_schedule(
            net,
            multiplex(
                DecisionSource(), self._main(net),
                rng=np.random.default_rng(0),
            ),
        )
        assert result == "done"
        assert net.steps_elapsed == 7  # 2 * 4 - 1


class TestMuxPlanValidation:
    def _main(self, net, steps=6):
        return ProtocolSegmentSource(_RotorProtocol(net, steps), steps=steps)

    class _BadSource(SegmentProtocol):
        def __init__(self, n, segment_factory, remaining=5):
            super().__init__(n)
            self._factory = segment_factory
            self._remaining = remaining

        def plan(self, rng):
            return self._factory()

        def commit(self, reply):
            pass

        def steps_remaining(self):
            return self._remaining

    @pytest.mark.parametrize(
        "factory, match",
        [
            (lambda: "garbage", "non-segment"),
            (
                lambda: ObliviousWindow(np.zeros((2, 9), dtype=bool)),
                "shape",
            ),
            (
                lambda: ObliviousWindow(np.zeros((2, 6), dtype=np.int64)),
                "dtype",
            ),
        ],
    )
    def test_bad_planned_segments_rejected(self, factory, match):
        net = RadioNetwork(graphs.path(6))
        mux = multiplex(
            self._BadSource(6, factory),
            self._main(net),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ProtocolError, match=match):
            run_schedule(net, mux)

    def test_negative_max_steps_rejected(self):
        net = RadioNetwork(graphs.path(6))
        with pytest.raises(ProtocolError, match="max_steps"):
            multiplex(
                self._main(net), self._main(net),
                rng=np.random.default_rng(0), max_steps=-1,
            )

    def test_zero_row_segments_commit_and_plan_on(self):
        # A source may plan empty windows; they execute nothing, are
        # committed with an empty reply, and planning continues.
        net = RadioNetwork(graphs.path(6))
        committed = []

        class EmptyThenReal(SegmentProtocol):
            def __init__(self):
                super().__init__(6)
                self.planned = 0

            def plan(self, rng):
                self.planned += 1
                if self.planned % 2:
                    return ObliviousWindow(np.zeros((0, 6), dtype=bool))
                return ObliviousWindow(np.zeros((1, 6), dtype=bool))

            def commit(self, reply):
                committed.append(reply.shape)

            def steps_remaining(self):
                return None

        run_schedule(
            net,
            multiplex(
                self._main(net, steps=4), EmptyThenReal(),
                rng=np.random.default_rng(0),
            ),
        )
        assert (0, 6) in committed and (1, 6) in committed


class TestSegmentProtocolDefaults:
    def test_default_result_raises(self):
        class Bare(SegmentProtocol):
            def plan(self, rng):
                return None

            def commit(self, reply):
                pass

        with pytest.raises(ProtocolError, match="result"):
            Bare(4).result()
        assert Bare(4).steps_remaining() is None

    def test_trace_phase_through_segment_schedule(self):
        # Outside a mux, a plan/commit source may emit TracePhase; the
        # lift passes it through and commits None.
        net = RadioNetwork(graphs.path(4))
        seen = []

        class Phased(SegmentProtocol):
            def __init__(self):
                super().__init__(4)
                self.stage = 0

            def plan(self, rng):
                self.stage += 1
                if self.stage == 1:
                    return TracePhase("warm")
                if self.stage == 2:
                    return ObliviousWindow(np.zeros((2, 4), dtype=bool))
                return None

            def commit(self, reply):
                seen.append(None if reply is None else reply.shape)

            def result(self):
                return "phased"

        assert WindowedRunner(net).run_segments(
            Phased(), np.random.default_rng(0)
        ) == "phased"
        assert seen == [None, (2, 4)]
        assert net.trace.steps_in_phase("warm") == 2

    def test_protocol_schedule_negative_steps(self):
        from repro.engine import protocol_schedule

        net = RadioNetwork(graphs.path(4))
        with pytest.raises(ProtocolError, match="steps"):
            list(
                protocol_schedule(
                    _RotorProtocol(net, 2), np.random.default_rng(0),
                    steps=-1,
                )
            )

    def test_validating_runner_empty_window(self):
        from repro.engine import ObliviousWindow as OW
        from repro.engine import ValidatingRunner

        net = RadioNetwork(graphs.path(4))
        runner = ValidatingRunner(net)

        def emit():
            yield OW(np.zeros((0, 4), dtype=bool))
            return "ok"

        assert runner.run(emit()) == "ok"
        assert runner.windows_checked == 1
        assert runner.steps_checked == 0


class TestSegmentAdapters:
    def test_adapter_requires_alternating_plan_commit(self):
        def schedule():
            yield ObliviousWindow(np.zeros((1, 4), dtype=bool))
            yield ObliviousWindow(np.zeros((1, 4), dtype=bool))

        adapter = ScheduleSegmentAdapter(schedule(), 4)
        rng = np.random.default_rng(0)
        adapter.plan(rng)
        with pytest.raises(ProtocolError, match="plan"):
            adapter.plan(rng)
        adapter.commit(np.full((1, 4), NO_SENDER, dtype=np.int64))
        with pytest.raises(ProtocolError, match="commit"):
            adapter.commit(np.full((1, 4), NO_SENDER, dtype=np.int64))

    def test_adapter_result_gating(self):
        def schedule():
            yield ObliviousWindow(np.zeros((1, 4), dtype=bool))
            return "value"

        adapter = ScheduleSegmentAdapter(schedule(), 4)
        rng = np.random.default_rng(0)
        with pytest.raises(ProtocolError, match="result"):
            adapter.result()
        adapter.plan(rng)
        adapter.commit(np.full((1, 4), NO_SENDER, dtype=np.int64))
        assert adapter.steps_remaining() is None
        assert adapter.plan(rng) is None
        assert adapter.steps_remaining() == 0
        assert adapter.result() == "value"

    def test_run_segments_equals_generator_run(self):
        from repro.core.decay import decay_block_schedule, run_decay

        g = graphs.path(20)
        active = np.zeros(20, dtype=bool)
        active[::3] = True
        net_a, net_b = RadioNetwork(g), RadioNetwork(g)
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)

        adapter = ScheduleSegmentAdapter(
            decay_block_schedule(net_a, active, rng_a, iterations=4), 20
        )
        a = WindowedRunner(net_a).run_segments(adapter, rng_a)
        b = run_decay(net_b, active, rng_b, iterations=4)

        assert (a.heard == b.heard).all()
        assert (a.heard_from == b.heard_from).all()
        _assert_trace_equal(net_a, net_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_protocol_source_validates(self):
        net = RadioNetwork(graphs.path(5))
        with pytest.raises(ProtocolError, match="steps"):
            ProtocolSegmentSource(_RotorProtocol(net, 3), steps=-1)
        source = ProtocolSegmentSource(_RotorProtocol(net, 3), steps=3)
        rng = np.random.default_rng(0)
        source.plan(rng)
        with pytest.raises(ProtocolError, match="plan"):
            source.plan(rng)
        with pytest.raises(ProtocolError, match="commit"):
            ProtocolSegmentSource(_RotorProtocol(net, 3)).commit(
                np.full((1, 5), NO_SENDER, dtype=np.int64)
            )
