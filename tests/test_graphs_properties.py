"""Tests for structural properties: diameter, growth-boundedness,
metric-space doubling, graph summaries."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import graphs
from repro.graphs import (
    EuclideanBox,
    FlatTorus,
    ball,
    ball_independence_profile,
    diameter,
    estimate_doubling_constant,
    growth_exponent,
    log_base_d,
    summarize,
)


class TestDiameter:
    def test_known_diameters(self):
        assert diameter(graphs.path(6)) == 5
        assert diameter(graphs.clique(6)) == 1
        assert diameter(graphs.star(6)) == 2

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        assert diameter(g) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            diameter(nx.Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            diameter(nx.Graph([(0, 1), (2, 3)]))


class TestBall:
    def test_ball_on_path(self):
        g = graphs.path(7)
        assert ball(g, 3, 0) == {3}
        assert ball(g, 3, 1) == {2, 3, 4}
        assert ball(g, 3, 10) == set(range(7))

    def test_ball_radius_zero_everywhere(self):
        g = graphs.clique(5)
        for v in g.nodes:
            assert ball(g, v, 0) == {v}


class TestGrowthBoundedness:
    def test_udg_profile_is_polynomial(self, rng):
        g = graphs.random_udg(n=150, side=7.0, rng=rng)
        profile = ball_independence_profile(g, [1, 2, 4], rng, n_centers=6)
        exponent = growth_exponent(profile)
        # UDGs are growth-bounded with exponent <= 2 (disk packing);
        # sampling noise allows a little slack.
        assert exponent <= 2.6

    def test_profile_monotone_radii(self, rng):
        g = graphs.random_udg(n=80, side=5.0, rng=rng)
        profile = ball_independence_profile(g, [1, 2, 3], rng, n_centers=5)
        assert profile[1] <= profile[2] <= profile[3]

    def test_star_profile_explodes_at_radius_one(self, rng):
        # A star is NOT growth-bounded as a family: radius 1 already
        # contains an (n-1)-size independent set.
        g = graphs.star(40)
        profile = ball_independence_profile(g, [1], rng, n_centers=40)
        assert profile[1] == 39

    def test_growth_exponent_needs_two_points(self):
        with pytest.raises(ValueError):
            growth_exponent({1: 3})

    def test_empty_graph_profile(self, rng):
        assert ball_independence_profile(nx.Graph(), [1, 2], rng) == {1: 0, 2: 0}


class TestDoublingConstant:
    def test_euclidean_plane_doubling_small(self, rng):
        b = estimate_doubling_constant(
            EuclideanBox(dim=2, side=1.0), rng, n_points=150, n_trials=8
        )
        # The plane's doubling constant is 7; the empirical estimate on a
        # finite sample must be bounded by a small constant.
        assert 1 <= b <= 16

    def test_torus_doubling_small(self, rng):
        b = estimate_doubling_constant(
            FlatTorus(dim=2, side=1.0), rng, n_points=120, n_trials=6
        )
        assert 1 <= b <= 16

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            EuclideanBox(dim=0)
        with pytest.raises(ValueError):
            FlatTorus(side=-1.0)


class TestLogBaseD:
    def test_basic_value(self):
        # log_16(256) = 2
        assert log_base_d(256, 16) == pytest.approx(2.0)

    def test_clamped_below_at_one(self):
        assert log_base_d(2, 1000) == 1.0
        assert log_base_d(1, 50) == 1.0

    def test_single_hop_graphs(self):
        assert log_base_d(100, 1) == 1.0

    def test_alpha_equals_n_reduces_to_cd21(self):
        # With alpha = n the parametrization reproduces log_D n exactly.
        import math

        n, d = 1000, 10
        assert log_base_d(n, d) == pytest.approx(math.log(n) / math.log(d))


class TestSummarize:
    def test_summary_fields(self, rng):
        g = graphs.random_udg(n=40, side=3.0, rng=rng)
        s = summarize(g)
        assert s.n == 40
        assert s.m == g.number_of_edges()
        assert s.D == diameter(g)
        assert s.alpha == graphs.exact_independence_number(g)
        assert s.family == "udg"

    def test_summary_accepts_precomputed_alpha(self):
        s = summarize(graphs.path(6), alpha=3)
        assert s.alpha == 3

    def test_row_renders(self):
        s = summarize(graphs.clique(5))
        row = s.row()
        assert "clique" in row and "D=1" in row
