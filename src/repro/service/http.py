"""The experiment service: hosted campaigns over a minimal HTTP front.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` —
stdlib only, one JSON request/response per connection, chunked
transfer for the aggregate stream. The event loop owns the sockets;
campaigns execute on a bounded thread pool (each campaign then fans
its jobs across the process pool), signalling the loop per landed job
via ``call_soon_threadsafe`` so stream subscribers wake without
polling the campaign.

Endpoints (all JSON)::

    GET  /health                     service + store counters
    POST /campaigns                  submit a CampaignSpec document
    GET  /campaigns                  list campaigns (id + progress)
    GET  /campaigns/{id}             full status snapshot
    GET  /campaigns/{id}/jobs        job coordinates -> report digests
    GET  /campaigns/{id}/stream      chunked NDJSON status updates
    POST /campaigns/{id}/cancel      stop between jobs (store keeps done work)
    GET  /reports/{digest}           stored report document, verbatim

Refusals are uniform: every client error is the
:class:`~repro.radio.errors.ProtocolError` shape mapped onto a 4xx —
``{"error": {"type": ..., "message": ...}}`` with the same
name-the-problem message discipline as the rest of the package.

Submitting the spec of a campaign that already ran is the designed
idiom, not an error: expansion dedupes against the report store, so
the resubmission is pure cache hits — that is also how a campaign
killed mid-flight (or a crashed server) resumes.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import json
import threading
from typing import Any

from ..corpus.store import CorpusStore
from ..radio.errors import ProtocolError
from .campaign import Campaign, CampaignSpec
from .store import ReportStore

__all__ = ["ExperimentService", "ServiceThread", "start_in_thread"]

#: Largest accepted request body (a tagged CampaignSpec with fault
#: schedules is ~KBs; anything near this bound is not a spec).
MAX_BODY_BYTES = 32 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

#: Campaign states that stop a status stream.
SETTLED = ("completed", "cancelled", "failed")

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _Refusal(Exception):
    """A request problem with its HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _CampaignRecord:
    """One submitted campaign: the engine object plus loop-side state."""

    def __init__(self, ident: str, campaign: Campaign) -> None:
        self.id = ident
        self.campaign = campaign
        self.updated = asyncio.Event()
        self.error: str | None = None

    def status(self) -> dict[str, Any]:
        status = self.campaign.status()
        status["id"] = self.id
        if self.error is not None:
            status["error"] = self.error
        return status


class ExperimentService:
    """The hosted campaign server over one report store.

    Parameters
    ----------
    reports:
        The :class:`~repro.service.store.ReportStore` (or its
        directory) every campaign dedupes against.
    corpus:
        The :class:`~repro.corpus.store.CorpusStore` (or directory)
        that resolves submitted graph digests; ``None`` restricts
        submissions to explicit entry-directory paths.
    host, port:
        Bind address; port 0 picks a free port (read :attr:`port`
        after :meth:`start`).
    workers:
        Process-pool width each campaign fans out to (1 = in-process
        serial, the coverage-friendly default).
    campaign_slots:
        Campaigns executing concurrently; further submissions queue.
    """

    def __init__(
        self,
        reports: "ReportStore | str",
        corpus: "CorpusStore | str | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        campaign_slots: int = 2,
    ) -> None:
        self.reports = (
            reports if isinstance(reports, ReportStore)
            else ReportStore(reports)
        )
        self.corpus = (
            corpus if corpus is None or isinstance(corpus, CorpusStore)
            else CorpusStore(corpus)
        )
        self.host = host
        self.port = port
        self.workers = workers
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=campaign_slots,
            thread_name_prefix="repro-campaign",
        )
        self._records: dict[str, _CampaignRecord] = {}
        self._by_spec: dict[str, _CampaignRecord] = {}
        self._seq = 0
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "ExperimentService":
        """Bind and listen; resolves :attr:`port` when it was 0."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (starting first if needed)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening, cancel running campaigns, drain the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for record in self._records.values():
            record.campaign.cancel()
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._executor.shutdown(wait=True)
        )

    # -- request plumbing ---------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                await self._route(method, path, body, writer)
            except _Refusal as exc:
                await self._respond_error(writer, exc.status, str(exc))
            except ProtocolError as exc:
                await self._respond_error(writer, 400, str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                await self._respond_error(
                    writer, 500, f"{type(exc).__name__}: {exc}"
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _Refusal(413, "request headers exceed the size bound")
        if len(head) > MAX_HEADER_BYTES:
            raise _Refusal(413, "request headers exceed the size bound")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _Refusal(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            raise _Refusal(
                400,
                f"malformed Content-Length header: {raw_length!r}",
            )
        if length > MAX_BODY_BYTES:
            raise _Refusal(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte bound",
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    async def _respond_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._respond(
            writer,
            status,
            {"error": {"type": "ProtocolError", "message": message}},
        )

    # -- routing ------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = [p for p in path.split("/") if p]
        if parts == ["health"] and method == "GET":
            await self._respond(writer, 200, self._health())
        elif parts == ["campaigns"] and method == "POST":
            status, payload = self._submit(body)
            await self._respond(writer, status, payload)
        elif parts == ["campaigns"] and method == "GET":
            await self._respond(
                writer,
                200,
                {
                    "campaigns": [
                        record.status()
                        for record in self._records.values()
                    ]
                },
            )
        elif len(parts) == 2 and parts[0] == "campaigns" \
                and method == "GET":
            await self._respond(writer, 200, self._record(parts[1]).status())
        elif len(parts) == 3 and parts[0] == "campaigns" \
                and parts[2] == "jobs" and method == "GET":
            record = self._record(parts[1])
            await self._respond(
                writer, 200, {"jobs": record.campaign.job_index()}
            )
        elif len(parts) == 3 and parts[0] == "campaigns" \
                and parts[2] == "stream" and method == "GET":
            await self._stream(self._record(parts[1]), writer)
        elif len(parts) == 3 and parts[0] == "campaigns" \
                and parts[2] == "cancel" and method == "POST":
            record = self._record(parts[1])
            record.campaign.cancel()
            await self._respond(writer, 200, record.status())
        elif len(parts) == 2 and parts[0] == "reports" \
                and method == "GET":
            document = self.reports.get_document(parts[1])
            if document is None:
                raise _Refusal(
                    404, f"no stored report with digest {parts[1]!r}"
                )
            await self._respond(writer, 200, document)
        elif parts and parts[0] in ("health", "campaigns", "reports"):
            raise _Refusal(
                405, f"{method} is not supported on /{'/'.join(parts)}"
            )
        else:
            raise _Refusal(404, f"no such endpoint: {path!r}")

    # -- endpoint bodies ----------------------------------------------

    def _health(self) -> dict[str, Any]:
        return {
            "ok": True,
            "store": self.reports.stats(),
            "campaigns": len(self._records),
            "workers": self.workers,
        }

    def _record(self, ident: str) -> _CampaignRecord:
        record = self._records.get(ident)
        if record is None:
            raise _Refusal(404, f"no campaign with id {ident!r}")
        return record

    def _submit(self, body: bytes) -> tuple[int, dict[str, Any]]:
        if not body:
            raise _Refusal(
                400, "campaign submission needs a JSON body "
                "(a CampaignSpec document)"
            )
        spec = CampaignSpec.from_json(body)
        spec_digest = hashlib.sha256(
            spec.to_json().encode()
        ).hexdigest()[:16]
        existing = self._by_spec.get(spec_digest)
        if existing is not None and existing.campaign.state in (
            "pending", "running",
        ):
            # The identical spec is already in flight: attach to it
            # rather than racing a duplicate execution of every job.
            payload = existing.status()
            payload["deduplicated"] = True
            return 200, payload
        campaign = Campaign(
            spec,
            self.reports,
            corpus=self.corpus,
            workers=self.workers,
            keep_reports=False,
        )
        self._seq += 1
        record = _CampaignRecord(f"c{self._seq:06x}", campaign)
        self._records[record.id] = record
        self._by_spec[spec_digest] = record
        assert self._loop is not None
        loop = self._loop

        def notify() -> None:
            loop.call_soon_threadsafe(record.updated.set)

        def drive() -> None:
            try:
                campaign.run(on_update=notify)
            except ProtocolError as exc:
                record.error = str(exc)
            except Exception as exc:  # pragma: no cover - defensive
                record.error = f"{type(exc).__name__}: {exc}"
            finally:
                notify()

        self._executor.submit(drive)
        return 202, record.status()

    async def _stream(
        self, record: _CampaignRecord, writer: asyncio.StreamWriter
    ) -> None:
        """Chunked NDJSON: one status line per change, until settled."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        last: tuple | None = None
        while True:
            status = record.status()
            fingerprint = (
                status["state"],
                status["completed"],
                status["failed"],
                status.get("error"),
            )
            if fingerprint != last:
                last = fingerprint
                line = (json.dumps(status) + "\n").encode()
                writer.write(
                    f"{len(line):x}\r\n".encode() + line + b"\r\n"
                )
                await writer.drain()
            if status["state"] in SETTLED or status.get("error"):
                break
            record.updated.clear()
            try:
                await asyncio.wait_for(record.updated.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                pass
        writer.write(b"0\r\n\r\n")
        await writer.drain()


class ServiceThread:
    """A running service on a daemon thread (tests, benchmarks, CLI).

    ``with start_in_thread(...) as handle:`` yields a handle whose
    :attr:`port` is live; :meth:`stop` tears the loop down and joins.
    """

    def __init__(self, service: ExperimentService) -> None:
        self.service = service
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )

    @property
    def port(self) -> int:
        return self.service.port

    def _main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - defensive
            self._failure = exc
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()

    def start(self) -> "ServiceThread":
        """Start the thread and block until the socket is bound."""
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise ProtocolError(
                f"service failed to start: {self._failure}"
            )
        if not self._ready.is_set():
            raise ProtocolError("service did not start within 30s")
        return self

    def stop(self) -> None:
        """Signal the loop to shut down and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def start_in_thread(
    reports: "ReportStore | str",
    corpus: "CorpusStore | str | None" = None,
    **kwargs: Any,
) -> ServiceThread:
    """Boot an :class:`ExperimentService` on a daemon thread and wait
    until its port is live. Keyword arguments pass through to the
    service constructor."""
    service = ExperimentService(reports, corpus, **kwargs)
    return ServiceThread(service).start()
