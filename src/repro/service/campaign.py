"""Campaign engine: a declarative trial grid, deduped and fanned out.

A :class:`CampaignSpec` names a Monte-Carlo campaign declaratively —
one protocol, a set of corpus entries, a seed range, and a grid of
execution policies (each optionally carrying a
:class:`~repro.faults.FaultSchedule`, which is how fault grids ride).
:class:`Campaign` expands the spec into one job per
``graph x policy x trial`` cell, **dedupes the grid against the
report store** (a previously-served job is a cache hit, never
re-executed — which is also what makes a killed campaign resumable),
and fans the remainder across the PR 8 shared-memory worker pool:
each distinct graph's CSR slabs are published to
``multiprocessing.shared_memory`` once, worker payloads carry only
segment handles, and in-flight jobs are bounded so a 10^6-trial
submission does not materialize 10^6 futures.

Seeding is the harness contract: trial ``t`` runs on
``np.random.SeedSequence(spec.seed).spawn(n_trials)[t]`` — exactly how
:func:`~repro.analysis.experiments.run_report_trials` seeds its
trials — so a store-backed campaign over one cell is bit-identical,
report for report, to the serial harness baseline (pinned in
``tests/test_service.py`` and gated in ``BENCH_PR10.json``).

Aggregates stream: every landing report folds into the running
:class:`~repro.analysis.experiments.TrialStats` via ``merge`` (no
re-walk of the report list per update); once a campaign settles, the
summary is recomputed canonically over the jobs in expansion order, so
final aggregates are independent of worker scheduling and identical
across resumed and uninterrupted runs.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import pathlib
import pickle
import threading
from typing import Any, Callable, Iterable

import numpy as np

from ..analysis.experiments import (
    TrialStats,
    _trial_fault_default,
    _trial_memory_budget,
    _warn_unpicklable,
)
from ..api.registry import get_protocol
from ..api.wire import TAG, decode_value, encode_value
from ..corpus.shm import SharedGraph, SharedGraphHandle, attach
from ..corpus.store import CorpusStore, load_graph
from ..engine.policy import ExecutionPolicy, parse_mem_budget
from ..engine.streaming import memory_budget
from ..faults import default_faults
from ..radio.errors import ProtocolError
from .store import (
    JobKey,
    ReportStore,
    config_digest,
    faults_digest,
    policy_digest,
)

__all__ = ["Campaign", "CampaignJob", "CampaignSpec", "run_campaign"]

#: How many stragglers' error strings a campaign keeps verbatim.
MAX_RECORDED_ERRORS = 16

#: Probe the stop callback every this many store lookups during the
#: dedupe sweep (a 10^6-job probe phase must stay cancellable).
STOP_PROBE_EVERY = 64


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: ``protocol x corpus x seeds x policies``.

    Attributes
    ----------
    protocol:
        Registered protocol name (must accept corpus graphs — the
        campaign engine is store-backed end to end).
    corpus:
        Corpus entries to run on: content digests (or unambiguous
        prefixes) resolved against the service's
        :class:`~repro.corpus.store.CorpusStore`, or explicit entry
        directory paths.
    n_trials, seed:
        The seed range: trials ``0..n_trials-1`` on the
        ``SeedSequence(seed)`` spawn children, per grid cell.
    config:
        The protocol's config object (``None`` = defaults), shared by
        every job.
    policies:
        The policy/fault grid: one
        :class:`~repro.engine.policy.ExecutionPolicy` per grid column,
        each optionally carrying its own fault schedule. Defaults to
        the all-auto policy.
    """

    protocol: str
    corpus: tuple[str, ...]
    n_trials: int
    seed: int = 0
    config: Any = None
    policies: tuple[ExecutionPolicy, ...] = (ExecutionPolicy(),)

    def __post_init__(self) -> None:
        # Normalize sequence fields (JSON submissions arrive as lists).
        object.__setattr__(self, "corpus", tuple(self.corpus))
        object.__setattr__(self, "policies", tuple(self.policies))
        spec = get_protocol(self.protocol)  # refuses unknowns by name
        if not (spec.accepts == "network" and spec.corpus_ok):
            raise ProtocolError(
                f"protocol {self.protocol!r} does not take array-native "
                f"corpus graphs, so it cannot run as a campaign "
                f"(campaigns are store-backed end to end)"
            )
        if not self.corpus or not all(
            isinstance(c, str) and c for c in self.corpus
        ):
            raise ProtocolError(
                "CampaignSpec.corpus must name at least one corpus "
                "entry (a content digest or an entry directory path)"
            )
        if isinstance(self.n_trials, bool) or not isinstance(
            self.n_trials, int
        ) or self.n_trials < 1:
            raise ProtocolError(
                f"CampaignSpec.n_trials must be an integer >= 1, "
                f"got {self.n_trials!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ProtocolError(
                f"CampaignSpec.seed must be an integer, got {self.seed!r}"
            )
        if not self.policies or not all(
            isinstance(p, ExecutionPolicy) for p in self.policies
        ):
            raise ProtocolError(
                "CampaignSpec.policies must be a non-empty sequence of "
                "ExecutionPolicy values"
            )
        if self.config is not None and spec.config_cls is not None:
            if not isinstance(self.config, spec.config_cls):
                raise ProtocolError(
                    f"protocol {self.protocol!r} takes config of type "
                    f"{spec.config_cls.__name__}, got "
                    f"{type(self.config).__name__}"
                )

    @property
    def total_jobs(self) -> int:
        """Grid size: ``len(corpus) x len(policies) x n_trials``."""
        return len(self.corpus) * len(self.policies) * self.n_trials

    def to_json(self, indent: int | None = None) -> str:
        """Tagged-JSON form (full fidelity: configs, fault schedules)."""
        return json.dumps(encode_value(self), indent=indent)

    @classmethod
    def from_json(cls, text: str | bytes) -> "CampaignSpec":
        """Parse a submission document: tagged or plain JSON.

        The tagged form is whatever :meth:`to_json` produced. The
        *plain* form is the curl-friendly subset — a JSON object with
        ``protocol``, ``corpus``, ``n_trials``, and optional ``seed``,
        ``config`` (a field dict of the protocol's config class) and
        ``policies`` (a list of
        :class:`~repro.engine.policy.ExecutionPolicy` field dicts;
        ``mem_budget`` accepts ``"64M"``-style strings). Anything the
        plain form cannot express (fault schedules, array-valued
        configs) travels in the tagged form.
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                f"campaign submission is not valid JSON: {exc}"
            ) from None
        if not isinstance(document, dict):
            raise ProtocolError(
                "campaign submission must be a JSON object"
            )
        if document.get(TAG) is not None:
            decoded = decode_value(document)
            if not isinstance(decoded, CampaignSpec):
                raise ProtocolError(
                    f"tagged campaign submission decoded to "
                    f"{type(decoded).__name__!r}, expected CampaignSpec"
                )
            return decoded
        return cls._from_plain(document)

    @classmethod
    def _from_plain(cls, document: dict[str, Any]) -> "CampaignSpec":
        allowed = {
            "protocol", "corpus", "n_trials", "seed", "config", "policies",
        }
        unknown = sorted(set(document) - allowed)
        if unknown:
            raise ProtocolError(
                f"campaign submission has unknown field(s) {unknown} "
                f"(accepted: {sorted(allowed)})"
            )
        missing = sorted(
            {"protocol", "corpus", "n_trials"} - set(document)
        )
        if missing:
            raise ProtocolError(
                f"campaign submission is missing required field(s) "
                f"{missing}"
            )
        protocol = document["protocol"]
        if not isinstance(protocol, str):
            raise ProtocolError(
                f"campaign protocol must be a string, got {protocol!r}"
            )
        config = document.get("config")
        if config is not None:
            spec = get_protocol(protocol)
            if spec.config_cls is None:
                raise ProtocolError(
                    f"protocol {protocol!r} takes no config"
                )
            if not isinstance(config, dict):
                raise ProtocolError(
                    f"plain-form config must be a field dict of "
                    f"{spec.config_cls.__name__}, got {config!r}"
                )
            try:
                config = spec.config_cls(**config)
            except TypeError as exc:
                raise ProtocolError(
                    f"bad config for {protocol!r}: {exc}"
                ) from None
        policies_doc = document.get("policies")
        policies: tuple[ExecutionPolicy, ...]
        if policies_doc is None:
            policies = (ExecutionPolicy(),)
        else:
            if not isinstance(policies_doc, list):
                raise ProtocolError(
                    "plain-form policies must be a list of "
                    "ExecutionPolicy field dicts"
                )
            policies = tuple(
                _policy_from_plain(entry) for entry in policies_doc
            )
        corpus = document["corpus"]
        if isinstance(corpus, str):
            corpus = [corpus]
        return cls(
            protocol=protocol,
            corpus=tuple(corpus),
            n_trials=document["n_trials"],
            seed=document.get("seed", 0),
            config=config,
            policies=policies,
        )


def _policy_from_plain(entry: Any) -> ExecutionPolicy:
    """One plain-form policy dict -> ExecutionPolicy (uniform refusals)."""
    if not isinstance(entry, dict):
        raise ProtocolError(
            f"plain-form policy must be a field dict, got {entry!r}"
        )
    if "faults" in entry:
        raise ProtocolError(
            "plain-form policies cannot carry fault schedules; submit "
            "the tagged form (CampaignSpec.to_json) for fault grids"
        )
    kwargs = dict(entry)
    budget = kwargs.get("mem_budget")
    if isinstance(budget, str):
        kwargs["mem_budget"] = parse_mem_budget(budget)
    try:
        return ExecutionPolicy(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"bad policy field dict: {exc}") from None


@dataclasses.dataclass(frozen=True)
class CampaignJob:
    """One cell of the expanded grid, with its store key."""

    index: int
    graph: str
    policy_index: int
    trial: int
    key: JobKey


def _resolve_corpus_entries(
    entries: Iterable[str], corpus: "CorpusStore | str | os.PathLike | None"
) -> list[Any]:
    """Resolve spec entries to loaded graphs (store digests or paths)."""
    store: CorpusStore | None
    if corpus is None:
        store = None
    elif isinstance(corpus, CorpusStore):
        store = corpus
    else:
        store = CorpusStore(corpus)
    graphs = []
    for entry in entries:
        path = pathlib.Path(entry)
        if (path / "meta.json").is_file():
            graphs.append(load_graph(path))
            continue
        if store is None:
            raise ProtocolError(
                f"campaign entry {entry!r} is not an entry directory "
                f"and no corpus store is configured to resolve digests"
            )
        try:
            graphs.append(store.load(entry))
        except (KeyError, ValueError) as exc:
            raise ProtocolError(
                f"cannot resolve corpus entry {entry!r}: {exc}"
            ) from None
    return graphs


def _execute_job(
    payload: tuple[str, Any, np.random.SeedSequence, Any, Any, int | None, Any]
) -> Any:
    """Pool worker: one seeded front-door run (module-level for pickling).

    Mirrors the harness worker: the parent's process-wide streaming
    budget and default fault schedule travel in the payload, and
    shared-memory handles attach zero-copy (cached per process).
    """
    protocol, target, child, config, policy, budget, fault_default = payload
    from ..api import run

    if isinstance(target, SharedGraphHandle):
        target = attach(target)
    with _trial_memory_budget(budget), _trial_fault_default(fault_default):
        return run(
            protocol,
            target,
            rng=np.random.default_rng(child),
            config=config,
            policy=policy,
        )


class Campaign:
    """One expanded campaign execution over a :class:`ReportStore`.

    Thread-safe by design: :meth:`run` executes on whatever thread the
    caller provides (the HTTP service uses an executor thread), while
    :meth:`status` / :meth:`streaming_summary` read consistently from
    any other thread — the service's status endpoints poll exactly
    that. ``should_stop`` / :meth:`cancel` stop the campaign between
    jobs; completed work is already persisted, so a cancelled (or
    killed) campaign resumes from the store on resubmission.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        reports: ReportStore,
        corpus: "CorpusStore | str | os.PathLike | None" = None,
        workers: int | None = None,
        keep_reports: bool = True,
    ) -> None:
        if not isinstance(reports, ReportStore):
            raise ProtocolError(
                f"Campaign needs a ReportStore, got "
                f"{type(reports).__name__}"
            )
        workers = 1 if workers is None else workers
        if isinstance(workers, bool) or not isinstance(workers, int) \
                or workers < 1:
            raise ProtocolError(
                f"workers must be an integer >= 1, got {workers!r}"
            )
        self.spec = spec
        self.store = reports
        self.workers = workers
        self.keep_reports = keep_reports
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self.state = "pending"
        self.errors: list[str] = []

        self._graphs = _resolve_corpus_entries(spec.corpus, corpus)
        self._children = np.random.SeedSequence(spec.seed).spawn(
            spec.n_trials
        )
        self.jobs = self._expand()
        total = len(self.jobs)
        self.reports: list[Any] = [None] * total if keep_reports else []
        self._done = np.zeros(total, dtype=bool)
        self._cached = np.zeros(total, dtype=bool)
        self._steps = np.zeros(total, dtype=np.int64)
        self._walls = np.zeros(total, dtype=np.float64)
        self._peaks: list[int | None] = [None] * total
        self.failed = 0
        self._stream: dict[str, TrialStats] = {}
        self._stream_peaks_ok = True

    # -- expansion ----------------------------------------------------

    def _expand(self) -> list[CampaignJob]:
        """The canonical job order: graph-major, then policy, then trial.

        Key digests resolve each policy against each graph's size (the
        resolved-policy digest is per ``(graph, policy)`` — streamed
        slab heights depend on ``n``); the spec's shared config digests
        once and rides every key, so campaigns differing only in
        config occupy distinct store cells.
        """
        jobs = []
        index = 0
        cfg_dig = config_digest(self.spec.config)
        for graph in self._graphs:
            graph_dig = graph.graph.get("digest")
            if not graph_dig:
                raise ProtocolError(
                    "campaign graphs must carry a corpus content "
                    "digest (save them through CorpusStore.add first)"
                )
            n = graph.number_of_nodes()
            for pi, policy in enumerate(self.spec.policies):
                pol_dig = policy_digest(policy, n)
                flt_dig = faults_digest(policy)
                for trial in range(self.spec.n_trials):
                    jobs.append(
                        CampaignJob(
                            index=index,
                            graph=graph_dig,
                            policy_index=pi,
                            trial=trial,
                            key=JobKey(
                                protocol=self.spec.protocol,
                                graph=graph_dig,
                                seed=self.spec.seed,
                                trial=trial,
                                policy=pol_dig,
                                faults=flt_dig,
                                config=cfg_dig,
                            ),
                        )
                    )
                    index += 1
        return jobs

    # -- bookkeeping --------------------------------------------------

    def _record(self, job: CampaignJob, report: Any, cached: bool) -> None:
        with self._lock:
            self._done[job.index] = True
            self._cached[job.index] = cached
            self._steps[job.index] = report.steps
            self._walls[job.index] = report.wall_time_s
            self._peaks[job.index] = report.peak_mem_bytes
            if self.keep_reports:
                self.reports[job.index] = report
            update = {
                "steps": TrialStats.from_values([float(report.steps)]),
                "wall_time_s": TrialStats.from_values(
                    [report.wall_time_s]
                ),
            }
            if report.peak_mem_bytes is None:
                self._stream_peaks_ok = False
                self._stream.pop("peak_mem_bytes", None)
            elif self._stream_peaks_ok:
                update["peak_mem_bytes"] = TrialStats.from_values(
                    [float(report.peak_mem_bytes)]
                )
            for name, stats in update.items():
                prior = self._stream.get(name)
                self._stream[name] = (
                    stats if prior is None else prior.merge(stats)
                )

    def _record_failure(self, job: CampaignJob, exc: BaseException) -> None:
        with self._lock:
            self.failed += 1
            if len(self.errors) < MAX_RECORDED_ERRORS:
                self.errors.append(
                    f"job {job.index} (graph {job.graph[:12]}, trial "
                    f"{job.trial}): {type(exc).__name__}: {exc}"
                )

    def cancel(self) -> None:
        """Ask the running campaign to stop between jobs."""
        self._cancel.set()

    def _stopped(self, should_stop: Callable[[], bool] | None) -> bool:
        return self._cancel.is_set() or (
            should_stop is not None and bool(should_stop())
        )

    # -- execution ----------------------------------------------------

    def run(
        self,
        should_stop: Callable[[], bool] | None = None,
        on_update: Callable[[], None] | None = None,
    ) -> "Campaign":
        """Dedupe against the store, execute the remainder, settle.

        Returns ``self`` (poll :meth:`status` / :meth:`final_summary`
        afterwards). A campaign runs once: re-running a settled one
        refuses — submit the spec again instead (its jobs are all
        store hits by then, which is the point).
        """
        with self._lock:
            if self.state != "pending":
                raise ProtocolError(
                    f"campaign already ran (state {self.state!r}); "
                    f"submit the spec again to serve it from the store"
                )
            self.state = "running"
        notify = on_update if on_update is not None else (lambda: None)
        stopped = False
        try:
            pending = self._probe_store(should_stop, notify)
            stopped = self._stopped(should_stop)
            if pending and not stopped:
                self._execute(pending, should_stop, notify)
                stopped = self._stopped(should_stop)
        except BaseException:
            with self._lock:
                self.state = "failed"
            raise
        with self._lock:
            if self.failed:
                self.state = "failed"
            elif stopped:
                self.state = "cancelled"
            else:
                self.state = "completed"
        notify()
        return self

    def _probe_store(
        self,
        should_stop: Callable[[], bool] | None,
        notify: Callable[[], None],
    ) -> list[CampaignJob]:
        """The dedupe sweep: serve every stored job as a cache hit."""
        pending = []
        for i, job in enumerate(self.jobs):
            if i % STOP_PROBE_EVERY == 0 and self._stopped(should_stop):
                break
            report = self.store.get(job.key)
            if report is None:
                pending.append(job)
            else:
                self._record(job, report, cached=True)
                notify()
        return pending

    def _payload(self, job: CampaignJob, target: Any) -> tuple:
        return (
            self.spec.protocol,
            target,
            self._children[job.trial],
            self.spec.config,
            self.spec.policies[job.policy_index],
            memory_budget(),
            default_faults(),
        )

    def _execute_serial(
        self,
        pending: list[CampaignJob],
        should_stop: Callable[[], bool] | None,
        notify: Callable[[], None],
    ) -> None:
        by_digest = {
            g.graph.get("digest"): g for g in self._graphs
        }
        for job in pending:
            if self._stopped(should_stop):
                return
            try:
                report = _execute_job(
                    self._payload(job, by_digest[job.graph])
                )
            except ProtocolError:
                # A refusal is a spec problem, not a flaky trial:
                # surface it to the submitter instead of burying it in
                # per-job failure counters.
                raise
            except Exception as exc:
                self._record_failure(job, exc)
            else:
                self.store.put(job.key, report)
                self._record(job, report, cached=False)
            notify()

    def _execute(
        self,
        pending: list[CampaignJob],
        should_stop: Callable[[], bool] | None,
        notify: Callable[[], None],
    ) -> None:
        if self.workers == 1 or len(pending) == 1:
            self._execute_serial(pending, should_stop, notify)
            return
        try:
            pickle.dumps(
                (self.spec.protocol, self.spec.config, self.spec.policies)
            )
        except Exception as exc:
            _warn_unpicklable(
                "Campaign.run",
                exc,
                "the (protocol, config, policies) payload is not "
                "picklable; running the campaign serially",
            )
            self._execute_serial(pending, should_stop, notify)
            return

        shared: dict[str, SharedGraph] = {}
        try:
            needed = {job.graph for job in pending}
            for graph in self._graphs:
                digest = graph.graph.get("digest")
                if digest in needed and digest not in shared:
                    shared[digest] = SharedGraph.publish(graph)
            self._drain_pool(pending, shared, should_stop, notify)
        except (
            concurrent.futures.process.BrokenProcessPool,
            PermissionError,
        ):
            # Environments that cannot spawn workers degrade to the
            # serial path — same seeding, same store writes.
            remaining = [
                job for job in pending if not self._done[job.index]
            ]
            self._execute_serial(remaining, should_stop, notify)
        finally:
            for seg in shared.values():
                seg.close()
                seg.unlink()

    def _drain_pool(
        self,
        pending: list[CampaignJob],
        shared: dict[str, SharedGraph],
        should_stop: Callable[[], bool] | None,
        notify: Callable[[], None],
    ) -> None:
        """Bounded-in-flight fan-out: at most ``4 x workers`` submitted."""
        bound = max(4 * self.workers, 8)
        queue = iter(pending)
        futures: dict[concurrent.futures.Future, CampaignJob] = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            def submit_up_to_bound() -> None:
                while len(futures) < bound:
                    job = next(queue, None)
                    if job is None:
                        return
                    target = shared[job.graph].handle
                    futures[pool.submit(
                        _execute_job, self._payload(job, target)
                    )] = job

            submit_up_to_bound()
            while futures:
                done, _ = concurrent.futures.wait(
                    futures,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    job = futures.pop(future)
                    try:
                        report = future.result()
                    except concurrent.futures.process.BrokenProcessPool:
                        raise
                    except concurrent.futures.CancelledError:
                        continue
                    except Exception as exc:
                        self._record_failure(job, exc)
                    else:
                        self.store.put(job.key, report)
                        self._record(job, report, cached=False)
                    notify()
                if self._stopped(should_stop):
                    for future in futures:
                        future.cancel()
                    # Record whatever still lands while the pool
                    # drains — the work is done; wasting it would
                    # just grow the resume tail.
                    concurrent.futures.wait(futures)
                    for future, job in futures.items():
                        if future.cancelled():
                            continue
                        try:
                            report = future.result()
                        except concurrent.futures.process.BrokenProcessPool:
                            raise
                        except Exception as exc:
                            self._record_failure(job, exc)
                        else:
                            self.store.put(job.key, report)
                            self._record(job, report, cached=False)
                        notify()
                    return
                submit_up_to_bound()

    # -- reading ------------------------------------------------------

    def streaming_summary(self) -> dict[str, TrialStats]:
        """The live merged aggregates (landing order; see module doc)."""
        with self._lock:
            return dict(self._stream)

    def final_summary(self) -> dict[str, TrialStats]:
        """Canonical aggregates over completed jobs in expansion order.

        Deterministic given the store contents — independent of worker
        scheduling and of how many lives the campaign took, which is
        the resume bit-identity contract. Matches
        :func:`~repro.analysis.experiments.summarize_reports` over the
        same reports exactly (same values, same order, same reduction).
        """
        with self._lock:
            done = np.flatnonzero(self._done)
            if done.size == 0:
                raise ProtocolError(
                    "campaign has no completed jobs to summarize"
                )
            summary = {
                "steps": TrialStats.from_values(
                    self._steps[done].astype(float)
                ),
                "wall_time_s": TrialStats.from_values(self._walls[done]),
            }
            peaks = [self._peaks[i] for i in done]
            if all(p is not None for p in peaks):
                summary["peak_mem_bytes"] = TrialStats.from_values(
                    [float(p) for p in peaks]
                )
            return summary

    def status(self) -> dict[str, Any]:
        """A consistent snapshot of campaign progress (JSON-shaped)."""
        with self._lock:
            completed = int(self._done.sum())
            cached = int(self._cached.sum())
            state = self.state
            stream = dict(self._stream)
            failed = self.failed
            errors = list(self.errors)
        total = len(self.jobs)
        settled = state in ("completed", "cancelled", "failed")
        summary: dict[str, TrialStats] | None
        if settled and completed:
            summary = self.final_summary()
        elif completed:
            summary = stream
        else:
            summary = None
        return {
            "state": state,
            "protocol": self.spec.protocol,
            "total": total,
            "completed": completed,
            "cached": cached,
            "executed": completed - cached,
            "failed": failed,
            "pending": total - completed,
            "graphs": len(self._graphs),
            "policies": len(self.spec.policies),
            "n_trials": self.spec.n_trials,
            "errors": errors,
            "summary": (
                {
                    name: dataclasses.asdict(stats)
                    for name, stats in summary.items()
                }
                if summary is not None
                else None
            ),
        }

    def job_index(self) -> list[dict[str, Any]]:
        """Every job's coordinates + store digest (the fetch map)."""
        with self._lock:
            return [
                {
                    "index": job.index,
                    "graph": job.graph,
                    "policy": job.policy_index,
                    "trial": job.trial,
                    "digest": job.key.digest,
                    "completed": bool(self._done[job.index]),
                    "cached": bool(self._cached[job.index]),
                }
                for job in self.jobs
            ]


def run_campaign(
    spec: CampaignSpec,
    reports: ReportStore,
    corpus: "CorpusStore | str | os.PathLike | None" = None,
    workers: int | None = None,
    should_stop: Callable[[], bool] | None = None,
    on_update: Callable[[], None] | None = None,
    keep_reports: bool = True,
) -> Campaign:
    """Expand, dedupe, execute, settle — the one-call library form."""
    campaign = Campaign(
        spec,
        reports,
        corpus=corpus,
        workers=workers,
        keep_reports=keep_reports,
    )
    return campaign.run(should_stop=should_stop, on_update=on_update)
