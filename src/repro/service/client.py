"""Thin HTTP client for the experiment service (stdlib ``http.client``).

One connection per request (the server closes after responding), JSON
in and out, and the server's uniform refusal shape re-raised locally
as :class:`ServiceError` — a :class:`~repro.radio.errors.ProtocolError`
subclass, so callers catch service refusals exactly like local ones.
Used by ``repro campaign ...``, the tests, and the benchmarks; it is
also the reference for what a curl session looks like (README
quickstart).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from ..api.report import RunReport
from ..api.wire import decode_value
from ..radio.errors import ProtocolError
from .campaign import CampaignSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ProtocolError):
    """A refusal from the service, with the HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to one :class:`~repro.service.http.ExperimentService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8471,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------

    def _request(
        self, method: str, path: str, body: str | bytes | None = None
    ) -> dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = json.loads(response.read())
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    payload.get("error", {}).get(
                        "message", f"HTTP {response.status}"
                    ),
                )
            return payload
        finally:
            connection.close()

    # -- endpoints ----------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness + store counters (``GET /health``)."""
        return self._request("GET", "/health")

    def submit(self, spec: "CampaignSpec | str | bytes") -> dict[str, Any]:
        """Submit a campaign; returns its status (with ``id``).

        Accepts a :class:`~repro.service.campaign.CampaignSpec` or an
        already-serialized submission document. Resubmitting a spec
        the store has served before is the resume idiom — the status
        will show every job as ``cached``.
        """
        body = spec.to_json() if isinstance(spec, CampaignSpec) else spec
        return self._request("POST", "/campaigns", body)

    def campaigns(self) -> list[dict[str, Any]]:
        """Status snapshots of every campaign the service knows."""
        return self._request("GET", "/campaigns")["campaigns"]

    def status(self, ident: str) -> dict[str, Any]:
        """One campaign's status snapshot (``GET /campaigns/{id}``)."""
        return self._request("GET", f"/campaigns/{ident}")

    def jobs(self, ident: str) -> list[dict[str, Any]]:
        """The campaign's job coordinates -> report-digest map."""
        return self._request("GET", f"/campaigns/{ident}/jobs")["jobs"]

    def cancel(self, ident: str) -> dict[str, Any]:
        """Request cancellation; landed jobs stay in the store."""
        return self._request("POST", f"/campaigns/{ident}/cancel")

    def fetch_document(self, digest: str) -> dict[str, Any]:
        """The raw stored report document of one job digest."""
        return self._request("GET", f"/reports/{digest}")

    def fetch_report(self, digest: str) -> RunReport:
        """The stored :class:`~repro.api.report.RunReport` of a digest,
        decoded from the wire form (outcome-equal to the original)."""
        report = decode_value(self.fetch_document(digest)["report"])
        if not isinstance(report, RunReport):
            raise ServiceError(
                500,
                f"report document {digest!r} decoded to "
                f"{type(report).__name__!r}, expected RunReport",
            )
        return report

    # -- composites ---------------------------------------------------

    def stream(self, ident: str) -> Iterator[dict[str, Any]]:
        """Yield status snapshots from the chunked stream endpoint
        until the campaign settles (``http.client`` de-chunks)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/campaigns/{ident}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                payload = json.loads(response.read())
                raise ServiceError(
                    response.status,
                    payload.get("error", {}).get(
                        "message", f"HTTP {response.status}"
                    ),
                )
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(
        self, ident: str, timeout: float = 600.0, poll: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the campaign settles; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(ident)
            if status["state"] in ("completed", "cancelled", "failed") \
                    or status.get("error"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408,
                    f"campaign {ident!r} did not settle within "
                    f"{timeout}s ({status['completed']}/"
                    f"{status['total']} jobs done)",
                )
            time.sleep(poll)
