"""The experiment service: hosted Monte-Carlo campaigns over ``repro.api.run``.

Four layers, bottom up:

- :mod:`repro.service.store` — the content-addressed
  :class:`ReportStore`, keyed by :class:`JobKey` (protocol, graph
  digest, seed, trial, resolved-policy digest, faults digest, config
  digest). Run once, serve forever.
- :mod:`repro.service.campaign` — :class:`CampaignSpec` (the
  declarative grid) and :class:`Campaign` (expand, dedupe against the
  store, fan out across the shared-memory worker pool, stream
  aggregates).
- :mod:`repro.service.http` — :class:`ExperimentService`, the
  stdlib-asyncio HTTP front end (``repro serve``).
- :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  HTTP client the CLI, tests, and benchmarks share.

The one-sentence contract: a seeded job is a pure function of its
:class:`JobKey`, so the service never runs the same job twice — and a
campaign killed at any point resumes by resubmitting its spec.
"""

from .campaign import Campaign, CampaignJob, CampaignSpec, run_campaign
from .client import ServiceClient, ServiceError
from .http import ExperimentService, ServiceThread, start_in_thread
from .store import (
    JobKey,
    ReportStore,
    config_digest,
    faults_digest,
    policy_digest,
)

__all__ = [
    "Campaign",
    "CampaignJob",
    "CampaignSpec",
    "ExperimentService",
    "JobKey",
    "ReportStore",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "config_digest",
    "faults_digest",
    "policy_digest",
    "run_campaign",
    "start_in_thread",
]
