"""Content-addressed RunReport store: run once, serve forever.

The service's core bet is that a Monte-Carlo campaign is a *pure
function* of its coordinates: a seeded protocol run is bit-identical
given ``(protocol, graph, seed, resolved policy, faults, config)`` —
the equivalence suites pin exactly that. So the store keys every
:class:`~repro.api.report.RunReport` by the :class:`JobKey` of those
six coordinates (graph by corpus content digest, seed by the
``(base seed, trial index)`` pair that determines its
``SeedSequence`` child, policy, faults, and protocol config by
content digests) and a
repeated request is a cache hit — no re-execution, and a campaign
killed mid-flight resumes from whatever its first life persisted.

Entries are one JSON document each (the :mod:`repro.api.wire` tagged
format plus the key's own fields for listing), written atomically via
tempfile + ``os.replace`` exactly like
:class:`~repro.corpus.store.CorpusStore` entries: two processes
racing to persist the same job write the same bytes, and a crash
never leaves a half-readable entry. Documents are sharded into
two-hex-character subdirectories so a million-report store does not
put a million files in one directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Iterator

from ..api.report import RunReport
from ..api.wire import decode_value, encode_value
from ..engine.policy import ExecutionPolicy
from ..radio.errors import ProtocolError

__all__ = [
    "JobKey",
    "ReportStore",
    "config_digest",
    "faults_digest",
    "policy_digest",
]

#: Digest value standing for "no fault schedule" (or an empty one —
#: pinned bit-identical to none by the fault layer, so they must
#: share a cache key).
NO_FAULTS = "none"

#: Digest value standing for "no protocol config" — the protocol's
#: registered defaults.
NO_CONFIG = "none"


def policy_digest(policy: ExecutionPolicy, n: int | None = None) -> str:
    """Content digest of the **resolved** execution policy, hex.

    Resolution (:meth:`~repro.engine.policy.ExecutionPolicy.resolve`
    against the graph size) happens first, so ``"auto"`` knobs and the
    process-wide budget fold in — the digest names what would actually
    execute. The fault schedule is stripped: faults are the key's own
    coordinate (:func:`faults_digest`), not part of the policy
    digest, mirroring the key layout in the issue contract.
    """
    resolved = dataclasses.replace(policy.resolve(n), faults=None)
    doc = json.dumps(encode_value(resolved), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()[:16]


def faults_digest(policy: ExecutionPolicy) -> str:
    """Digest of the policy's effective fault schedule (:data:`NO_FAULTS`
    for fault-free runs, including empty schedules — which the fault
    layer pins bit-identical to none, so they share a key)."""
    schedule = policy.fault_schedule()
    if schedule is None or schedule.is_empty:
        return NO_FAULTS
    return schedule.digest()


def config_digest(config: Any) -> str:
    """Digest of the protocol config (:data:`NO_CONFIG` for ``None`` —
    the protocol's registered defaults).

    Hashes the tagged wire form (:mod:`repro.api.wire`) with sorted
    keys, so two configs share a digest exactly when they would travel
    the wire identically — campaigns differing only in config land in
    distinct store cells instead of colliding on a cached report.
    """
    if config is None:
        return NO_CONFIG
    doc = json.dumps(encode_value(config), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class JobKey:
    """The six coordinates that determine one seeded run exactly.

    ``seed`` and ``trial`` together name the rng stream: trial ``t`` of
    a campaign runs on ``np.random.SeedSequence(seed).spawn(n)[t]`` —
    the same seeding contract as
    :func:`~repro.analysis.experiments.run_report_trials`, so the
    store serves those trials too. ``config`` is the protocol config's
    :func:`config_digest` (:data:`NO_CONFIG` for defaults): campaigns
    that differ only in config must not share cache entries.
    """

    protocol: str
    graph: str
    seed: int
    trial: int
    policy: str
    faults: str = NO_FAULTS
    config: str = NO_CONFIG

    def __post_init__(self) -> None:
        if not self.protocol or not isinstance(self.protocol, str):
            raise ProtocolError(
                f"JobKey.protocol must be a protocol name, "
                f"got {self.protocol!r}"
            )
        if not self.graph or not isinstance(self.graph, str):
            raise ProtocolError(
                f"JobKey.graph must be a corpus content digest, "
                f"got {self.graph!r}"
            )
        for field in ("seed", "trial"):
            value = getattr(self, field)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(
                    f"JobKey.{field} must be an integer, got {value!r}"
                )
        if self.trial < 0:
            raise ProtocolError(
                f"JobKey.trial must be >= 0, got {self.trial}"
            )

    @property
    def digest(self) -> str:
        """sha256 over the canonical key document (the entry address)."""
        doc = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(doc.encode()).hexdigest()

    def asdict(self) -> dict[str, Any]:
        """Plain-JSON form (stored beside the report for listing)."""
        return dataclasses.asdict(self)


class ReportStore:
    """A directory of report entries, addressed by :class:`JobKey` digest.

    Plain files, no index: ``get`` is a stat + read, ``put`` an atomic
    rename, and concurrent writers of the same key race benignly
    (content-addressed — same key, same resolved coordinates, same
    report outcome). ``hits``/``misses``/``writes`` counters feed the
    campaign engine's dedupe accounting and the service's status
    endpoint.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, key: "JobKey | str") -> pathlib.Path:
        """Entry path of a key (or raw digest): sharded by prefix."""
        digest = key.digest if isinstance(key, JobKey) else key
        return self.directory / digest[:2] / f"{digest}.json"

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, (JobKey, str)):
            return False
        return self.path_for(key).is_file()

    def get(self, key: "JobKey | str") -> RunReport | None:
        """The stored report of ``key``, or ``None`` (counted) on a miss."""
        path = self.path_for(key)
        try:
            document = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        self.hits += 1
        report = decode_value(document["report"])
        if not isinstance(report, RunReport):
            raise ProtocolError(
                f"store entry {path.name} decoded to "
                f"{type(report).__name__!r}, expected RunReport"
            )
        return report

    def get_document(self, digest: str) -> dict[str, Any] | None:
        """The raw stored document (key fields + tagged report) of a
        digest — what the fetch-report HTTP endpoint serves verbatim."""
        path = self.path_for(digest)
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    def put(self, key: JobKey, report: RunReport) -> pathlib.Path:
        """Persist ``report`` under ``key`` atomically; return the path.

        An existing entry wins (content-addressed: it records the same
        outcome); the write is tempfile + ``os.replace`` in the entry's
        own shard directory, so readers never observe a partial file
        and a crashed writer leaves only an orphaned dotfile.
        """
        if not isinstance(report, RunReport):
            raise ProtocolError(
                f"ReportStore.put takes a RunReport, "
                f"got {type(report).__name__}"
            )
        path = self.path_for(key)
        if path.is_file():
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format": 1,
            "key": key.asdict(),
            "digest": key.digest,
            "report": encode_value(report),
        }
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - crash path
                os.unlink(tmp)
        self.writes += 1
        return path

    def digests(self) -> Iterator[str]:
        """Every stored entry digest (no particular order)."""
        if not self.directory.is_dir():
            return
        for shard in sorted(self.directory.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def stats(self) -> dict[str, int]:
        """Hit/miss/write counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self),
        }
