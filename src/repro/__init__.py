"""repro — reproduction of Davies, "Uniting General-Graph and
Geometric-Based Radio Networks via Independence Number Parametrization"
(PODC 2023, arXiv:2303.16832).

Public API layout:

* :mod:`repro.api` — **the front door**: the protocol registry,
  :class:`~repro.engine.policy.ExecutionPolicy`, and
  :func:`repro.api.run` returning structured
  :class:`~repro.api.report.RunReport` records;
* :mod:`repro.radio` — the radio network model (simulator substrate);
* :mod:`repro.graphs` — graph classes of Section 1.3 + properties;
* :mod:`repro.corpus` — graph corpus at scale: array-native CSR
  generation, the mmap-loaded on-disk store, shared-memory workers;
* :mod:`repro.core` — the paper's algorithms: Decay,
  EstimateEffectiveDegree, Radio MIS (Theorem 14), Partition(beta, MIS),
  Compete, broadcast (Theorem 7), leader election (Theorem 8);
* :mod:`repro.baselines` — prior-work comparators;
* :mod:`repro.analysis` — experiment harness helpers.

Quickstart::

    import numpy as np
    import repro.api as api
    from repro import graphs

    g = graphs.random_udg(n=150, side=6.0, rng=np.random.default_rng(7))
    mis = api.run("mis", g, seed=7)
    print(mis.result.size, "MIS nodes in", mis.steps, "radio steps")
    bc = api.run("broadcast", g, seed=7)
    print("broadcast rounds:", bc.result.total_rounds)
"""

from . import analysis, api, baselines, core, corpus, engine, graphs, radio
from .core import (
    BroadcastResult,
    CompeteConfig,
    CompeteResult,
    LeaderElectionResult,
    MISConfig,
    MISResult,
    broadcast,
    compete,
    compute_mis,
    elect_leader,
    partition,
)
from .graphs import (
    random_geometric_radio,
    random_qudg,
    random_udg,
    random_unit_ball_graph,
)
from .radio import Message, RadioNetwork

__version__ = "1.0.0"

__all__ = [
    "BroadcastResult",
    "CompeteConfig",
    "CompeteResult",
    "LeaderElectionResult",
    "MISConfig",
    "MISResult",
    "Message",
    "RadioNetwork",
    "analysis",
    "api",
    "baselines",
    "broadcast",
    "compete",
    "compute_mis",
    "core",
    "corpus",
    "elect_leader",
    "engine",
    "graphs",
    "partition",
    "radio",
    "random_geometric_radio",
    "random_qudg",
    "random_udg",
    "random_unit_ball_graph",
]
