"""Experiment harness: repeated trials, aggregation, scaling fits.

The benchmarks in ``benchmarks/`` are thin: they define workloads and
call these helpers, so that trial repetition, seeding, and slope fitting
are uniform across experiments and unit-testable on their own.

Monte-Carlo repetitions are embarrassingly parallel:
:func:`run_trials_parallel` fans the same seeded trials of
:func:`run_trials` across a process pool, with bit-identical seeding
(one ``SeedSequence`` child per trial, in trial order), so serial and
parallel runs of the same experiment produce the same numbers.

Trials that simulate protocols run on the windowed engine by default —
the packet-level entry points (:func:`repro.core.compute_mis`,
:func:`repro.core.run_decay`, packet Compete, the baselines) are
engine-backed, so every experiment inherits the batched delivery path
without opting in; pass their ``engine="reference"`` knobs to measure
the step-wise twins (``benchmarks/bench_p2_engine.py`` does exactly
that, and threads the E1/E6 slices through
:func:`run_trials_parallel`, recording wall-clock per PR in
``BENCH_PR2.json``).
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import math
import os
import pickle
import tracemalloc
import warnings
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..corpus.shm import SharedGraph, SharedGraphHandle, attach
from ..engine.policy import ExecutionPolicy
from ..engine.streaming import memory_budget, set_memory_budget
from ..faults import default_faults, set_default_faults, validate_faults
from ..radio.errors import ProtocolError


def _resolve_corpus(corpus: Any) -> Any:
    """The ``corpus=`` knob's graph: a CSRGraph as-is, a path mmap-loaded."""
    if hasattr(corpus, "csr_arrays"):
        return corpus
    from ..corpus.store import load_graph

    return load_graph(corpus)


def _warn_unpicklable(runner: str, exc: Exception, fallback: str) -> None:
    """Satellite of the parallel runners: a degraded path must say so.

    Silently running serially where the caller asked for a pool turns
    a pickling bug into a mysterious slowdown; the warning names the
    actual failure so the caller can fix the measure/payload.
    """
    warnings.warn(
        f"{runner}: {fallback} ({type(exc).__name__}: {exc})",
        RuntimeWarning,
        stacklevel=3,
    )


def _trial_budget(
    mem_budget: int | None, policy: ExecutionPolicy | None
) -> tuple[int | None, Any]:
    """The process-wide defaults a block of trials should impose.

    ``policy`` is the front-door form (its ``mem_budget`` field is the
    streaming cap, its ``faults`` the fault schedule); the legacy
    ``mem_budget`` kwarg keeps working. Passing both refuses — two
    sources of truth. The trial runners drive opaque ``measure``
    callables, so the only policy fields they can impose process-wide
    are the two with process-wide defaults — ``mem_budget`` and
    ``faults`` — and a policy carrying any other non-default field
    refuses rather than silently dropping it (set
    engine/delivery/chunk_steps on the protocol calls inside
    ``measure``, or use :func:`run_report_trials`, which threads the
    whole policy through :func:`repro.api.run`).
    """
    if policy is not None:
        if mem_budget is not None:
            raise ProtocolError(
                "run_trials got both mem_budget= and policy=; put the "
                "budget on the policy"
            )
        if policy != ExecutionPolicy(
            mem_budget=policy.mem_budget, faults=policy.faults
        ):
            raise ProtocolError(
                "run_trials applies only the policy's mem_budget and "
                "faults (measure callables are opaque); set other "
                "policy fields on the protocol calls inside measure, "
                "or use run_report_trials for full-policy front-door "
                "trials"
            )
        return policy.mem_budget, policy.faults
    return mem_budget, None


@contextlib.contextmanager
def _trial_memory_budget(mem_budget: int | None) -> Iterator[None]:
    """Impose the process-wide streaming budget for a block of trials.

    ``None`` leaves the current budget untouched; otherwise the
    previous budget is restored on exit, so nesting experiments with
    different caps behaves.
    """
    if mem_budget is None:
        yield
        return
    previous = memory_budget()
    set_memory_budget(mem_budget)
    try:
        yield
    finally:
        set_memory_budget(previous)


@contextlib.contextmanager
def _trial_fault_default(faults: Any) -> Iterator[None]:
    """Impose the process-wide default fault schedule for a block of
    trials (the mechanism policy resolution consults), mirroring
    :func:`_trial_memory_budget`. ``None`` leaves the current default
    untouched; otherwise the previous default is restored on exit.
    """
    if faults is None:
        yield
        return
    validate_faults(faults)
    previous = default_faults()
    set_default_faults(faults)
    try:
        yield
    finally:
        set_default_faults(previous)


def measure_peak(fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` and return ``(result, peak_bytes)`` via ``tracemalloc``.

    ``peak_bytes`` is the workload's peak allocation above the baseline
    at entry (numpy buffers included — numpy allocates through the
    traced ``PyDataMem`` hooks). Benchmarks record it next to wall time
    in every ``BENCH_*.json`` artifact, and the memory-ceiling
    regression tests assert streamed runs stay under their configured
    budget. Tracing costs some speed, so callers time and measure in
    separate passes when both numbers matter.

    Do **not** nest: the peak is process-global tracemalloc state, and
    an inner call's ``reset_peak`` necessarily discards the peak the
    outer call was accumulating (the outer result then reflects only
    allocations after the inner call returned). ``fn`` must not call
    ``measure_peak`` itself.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    baseline, _ = tracemalloc.get_traced_memory()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if started_here:
            tracemalloc.stop()
    return result, max(0, peak - baseline)


@dataclasses.dataclass(frozen=True)
class TrialStats:
    """Aggregate of repeated scalar measurements."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "TrialStats":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ProtocolError(
                "cannot aggregate zero trials: TrialStats.from_values "
                "needs at least one value"
            )
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            count=int(arr.size),
        )

    def merge(self, other: "TrialStats") -> "TrialStats":
        """Combine two disjoint aggregates into one (streaming update).

        Exact pooled mean/variance (Chan's parallel form): merging the
        stats of two value blocks equals aggregating the concatenated
        block, up to float rounding — which is what lets the campaign
        engine maintain live aggregates **incrementally** as reports
        land instead of re-walking every report per update
        (``summarize_reports`` over 10^6 reports per status poll would
        be quadratic in campaign size). ``std`` keeps the sample
        convention (``ddof=1``) of :meth:`from_values`.
        """
        if not isinstance(other, TrialStats):
            raise ProtocolError(
                f"TrialStats.merge takes another TrialStats, got "
                f"{type(other).__name__}"
            )
        na, nb = self.count, other.count
        n = na + nb
        delta = other.mean - self.mean
        mean = self.mean + delta * nb / n
        # Sum of squared deviations per side (ddof=1 stored stds).
        m2 = (
            self.std**2 * max(0, na - 1)
            + other.std**2 * max(0, nb - 1)
            + delta**2 * na * nb / n
        )
        return TrialStats(
            mean=float(mean),
            std=float(math.sqrt(m2 / (n - 1))) if n > 1 else 0.0,
            minimum=float(min(self.minimum, other.minimum)),
            maximum=float(max(self.maximum, other.maximum)),
            count=int(n),
        )


def run_trials(
    measure: Callable[[np.random.Generator], float],
    n_trials: int,
    seed: int,
    mem_budget: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> TrialStats:
    """Run ``measure`` with ``n_trials`` independent child generators.

    Seeding: a single ``SeedSequence`` spawns one child per trial, so
    trials are independent and the whole experiment is reproducible from
    one integer.

    ``policy`` (the front-door :class:`~repro.engine.policy
    .ExecutionPolicy` form) imposes its ``mem_budget`` as the
    process-wide streaming budget
    (:func:`repro.engine.streaming.set_memory_budget`) around the
    trials: every engine-backed protocol a trial runs then picks its
    streamed slab height from that target peak-bytes cap. The legacy
    ``mem_budget`` kwarg is the same knob (both at once refuses). A
    memory knob only — streamed execution is bit-identical, so trial
    values do not depend on it.

    A policy ``faults`` schedule is imposed the same way, as the
    process-wide default (:func:`repro.faults.set_default_faults`)
    around the trials — the one *semantics* knob: every
    policy-accepting protocol a trial runs then injects that schedule,
    and protocols that cannot realize it refuse, exactly as under
    :func:`repro.api.run`.
    """
    mem_budget, faults = _trial_budget(mem_budget, policy)
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    seq = np.random.SeedSequence(seed)
    children = seq.spawn(n_trials)
    with _trial_memory_budget(mem_budget), _trial_fault_default(faults):
        values = [
            measure(np.random.default_rng(child)) for child in children
        ]
    return TrialStats.from_values(values)


def _run_one_trial(
    payload: tuple[
        Callable[[np.random.Generator], float],
        np.random.SeedSequence,
        int | None,
        Any,
    ]
) -> float:
    """Process-pool worker: run one seeded trial (module-level for pickling)."""
    measure, child, mem_budget, faults = payload
    with _trial_memory_budget(mem_budget), _trial_fault_default(faults):
        return measure(np.random.default_rng(child))


def _run_one_corpus_trial(
    payload: tuple[
        Callable[[np.random.Generator, Any], float],
        np.random.SeedSequence,
        int | None,
        Any,
        SharedGraphHandle,
    ]
) -> float:
    """Process-pool worker for corpus trials: attach the published CSR
    slabs (zero-copy, cached per process) and run one seeded trial.
    What crossed the process boundary is the handle — segment names and
    metadata, a few hundred bytes — never the arrays."""
    measure, child, mem_budget, faults, handle = payload
    graph = attach(handle)
    with _trial_memory_budget(mem_budget), _trial_fault_default(faults):
        return measure(np.random.default_rng(child), graph)


def run_trials_parallel(
    measure: Callable[..., float],
    n_trials: int,
    seed: int,
    processes: int | None = None,
    mem_budget: int | None = None,
    policy: ExecutionPolicy | None = None,
    corpus: Any | None = None,
) -> TrialStats:
    """Like :func:`run_trials`, fanned across a process pool.

    Seeding is identical to the serial runner — one ``SeedSequence``
    child per trial, results collected in trial order — so the returned
    statistics are bit-identical to ``run_trials(measure, n_trials,
    seed)`` regardless of worker count or scheduling.

    Parameters
    ----------
    measure:
        Trial callable; must be picklable (a module-level function or
        ``functools.partial`` over one), since workers are separate
        processes. Unpicklable callables fall back to the serial path
        (with a ``RuntimeWarning`` naming the failure) rather than
        failing the experiment. With ``corpus`` the signature is
        ``measure(rng, graph)`` — the graph reaches workers through
        shared memory, not through the measure's pickle.
    n_trials, seed:
        As in :func:`run_trials`.
    processes:
        Worker count; defaults to ``min(cpu_count, n_trials)``. ``1``
        short-circuits to the serial runner.
    mem_budget, policy:
        As in :func:`run_trials` (the policy's ``mem_budget`` is the
        cap; both at once refuses); the budget — and the policy's
        fault schedule — travel inside each worker's payload, so pool
        workers impose the same process-wide defaults as the serial
        path (neither survives process boundaries as a global). The
        cap is per trial, and trials within one worker run
        sequentially, so total worker memory stays near the cap plus
        the trial's graph fixtures.
    corpus:
        A :class:`~repro.corpus.graph.CSRGraph` (or corpus entry path,
        mmap-loaded) every trial runs on: the parent publishes the CSR
        slabs to ``multiprocessing.shared_memory`` **once** and each
        worker payload carries only the segment handle, so per-worker
        graph memory is independent of worker count — the zero-copy
        path for ``n = 10^6`` Monte-Carlo sweeps. ``measure`` then
        takes ``(rng, graph)``. Segments are closed and unlinked when
        the pool drains (also on worker crashes — the ``finally``
        below — and on parent crash by the resource tracker).
    """
    mem_budget, faults = _trial_budget(mem_budget, policy)
    serial_policy = ExecutionPolicy(mem_budget=mem_budget, faults=faults)
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    graph = _resolve_corpus(corpus) if corpus is not None else None
    if graph is not None:
        serial_measure = lambda rng: measure(rng, graph)  # noqa: E731
    else:
        serial_measure = measure
    workers = (
        processes
        if processes is not None
        else min(os.cpu_count() or 1, n_trials)
    )
    if workers == 1 or n_trials == 1:
        return run_trials(serial_measure, n_trials, seed, policy=serial_policy)

    # Probe picklability up front so closures/lambdas take the serial
    # path immediately — the pool itself is then only guarded against
    # infrastructure failures, and genuine exceptions raised *by*
    # ``measure`` inside a worker propagate to the caller unchanged.
    try:
        pickle.dumps(measure)
    except Exception as exc:
        _warn_unpicklable(
            "run_trials_parallel",
            exc,
            "measure is not picklable; falling back to the serial path",
        )
        return run_trials(serial_measure, n_trials, seed, policy=serial_policy)

    children = np.random.SeedSequence(seed).spawn(n_trials)
    shared: SharedGraph | None = None
    if graph is not None:
        shared = SharedGraph.publish(graph)
        payloads = [
            (measure, child, mem_budget, faults, shared.handle)
            for child in children
        ]
        worker_fn: Callable[..., float] = _run_one_corpus_trial
    else:
        payloads = [
            (measure, child, mem_budget, faults) for child in children
        ]
        worker_fn = _run_one_trial
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            values = list(
                pool.map(
                    worker_fn,
                    payloads,
                    chunksize=max(1, n_trials // (4 * workers)),
                )
            )
    except (
        concurrent.futures.process.BrokenProcessPool,
        PermissionError,
    ):
        # Sandboxed environments that cannot spawn worker processes:
        # degrade gracefully to the serial path (same seeding, same
        # results, just slower).
        return run_trials(serial_measure, n_trials, seed, policy=serial_policy)
    finally:
        if shared is not None:
            shared.close()
            shared.unlink()
    return TrialStats.from_values(values)


@dataclasses.dataclass(frozen=True)
class ScalingFit:
    """Power-law fit ``y ~ c * x^exponent`` from log-log regression."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> ScalingFit:
    """Least-squares fit of ``log y`` against ``log x``.

    Used by scaling experiments (E1, E6) to extract measured growth
    exponents — e.g. Radio MIS steps against ``log^3 n`` should fit with
    exponent ~1 when x is taken to be ``log^3 n`` itself.
    """
    xs = np.asarray(list(xs), dtype=float)
    ys = np.asarray(list(ys), dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two matched (x, y) points")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive values")
    lx, ly = np.log(xs), np.log(ys)
    slope, intercept = np.polyfit(lx, ly, deg=1)
    predicted = slope * lx + intercept
    total = float(((ly - ly.mean()) ** 2).sum())
    residual = float(((ly - predicted) ** 2).sum())
    r2 = 1.0 - residual / total if total > 0 else 1.0
    return ScalingFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=float(r2),
    )


def success_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of true outcomes (whp-claim verification helper)."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("cannot compute a success rate of zero outcomes")
    return sum(1 for o in outcomes if o) / len(outcomes)


def _run_one_report(
    payload: tuple[
        Any, Any, np.random.SeedSequence, Any, Any, int | None, Any
    ]
) -> Any:
    """Process-pool worker: one seeded front-door run (module-level for
    pickling). The parent's process-wide streaming budget and default
    fault schedule travel in the payload — globals do not survive
    spawn-style process boundaries, and policy resolution must see the
    same defaults inside a worker as in the serial path."""
    protocol, target, child, config, policy, budget, fault_default = payload
    from ..api import run

    if isinstance(target, SharedGraphHandle):
        target = attach(target)
    with _trial_memory_budget(budget), _trial_fault_default(fault_default):
        return run(
            protocol,
            target,
            rng=np.random.default_rng(child),
            config=config,
            policy=policy,
        )


def run_report_trials(
    protocol: Any,
    target: Any = None,
    n_trials: int = 1,
    seed: int = 0,
    config: Any | None = None,
    policy: ExecutionPolicy | None = None,
    processes: int | None = None,
    corpus: Any | None = None,
) -> list[Any]:
    """Repeated :func:`repro.api.run` trials, one ``RunReport`` each.

    The front-door form of :func:`run_trials`: instead of a scalar
    ``measure`` callable, a registered protocol name (or spec) runs
    ``n_trials`` times on ``target`` with the usual one-``SeedSequence``
    -child-per-trial seeding, and the full
    :class:`~repro.api.report.RunReport` of every trial comes back in
    trial order — aggregate with :func:`summarize_reports`. ``policy``
    rides into every run unchanged.

    ``processes > 1`` fans trials across a process pool with the same
    graceful degradation as :func:`run_trials_parallel` (unpicklable
    targets warn and fall back to the serial path; so do sandboxed
    environments; trial order and seeding are identical either way).
    Wall-clock and peak-memory fields are per-trial measurements and
    naturally vary across runs; the protocol results are
    seed-reproducible.

    ``corpus`` (a :class:`~repro.corpus.graph.CSRGraph` or corpus
    entry path; exclusive with ``target``) is the zero-copy fan-out
    path: the parent publishes the CSR slabs to shared memory once and
    worker payloads carry only the segment handle — per-worker graph
    memory independent of worker count. Array-native targets passed
    via ``target=`` take the same shared-memory path when pooled.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if corpus is not None:
        if target is not None:
            raise ProtocolError(
                "run_report_trials takes target= or corpus=, not both — "
                "the corpus entry IS the graph"
            )
        target = _resolve_corpus(corpus)
    children = np.random.SeedSequence(seed).spawn(n_trials)
    default_budget = memory_budget()
    fault_default = default_faults()
    payloads = [
        (protocol, target, child, config, policy, default_budget,
         fault_default)
        for child in children
    ]
    workers = (
        processes
        if processes is not None
        else 1  # protocol runs are usually heavyweight; opt into pools
    )
    if workers < 1:
        raise ValueError(f"processes must be >= 1, got {workers}")
    shareable = hasattr(target, "csr_arrays")
    if workers > 1 and n_trials > 1:
        probe = (
            (protocol, config, policy)
            if shareable  # the graph travels via shared memory, not pickle
            else (protocol, target, config, policy)
        )
        try:
            pickle.dumps(probe)
        except Exception as exc:
            _warn_unpicklable(
                "run_report_trials",
                exc,
                "the (protocol, target, config, policy) payload is not "
                "picklable; running trials serially",
            )
            workers = 1
    if workers > 1 and n_trials > 1:
        shared = SharedGraph.publish(target) if shareable else None
        pool_payloads = (
            [
                (protocol, shared.handle, child, config, policy,
                 default_budget, fault_default)
                for child in children
            ]
            if shared is not None
            else payloads
        )
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, n_trials)
            ) as pool:
                return list(pool.map(_run_one_report, pool_payloads))
        except (
            concurrent.futures.process.BrokenProcessPool,
            PermissionError,
        ):
            pass
        finally:
            if shared is not None:
                shared.close()
                shared.unlink()
    return [_run_one_report(payload) for payload in payloads]


def summarize_reports(reports: Sequence[Any]) -> dict[str, TrialStats]:
    """Aggregate a batch of ``RunReport`` records into trial statistics.

    Returns :class:`TrialStats` over the execution facts every report
    carries — ``steps``, ``wall_time_s``, and (when every report was
    memory-measured) ``peak_mem_bytes`` — which is what benchmark rows
    and experiment tables need from repeated front-door runs.
    """
    reports = list(reports)
    if not reports:
        # Refuse by name rather than letting TrialStats trip over an
        # empty array (historically a bare ValueError with no context,
        # and a KeyError further down for callers indexing the dict):
        # the service maps this straight to a 4xx.
        raise ProtocolError(
            "summarize_reports got zero reports: an empty campaign or "
            "trial batch has no aggregates (submit at least one trial)"
        )
    summary = {
        "steps": TrialStats.from_values([r.steps for r in reports]),
        "wall_time_s": TrialStats.from_values(
            [r.wall_time_s for r in reports]
        ),
    }
    if all(r.peak_mem_bytes is not None for r in reports):
        summary["peak_mem_bytes"] = TrialStats.from_values(
            [r.peak_mem_bytes for r in reports]
        )
    return summary


def geometric_sizes(start: int, stop: int, points: int) -> list[int]:
    """Geometrically spaced integer sizes for scaling sweeps."""
    if start < 1 or stop < start or points < 1:
        raise ValueError(
            f"invalid sweep spec: start={start}, stop={stop}, points={points}"
        )
    raw = np.geomspace(start, stop, points)
    sizes = sorted({int(round(x)) for x in raw})
    return sizes
