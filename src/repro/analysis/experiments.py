"""Experiment harness: repeated trials, aggregation, scaling fits.

The benchmarks in ``benchmarks/`` are thin: they define workloads and
call these helpers, so that trial repetition, seeding, and slope fitting
are uniform across experiments and unit-testable on their own.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class TrialStats:
    """Aggregate of repeated scalar measurements."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "TrialStats":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot aggregate zero trials")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            count=int(arr.size),
        )


def run_trials(
    measure: Callable[[np.random.Generator], float],
    n_trials: int,
    seed: int,
) -> TrialStats:
    """Run ``measure`` with ``n_trials`` independent child generators.

    Seeding: a single ``SeedSequence`` spawns one child per trial, so
    trials are independent and the whole experiment is reproducible from
    one integer.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    seq = np.random.SeedSequence(seed)
    children = seq.spawn(n_trials)
    values = [measure(np.random.default_rng(child)) for child in children]
    return TrialStats.from_values(values)


@dataclasses.dataclass(frozen=True)
class ScalingFit:
    """Power-law fit ``y ~ c * x^exponent`` from log-log regression."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> ScalingFit:
    """Least-squares fit of ``log y`` against ``log x``.

    Used by scaling experiments (E1, E6) to extract measured growth
    exponents — e.g. Radio MIS steps against ``log^3 n`` should fit with
    exponent ~1 when x is taken to be ``log^3 n`` itself.
    """
    xs = np.asarray(list(xs), dtype=float)
    ys = np.asarray(list(ys), dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two matched (x, y) points")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive values")
    lx, ly = np.log(xs), np.log(ys)
    slope, intercept = np.polyfit(lx, ly, deg=1)
    predicted = slope * lx + intercept
    total = float(((ly - ly.mean()) ** 2).sum())
    residual = float(((ly - predicted) ** 2).sum())
    r2 = 1.0 - residual / total if total > 0 else 1.0
    return ScalingFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=float(r2),
    )


def success_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of true outcomes (whp-claim verification helper)."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("cannot compute a success rate of zero outcomes")
    return sum(1 for o in outcomes if o) / len(outcomes)


def geometric_sizes(start: int, stop: int, points: int) -> list[int]:
    """Geometrically spaced integer sizes for scaling sweeps."""
    if start < 1 or stop < start or points < 1:
        raise ValueError(
            f"invalid sweep spec: start={start}, stop={stop}, points={points}"
        )
    raw = np.geomspace(start, stop, points)
    sizes = sorted({int(round(x)) for x in raw})
    return sizes
