"""Experiment harness helpers shared by tests and benchmarks."""

from .experiments import (
    ScalingFit,
    TrialStats,
    fit_power_law,
    geometric_sizes,
    measure_peak,
    run_report_trials,
    run_trials,
    run_trials_parallel,
    success_rate,
    summarize_reports,
)
from .tables import TextTable

__all__ = [
    "ScalingFit",
    "TextTable",
    "TrialStats",
    "fit_power_law",
    "geometric_sizes",
    "measure_peak",
    "run_report_trials",
    "run_trials",
    "run_trials_parallel",
    "success_rate",
    "summarize_reports",
]
