"""Plain-text table rendering for benchmark output.

Every benchmark prints its experiment's rows through
:class:`TextTable`, so EXPERIMENTS.md's recorded tables and the live
benchmark output share one format.
"""

from __future__ import annotations

from typing import Any, Sequence


class TextTable:
    """A fixed-column plain-text table.

    >>> t = TextTable(["n", "steps", "steps/log^3(n)"])
    >>> t.add_row([128, 3500, 10.2])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append one row; floats are formatted to 3 significant places."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([_format(v) for v in values])

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (benchmark harness convenience)."""
        print(self.render())


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
