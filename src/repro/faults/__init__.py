"""Fault & churn injection over the plan/commit IR.

Declarative, seeded :class:`FaultSchedule` objects (crash, sleep/wake,
late-join, jamming, per-node capabilities) realized as deterministic
transmit-/hear-mask transforms inside the radio delivery layer — every
execution engine and every step-wise reference twin sees the identical
fault pattern, and an empty schedule is bit-identical to none.
"""

from .schedule import (
    FaultSchedule,
    Jam,
    default_faults,
    set_default_faults,
    validate_faults,
)
from .state import FaultState, node_uptime_fractions

__all__ = [
    "FaultSchedule",
    "FaultState",
    "Jam",
    "default_faults",
    "node_uptime_fractions",
    "set_default_faults",
    "validate_faults",
]
