"""Declarative fault & churn schedules for the radio simulator.

The paper's model is static and fault-free; this package makes the
reproduction's *executions* face the failures every deployed radio/P2P
network sees — without touching a single protocol emitter. A
:class:`FaultSchedule` is a frozen, seeded description of what goes
wrong and when, in **global radio steps** (the network's
``steps_elapsed`` clock):

* **crashes** — ``(node, step)``: the node is dead from ``step`` on
  (neither transmits nor hears);
* **sleeps** — ``(node, start, stop)``: the node is down for steps in
  ``[start, stop)`` and wakes afterwards;
* **late joins** — ``(node, step)``: the node is absent before
  ``step``;
* **jams** — :class:`Jam` windows ``[start, stop)`` over a node region
  (or the whole network): listeners in the region hear nothing while
  the jammer is up (transmissions still occupy the channel);
* **capabilities** — per-node transmit-probability scaling
  (``tx_prob``: each intended transmission goes out only with the
  node's probability, decided by a stateless counter-based hash of
  ``(seed, step, node)``) and depleting energy budgets (``energy``:
  each realized transmission costs one unit; an exhausted node stays
  silent but keeps hearing).

Schedules are *data*: hashable, picklable, comparable, digestible for
provenance. They are applied as deterministic transmit-mask and
hear-mask transforms between plan and commit inside
:class:`~repro.radio.network.RadioNetwork` (see
:mod:`repro.faults.state`), keyed purely on the global step — so the
monolithic, streamed, fused-mux, validating, *and* step-wise reference
execution paths all realize exactly the same faults, and the engine
equivalence suites keep holding under any schedule. An **empty**
schedule is bit-identical to no schedule at all (the installation hook
short-circuits before any transform code runs).

Validation is uniform and loud: malformed specs — negative rates or
steps, a crash at or before the same node's join, a jam window past
the declared horizon, probabilities outside ``[0, 1]`` — raise
:class:`~repro.radio.errors.ProtocolError` naming the accepted form,
identically from the API, the CLI flag group, and ``run_trials*``.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from ..radio.errors import ProtocolError

#: Sentinel "never happens" step for crash bounds (far past any run).
NEVER = 1 << 62


def _as_int(value, what: str) -> int:
    """Coerce an int-like (numpy included) or refuse by name."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ProtocolError(
            f"{what} must be an integer, got {value!r}"
        )
    return int(value)


@dataclasses.dataclass(frozen=True)
class Jam:
    """One adversarial jamming window.

    Listeners in ``nodes`` (``None`` = the whole network) hear nothing
    during global steps ``[start, stop)`` — their ``hear_from`` entries
    are forced to silence after delivery. Jamming is a *hear*-side
    fault: jammed nodes may still transmit.
    """

    start: int
    stop: int
    nodes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        start = _as_int(self.start, "jam start")
        stop = _as_int(self.stop, "jam stop")
        if start < 0 or stop <= start:
            raise ProtocolError(
                f"jam windows are [start, stop) with 0 <= start < stop; "
                f"got start={self.start}, stop={self.stop}"
            )
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "stop", stop)
        if self.nodes is not None:
            nodes = tuple(
                _as_int(v, "jam region node") for v in self.nodes
            )
            if any(v < 0 for v in nodes):
                raise ProtocolError(
                    f"jam region nodes must be >= 0, got {self.nodes!r}"
                )
            object.__setattr__(self, "nodes", nodes)


def _rate(value, what: str) -> float:
    """A probability/rate in [0, 1], refused by name otherwise."""
    try:
        rate = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            f"{what} must be a number in [0, 1], got {value!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ProtocolError(
            f"{what} must be in [0, 1], got {value!r}"
        )
    return rate


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A seeded, declarative fault & churn schedule (see module doc).

    All step values are global radio steps
    (:attr:`~repro.radio.network.RadioNetwork.steps_elapsed`).
    ``seed`` drives only the transmit-probability hash — never the
    protocol rng, so installing a schedule cannot perturb a protocol's
    own coin stream. ``horizon`` is an optional declared run length:
    jam windows must end at or before it (a jam past the horizon can
    never fire and is a spec error, refused by name).

    Frozen, hashable, picklable; equal schedules are interchangeable
    (installation is idempotent for equal values). Build by hand, or
    draw a randomized one from rate knobs with :meth:`sample` — the
    form behind the CLI's ``--crash-rate``/``--churn``/``--jam``/
    ``--hetero`` flags.
    """

    crashes: tuple[tuple[int, int], ...] = ()
    sleeps: tuple[tuple[int, int, int], ...] = ()
    joins: tuple[tuple[int, int], ...] = ()
    jams: tuple[Jam, ...] = ()
    tx_prob: tuple[tuple[int, float], ...] = ()
    energy: tuple[tuple[int, int], ...] = ()
    seed: int = 0
    horizon: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", _as_int(self.seed, "fault seed"))
        if self.horizon is not None:
            horizon = _as_int(self.horizon, "fault horizon")
            if horizon < 1:
                raise ProtocolError(
                    f"fault horizon must be >= 1 step, got {self.horizon}"
                )
            object.__setattr__(self, "horizon", horizon)

        crashes = tuple(
            (_as_int(n, "crash node"), _as_int(s, "crash step"))
            for n, s in self.crashes
        )
        if any(n < 0 or s < 0 for n, s in crashes):
            raise ProtocolError(
                f"crash entries are (node, step) with node >= 0 and "
                f"step >= 0; got {self.crashes!r}"
            )
        object.__setattr__(self, "crashes", crashes)

        sleeps = tuple(
            (
                _as_int(n, "sleep node"),
                _as_int(a, "sleep start"),
                _as_int(b, "sleep stop"),
            )
            for n, a, b in self.sleeps
        )
        if any(n < 0 or a < 0 or b <= a for n, a, b in sleeps):
            raise ProtocolError(
                f"sleep entries are (node, start, stop) with node >= 0 "
                f"and 0 <= start < stop; got {self.sleeps!r}"
            )
        object.__setattr__(self, "sleeps", sleeps)

        joins = tuple(
            (_as_int(n, "join node"), _as_int(s, "join step"))
            for n, s in self.joins
        )
        if any(n < 0 or s < 0 for n, s in joins):
            raise ProtocolError(
                f"join entries are (node, step) with node >= 0 and "
                f"step >= 0; got {self.joins!r}"
            )
        object.__setattr__(self, "joins", joins)

        jams = tuple(
            jam if isinstance(jam, Jam) else Jam(*jam) for jam in self.jams
        )
        if self.horizon is not None:
            for jam in jams:
                if jam.stop > self.horizon:
                    raise ProtocolError(
                        f"jam window [{jam.start}, {jam.stop}) extends "
                        f"past the declared horizon {self.horizon}; "
                        f"accepted jams end at or before the horizon"
                    )
        object.__setattr__(self, "jams", jams)

        tx_prob = tuple(
            (_as_int(n, "tx_prob node"), _rate(p, "tx_prob probability"))
            for n, p in self.tx_prob
        )
        if any(n < 0 for n, _ in tx_prob):
            raise ProtocolError(
                f"tx_prob entries are (node, probability) with node >= 0; "
                f"got {self.tx_prob!r}"
            )
        object.__setattr__(self, "tx_prob", tx_prob)

        energy = tuple(
            (_as_int(n, "energy node"), _as_int(b, "energy budget"))
            for n, b in self.energy
        )
        if any(n < 0 or b < 0 for n, b in energy):
            raise ProtocolError(
                f"energy entries are (node, budget) with node >= 0 and "
                f"budget >= 0 transmissions; got {self.energy!r}"
            )
        object.__setattr__(self, "energy", energy)

        # Lifetime consistency: a node cannot crash at or before the
        # step it joins — the overlap describes a node that was never
        # up, which is a spec contradiction, not a fault.
        join_of = {}
        for node, step in joins:
            join_of[node] = max(join_of.get(node, 0), step)
        for node, step in crashes:
            if node in join_of and step <= join_of[node]:
                raise ProtocolError(
                    f"node {node} crashes at step {step} but joins at "
                    f"step {join_of[node]}; a node's crash must come "
                    f"strictly after its join (give each node one "
                    f"consistent lifetime)"
                )

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """No events and no capability overrides: bit-identical to no
        schedule at all (the installation hook short-circuits)."""
        return not (
            self.crashes
            or self.sleeps
            or self.joins
            or self.jams
            or self.tx_prob
            or self.energy
        )

    def max_node(self) -> int:
        """Largest node index any entry names (-1 when empty)."""
        best = -1
        for node, *_ in (
            self.crashes + self.sleeps + self.joins
            + self.tx_prob + self.energy
        ):
            best = max(best, node)
        for jam in self.jams:
            if jam.nodes:
                best = max(best, max(jam.nodes))
        return best

    def event_counts(self) -> dict[str, int]:
        """Configured event counts, for provenance records."""
        return {
            "crashes": len(self.crashes),
            "sleeps": len(self.sleeps),
            "joins": len(self.joins),
            "jams": len(self.jams),
            "tx_prob": len(self.tx_prob),
            "energy": len(self.energy),
        }

    def digest(self) -> str:
        """Stable content hash of the schedule (provenance key).

        Canonical-repr SHA-256, truncated: equal schedules share a
        digest across processes and versions of this package (the repr
        of a frozen dataclass of ints/floats/tuples is canonical).
        """
        payload = repr(
            (
                self.crashes,
                self.sleeps,
                self.joins,
                tuple((j.start, j.stop, j.nodes) for j in self.jams),
                self.tx_prob,
                self.energy,
                self.seed,
                self.horizon,
            )
        ).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        n: int,
        horizon: int,
        *,
        seed: int = 0,
        crash_rate: float = 0.0,
        churn: float = 0.0,
        jam: float = 0.0,
        hetero: float = 0.0,
    ) -> "FaultSchedule":
        """Draw a randomized schedule from rate knobs (the CLI's form).

        Parameters
        ----------
        n, horizon:
            Node count and the run length (global steps) the schedule
            describes; both at least 1.
        seed:
            Seeds both the draw and the schedule's transmit-probability
            hash — one integer reproduces the whole fault environment.
        crash_rate:
            Per-node probability of a permanent crash at a uniform step
            in ``[1, horizon)``.
        churn:
            Per-node probability of one sleep/wake interval (uniform
            start, length up to a quarter horizon); additionally each
            node late-joins with probability ``churn / 2`` at a uniform
            step in the first half of the horizon. Crashes drawn for a
            late-joining node land strictly after its join.
        jam:
            Approximate fraction of the horizon under jamming:
            windows of ``~horizon/16`` steps are placed uniformly until
            the fraction is met, each hitting either the whole network
            or a random quarter of the nodes.
        hetero:
            Per-node probability of a degraded transmit probability
            (uniform in ``[0.3, 0.95)``); additionally each node gets a
            finite energy budget with probability ``hetero / 2``.

        All rates must lie in ``[0, 1]``;
        :class:`~repro.radio.errors.ProtocolError` names the accepted
        range otherwise — the same refusal the CLI and ``run_trials*``
        surface.
        """
        n = _as_int(n, "fault sample n")
        horizon = _as_int(horizon, "fault sample horizon")
        if n < 1 or horizon < 1:
            raise ProtocolError(
                f"FaultSchedule.sample needs n >= 1 and horizon >= 1, "
                f"got n={n}, horizon={horizon}"
            )
        crash_rate = _rate(crash_rate, "crash rate")
        churn = _rate(churn, "churn rate")
        jam = _rate(jam, "jam rate")
        hetero = _rate(hetero, "hetero rate")
        rng = np.random.default_rng(_as_int(seed, "fault seed"))

        joins: list[tuple[int, int]] = []
        join_of: dict[int, int] = {}
        if churn > 0.0:
            late = np.nonzero(rng.random(n) < churn / 2.0)[0]
            for node in late:
                step = int(rng.integers(1, max(2, horizon // 2 + 1)))
                joins.append((int(node), step))
                join_of[int(node)] = step

        crashes: list[tuple[int, int]] = []
        if crash_rate > 0.0:
            doomed = np.nonzero(rng.random(n) < crash_rate)[0]
            for node in doomed:
                lo = join_of.get(int(node), 0) + 1
                crashes.append(
                    (int(node), int(rng.integers(lo, lo + max(1, horizon))))
                )

        sleeps: list[tuple[int, int, int]] = []
        if churn > 0.0:
            nappers = np.nonzero(rng.random(n) < churn)[0]
            for node in nappers:
                start = int(rng.integers(0, horizon))
                length = 1 + int(rng.integers(0, max(1, horizon // 4)))
                sleeps.append((int(node), start, start + length))

        jams: list[Jam] = []
        if jam > 0.0:
            length = max(1, horizon // 16)
            events = max(1, int(round(jam * horizon / length)))
            region_size = max(1, n // 4)
            for _ in range(events):
                start = int(rng.integers(0, max(1, horizon - length + 1)))
                if rng.random() < 0.5 or n == 1:
                    nodes = None
                else:
                    nodes = tuple(
                        sorted(
                            int(v)
                            for v in rng.choice(
                                n, size=region_size, replace=False
                            )
                        )
                    )
                jams.append(
                    Jam(start, min(start + length, horizon), nodes)
                )

        tx_prob: list[tuple[int, float]] = []
        energy: list[tuple[int, int]] = []
        if hetero > 0.0:
            weak = np.nonzero(rng.random(n) < hetero)[0]
            for node in weak:
                tx_prob.append(
                    (int(node), float(rng.uniform(0.3, 0.95)))
                )
            budgeted = np.nonzero(rng.random(n) < hetero / 2.0)[0]
            for node in budgeted:
                energy.append(
                    (
                        int(node),
                        int(
                            rng.integers(
                                max(1, horizon // 8), max(2, horizon // 2)
                            )
                        ),
                    )
                )

        return cls(
            crashes=tuple(crashes),
            sleeps=tuple(sleeps),
            joins=tuple(joins),
            jams=tuple(jams),
            tx_prob=tuple(tx_prob),
            energy=tuple(energy),
            seed=int(seed),
            horizon=horizon,
        )


def validate_faults(faults) -> "FaultSchedule | None":
    """Policy-field validator: a :class:`FaultSchedule` or ``None``.

    The one refusal every surface (API, CLI, ``run_trials*``) shares
    for the ``faults=`` knob, naming the accepted forms.
    """
    if faults is None or isinstance(faults, FaultSchedule):
        return faults
    raise ProtocolError(
        f"faults must be a FaultSchedule or None (build one with "
        f"FaultSchedule(...) or FaultSchedule.sample(...)), got "
        f"{faults!r}"
    )


# ---------------------------------------------------------------------------
# Process-wide default schedule (the run_trials* threading mechanism,
# mirroring repro.engine.streaming's default memory budget).
# ---------------------------------------------------------------------------

_default_faults: FaultSchedule | None = None


def set_default_faults(faults: FaultSchedule | None) -> None:
    """Set the process-wide default fault schedule (``None`` clears).

    Policies whose ``faults`` field is unset resolve it from this
    default (see :meth:`repro.engine.policy.ExecutionPolicy.resolve`),
    which is how :func:`repro.analysis.experiments.run_trials` imposes
    one schedule across every policy-accepting protocol a trial runs —
    including inside process-pool workers.
    """
    global _default_faults
    _default_faults = validate_faults(faults)


def default_faults() -> FaultSchedule | None:
    """The process-wide default fault schedule (``None`` = unset)."""
    return _default_faults


__all__ = [
    "FaultSchedule",
    "Jam",
    "default_faults",
    "set_default_faults",
    "validate_faults",
]
