"""Realized fault state: the mask transforms behind a schedule.

A :class:`FaultState` is built once per network from a non-empty
:class:`~repro.faults.schedule.FaultSchedule` and applied by the
delivery layer (:meth:`RadioNetwork._deliver_core`,
:meth:`RadioNetwork.deliver_window`,
:meth:`RadioNetwork.deliver_window_chunks`) between plan and commit:

* :meth:`transform_window` turns a window of **intended** transmit
  masks into the **effective** masks the channel sees (dead, sleeping,
  not-yet-joined, coin-suppressed, and energy-exhausted transmitters
  are cleared) and returns the matching **deaf** mask (listeners that
  hear silence this step: down nodes plus jammed regions);
* the delivery layer then forces ``hear_from`` to silence wherever a
  reception landed on a deaf listener.

Determinism contract
--------------------
Every transform is a pure function of ``(schedule, global step,
node)`` except energy depletion, which additionally carries the
per-node remaining budget forward — and the within-window depletion is
a prefix-sum, so splitting a window into chunks at *any* boundary
yields exactly the same effective masks. Transmit-probability coins
come from a stateless splitmix64-style hash of ``(schedule seed, step,
node)``, never from the protocol rng: installing a schedule cannot
perturb a protocol's own coin stream, and the monolithic, streamed,
fused, validating, and step-wise reference paths all realize the
identical fault pattern. ``clone()`` gives the validating runner's
shadow networks an in-sync copy mid-run.
"""

from __future__ import annotations

import numpy as np

from ..radio.errors import ProtocolError
from .schedule import NEVER, FaultSchedule

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_INV_2_53 = float(2.0**-53)


def _splitmix(x: np.ndarray) -> np.ndarray:
    """Finalize a uint64 array splitmix64-style (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _hash_uniform(
    seed: int, steps: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Uniform [0, 1) floats keyed on (seed, step, node), stateless.

    ``steps`` is a (w, 1) and ``nodes`` a (1, k) uint64 array; the
    result broadcasts to (w, k). Counter-based, so any chunking of the
    step axis reproduces the same coins.
    """
    with np.errstate(over="ignore"):
        key = _splitmix(steps * _GOLDEN + nodes)
        key = _splitmix(key ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
    return (key >> np.uint64(11)).astype(np.float64) * _INV_2_53


def _positions_in(
    cols: np.ndarray, nodes
) -> tuple[np.ndarray, np.ndarray]:
    """Local positions in sorted ``cols`` of the global ids in
    ``nodes`` that are present, paired with those global ids.

    The index translation behind every column-restricted fault
    transform: fault events stay keyed on **global** node ids (so
    coins, ledgers, and counters are identical however the runner
    restricts), and only events naming a member column touch the
    compact window.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if cols.size == 0 or nodes.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pos = np.searchsorted(cols, nodes)
    ok = pos < cols.size
    ok &= cols[np.minimum(pos, cols.size - 1)] == nodes
    return pos[ok], nodes[ok]


class FaultState:
    """Mutable realization of a :class:`FaultSchedule` on ``n`` nodes.

    Holds the precomputed per-node lifetime bounds, capability
    vectors, the depleting energy ledger, and realized-event counters
    (reported in RunReport provenance). One instance per network; the
    validating runner clones it onto its shadow networks.
    """

    def __init__(self, schedule: FaultSchedule, n: int) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise ProtocolError(
                f"FaultState needs a FaultSchedule, got {schedule!r}"
            )
        top = schedule.max_node()
        if top >= n:
            raise ProtocolError(
                f"fault schedule names node {top} but the network has "
                f"only {n} nodes (valid nodes are 0..{n - 1})"
            )
        self.schedule = schedule
        self.n = int(n)

        crash = np.full(n, NEVER, dtype=np.int64)
        for node, step in schedule.crashes:
            crash[node] = min(crash[node], step)
        self.crash_step = crash

        join = np.zeros(n, dtype=np.int64)
        for node, step in schedule.joins:
            join[node] = max(join[node], step)
        self.join_step = join

        self.sleeps = tuple(schedule.sleeps)
        self.jams = tuple(schedule.jams)

        tx_scale = np.ones(n, dtype=np.float64)
        for node, prob in schedule.tx_prob:
            tx_scale[node] = min(tx_scale[node], prob)
        self.tx_scale = tx_scale
        self._scaled = np.nonzero(tx_scale < 1.0)[0]

        energy = np.full(n, -1, dtype=np.int64)
        for node, budget in schedule.energy:
            energy[node] = budget if energy[node] < 0 else min(
                energy[node], budget
            )
        self._energy_init = energy
        self.energy_remaining = energy.copy()
        self._budgeted = np.nonzero(energy >= 0)[0]
        # Nodes with any lifetime bound — the only columns the fused
        # in-place transform must visit for the crash/join clears.
        self._bounded = np.nonzero((join > 0) | (crash < NEVER))[0]

        self.realized = {
            "steps_faulted": 0,
            "suppressed_transmissions": 0,
            "silenced_receptions": 0,
        }

    # ------------------------------------------------------------------
    def clone(self) -> "FaultState":
        """An independent copy carrying the current energy ledger.

        Used by the validating runner so shadow networks start from the
        primary's exact mid-run state and then advance in lockstep.
        """
        twin = FaultState(self.schedule, self.n)
        twin.energy_remaining = self.energy_remaining.copy()
        twin.realized = dict(self.realized)
        return twin

    # ------------------------------------------------------------------
    def alive_window(
        self, start: int, width: int, cols: np.ndarray | None = None
    ) -> np.ndarray:
        """(width, k) bool: node up (joined, not crashed, not asleep)
        at each global step in ``[start, start + width)``.

        ``cols`` (sorted global node ids) restricts the columns to a
        member subset — same per-node values, compact layout.
        """
        steps = np.arange(start, start + width, dtype=np.int64)[:, None]
        join = self.join_step if cols is None else self.join_step[cols]
        crash = (
            self.crash_step if cols is None else self.crash_step[cols]
        )
        alive = (steps >= join[None, :]) & (steps < crash[None, :])
        stop_w = start + width
        for node, s0, s1 in self.sleeps:
            lo, hi = max(s0, start), min(s1, stop_w)
            if lo < hi:
                if cols is None:
                    alive[lo - start : hi - start, node] = False
                else:
                    loc, _ = _positions_in(cols, [node])
                    if loc.size:
                        alive[lo - start : hi - start, loc[0]] = False
        return alive

    def deaf_window(
        self,
        start: int,
        width: int,
        alive: np.ndarray,
        cols: np.ndarray | None = None,
    ) -> np.ndarray:
        """(width, k) bool: listeners forced to silence — down nodes
        plus jammed regions in ``[start, start + width)``; ``cols``
        restricts columns as in :meth:`alive_window`."""
        deaf = ~alive
        stop_w = start + width
        for jam in self.jams:
            lo, hi = max(jam.start, start), min(jam.stop, stop_w)
            if lo < hi:
                rows = slice(lo - start, hi - start)
                if jam.nodes is None:
                    deaf[rows, :] = True
                elif cols is None:
                    deaf[rows, list(jam.nodes)] = True
                else:
                    loc, _ = _positions_in(cols, list(jam.nodes))
                    if loc.size:
                        deaf[rows, loc] = True
        return deaf

    # ------------------------------------------------------------------
    def transform_window(
        self, masks: np.ndarray, start: int, cols: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intended (w, k) masks at global step ``start`` → effective
        masks + deaf mask; commits energy depletion and counters.

        Call exactly once per executed window/chunk, in execution
        order — energy carries across calls, everything else is
        stateless in the step index.

        ``cols`` (sorted global node ids) is the column-restricted
        form used by residual delivery: masks cover only the member
        columns, but every fault quantity stays keyed on **global**
        ids — suppression coins hash the global node id, the energy
        ledger debits global slots, jams and sleeps translate through
        member positions. A restricted window therefore realizes
        exactly the fault pattern of its full-width twin, provided the
        full-width intended masks are False outside ``cols`` (the
        residual support invariant — transmitters are always members).
        """
        width = masks.shape[0]
        alive = self.alive_window(start, width, cols)
        effective = masks & alive

        if self._scaled.size:
            if cols is None:
                loc = gids = self._scaled
            else:
                loc, gids = _positions_in(cols, self._scaled)
            sub = effective[:, loc]
            if sub.any():
                steps = np.arange(
                    start, start + width, dtype=np.uint64
                )[:, None]
                coins = _hash_uniform(
                    self.schedule.seed, steps, gids.astype(np.uint64)[None, :]
                )
                effective[:, loc] = sub & (
                    coins < self.tx_scale[gids][None, :]
                )

        if self._budgeted.size:
            if cols is None:
                loc = gids = self._budgeted
            else:
                loc, gids = _positions_in(cols, self._budgeted)
            sub = effective[:, loc]
            if sub.any():
                used = np.cumsum(sub, axis=0, dtype=np.int64)
                allowed = sub & (
                    used <= self.energy_remaining[gids][None, :]
                )
                effective[:, loc] = allowed
                self.energy_remaining[gids] -= allowed.sum(
                    axis=0, dtype=np.int64
                )

        deaf = self.deaf_window(start, width, alive, cols)
        self.realized["steps_faulted"] += int(width)
        self.realized["suppressed_transmissions"] += int(
            masks.sum() - effective.sum()
        )
        return effective, deaf

    def transform_step(
        self, transmit: np.ndarray, step: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-step form of :meth:`transform_window` (1-D in/out)."""
        effective, deaf = self.transform_window(transmit[None, :], step)
        return effective[0], deaf[0]

    # ------------------------------------------------------------------
    def transform_window_inplace(
        self, masks: np.ndarray, start: int, cols: np.ndarray | None = None
    ) -> None:
        """Fused-transform twin of :meth:`transform_window` (ISSUE 9).

        Turns the intended ``(w, k)`` masks into the effective masks
        **in place**, visiting only fault-affected columns — no alive
        mask, no ``masks & alive`` temporary, no second ``(w, k)``
        array. Same global-id + global-clock keying, same transform
        order (lifetime/sleep clears, then suppression coins, then
        energy), same energy ledger debit, and byte-identical realized
        counters: each stage only ever *clears* bits, so summing the
        bits each stage clears equals ``masks.sum() - effective.sum()``
        of the out-of-place form. The deaf side has no window-shaped
        output here — the pipeline path tests its (sparse) receptions
        point-wise with :meth:`deaf_at` instead. Call once per executed
        chunk, in execution order, exactly like
        :meth:`transform_window`.
        """
        width = masks.shape[0]
        suppressed = 0

        if self._bounded.size:
            if cols is None:
                loc = gids = self._bounded
            else:
                loc, gids = _positions_in(cols, self._bounded)
            for c, g in zip(loc, gids):
                lo = min(max(int(self.join_step[g]) - start, 0), width)
                hi = max(min(int(self.crash_step[g]) - start, width), 0)
                if lo > 0:
                    suppressed += int(masks[:lo, c].sum())
                    masks[:lo, c] = False
                if hi < width:
                    suppressed += int(masks[hi:, c].sum())
                    masks[hi:, c] = False

        stop_w = start + width
        for node, s0, s1 in self.sleeps:
            lo, hi = max(s0, start), min(s1, stop_w)
            if lo < hi:
                rows = slice(lo - start, hi - start)
                if cols is None:
                    c = node
                else:
                    pos, _ = _positions_in(cols, [node])
                    if not pos.size:
                        continue
                    c = pos[0]
                suppressed += int(masks[rows, c].sum())
                masks[rows, c] = False

        if self._scaled.size:
            if cols is None:
                loc = gids = self._scaled
            else:
                loc, gids = _positions_in(cols, self._scaled)
            sub = masks[:, loc]
            if sub.any():
                steps = np.arange(
                    start, start + width, dtype=np.uint64
                )[:, None]
                coins = _hash_uniform(
                    self.schedule.seed, steps, gids.astype(np.uint64)[None, :]
                )
                kept = sub & (coins < self.tx_scale[gids][None, :])
                suppressed += int(sub.sum() - kept.sum())
                masks[:, loc] = kept

        if self._budgeted.size:
            if cols is None:
                loc = gids = self._budgeted
            else:
                loc, gids = _positions_in(cols, self._budgeted)
            sub = masks[:, loc]
            if sub.any():
                used = np.cumsum(sub, axis=0, dtype=np.int64)
                allowed = sub & (
                    used <= self.energy_remaining[gids][None, :]
                )
                suppressed += int(sub.sum() - allowed.sum())
                masks[:, loc] = allowed
                self.energy_remaining[gids] -= allowed.sum(
                    axis=0, dtype=np.int64
                )

        self.realized["steps_faulted"] += int(width)
        self.realized["suppressed_transmissions"] += suppressed

    def deaf_at(
        self, steps: np.ndarray, nodes: np.ndarray
    ) -> np.ndarray:
        """Point-wise deafness test: ``deaf_window`` semantics for a
        sparse set of ``(global step, global node)`` reception pairs.

        Returns the bool drop mask (True = listener hears silence).
        The pipeline path filters its COO receptions with this and
        reports the drop count through :meth:`note_silenced`; the
        result matches indexing the window form —
        ``deaf_window(...)[steps - start, nodes]`` — entry for entry.
        """
        deaf = (steps < self.join_step[nodes]) | (
            steps >= self.crash_step[nodes]
        )
        for node, s0, s1 in self.sleeps:
            deaf |= (nodes == node) & (steps >= s0) & (steps < s1)
        for jam in self.jams:
            in_window = (steps >= jam.start) & (steps < jam.stop)
            if jam.nodes is None:
                deaf |= in_window
            elif in_window.any():
                deaf |= in_window & np.isin(
                    nodes, np.asarray(list(jam.nodes), dtype=np.int64)
                )
        return deaf

    def note_silenced(self, count: int) -> None:
        """Record receptions the hear transform masked to silence."""
        self.realized["silenced_receptions"] += int(count)

    # ------------------------------------------------------------------
    def uptime_fractions(self, horizon: int) -> np.ndarray:
        """Per-node fraction of ``[0, horizon)`` spent up.

        Each node knows its own uptime locally (its join/crash/sleep
        history is its own state); the vectorized form is simulator
        convenience, exactly like the protocols' batched coin flips.
        Jamming does not reduce uptime — a jammed node is up, just
        deafened.
        """
        if horizon < 1:
            raise ProtocolError(
                f"uptime horizon must be >= 1 step, got {horizon}"
            )
        up = np.clip(
            np.minimum(self.crash_step, horizon) - np.minimum(
                self.join_step, horizon
            ),
            0,
            horizon,
        ).astype(np.float64)
        for node, s0, s1 in self.sleeps:
            lo = max(s0, int(self.join_step[node]))
            hi = min(s1, int(min(self.crash_step[node], horizon)))
            if lo < hi:
                up[node] -= hi - lo
        return np.clip(up, 0.0, None) / float(horizon)


def node_uptime_fractions(network, horizon: int) -> np.ndarray:
    """Per-node uptime fractions over ``[0, horizon)`` for a network.

    All-ones when the network has no (or an empty) fault schedule —
    the fault-free limit in which every node is a perfect candidate.
    """
    state = getattr(network, "_fault_state", None)
    if state is None:
        if horizon < 1:
            raise ProtocolError(
                f"uptime horizon must be >= 1 step, got {horizon}"
            )
        return np.ones(network.n, dtype=np.float64)
    return state.uptime_fractions(horizon)


__all__ = ["FaultState", "node_uptime_fractions"]
