"""Unit disk graph generators.

Unit disk graphs (paper Section 1.3): nodes have positions in the
two-dimensional Euclidean plane and two nodes are adjacent iff their
distance is at most the communication radius (1 after rescaling). They
are the canonical geometric wireless model and are growth-bounded: an
independent set inside the ``r``-hop neighborhood of any node has
``O(r^2)`` size (disk packing).

All generators store positions in the node attribute ``"pos"`` so
downstream code (granularity, plotting, quasi-UDG comparisons) can reuse
them, and tag the graph with ``G.graph["family"]``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.spatial import cKDTree


def udg_from_points(points: np.ndarray, radius: float = 1.0) -> nx.Graph:
    """Build the unit disk graph of a point set.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of positions.
    radius:
        Communication radius; nodes within ``radius`` (inclusive) are
        adjacent.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) point array, got {points.shape}")
    n = len(points)
    graph = nx.Graph(family="udg", radius=float(radius))
    for i in range(n):
        graph.add_node(i, pos=(float(points[i, 0]), float(points[i, 1])))
    if n > 1:
        tree = cKDTree(points)
        for i, j in tree.query_pairs(r=radius):
            graph.add_edge(int(i), int(j))
    return graph


def random_udg(
    n: int,
    side: float,
    rng: np.random.Generator,
    radius: float = 1.0,
    connected: bool = True,
    max_attempts: int = 200,
) -> nx.Graph:
    """Random unit disk graph: ``n`` uniform points in ``[0, side]^2``.

    Parameters
    ----------
    n, side, radius:
        Point count, box side length, communication radius. Density is
        controlled by ``n / side**2``; diameter grows with ``side``.
    connected:
        If true (default), resample until the graph is connected — the
        broadcast and leader election problems require connectivity. With
        reasonable density this succeeds in a few attempts; after
        ``max_attempts`` failures a ``ValueError`` explains that the
        density is too low.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for _ in range(max_attempts):
        points = rng.uniform(0.0, side, size=(n, 2))
        graph = udg_from_points(points, radius=radius)
        if not connected or n == 1 or nx.is_connected(graph):
            return graph
    raise ValueError(
        f"could not sample a connected UDG with n={n}, side={side}, "
        f"radius={radius} in {max_attempts} attempts; increase density"
    )


def check_grid_jitter(
    jitter: float, spacing: float, radius: float
) -> None:
    """Refuse jitter that can disconnect a perturbed grid.

    Two adjacent grid points sit ``spacing`` apart; each may move by up
    to ``jitter`` toward or away from the other, so the worst-case gap
    is ``spacing + 2 * jitter``. Keeping that at most ``radius`` means
    ``jitter <= (radius - spacing) / 2`` — equality leaves the edge
    exactly at the (inclusive) radius, so it is allowed. (The bound is
    checked in the ``spacing + 2 * jitter`` form: the subtraction form
    rounds below 0.05 for the default ``spacing=0.9`` and would refuse
    the default jitter.)
    """
    if jitter < 0 or spacing + 2 * jitter > radius:
        raise ValueError(f"jitter {jitter} too large for spacing {spacing}")


def grid_udg(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    spacing: float = 0.9,
    jitter: float = 0.05,
    radius: float = 1.0,
) -> nx.Graph:
    """Perturbed-grid unit disk graph.

    Points on a ``rows x cols`` grid with the given spacing, each
    perturbed by uniform jitter. With ``spacing < radius`` the grid is
    connected by construction (up to jitter), giving deterministic-ish
    diameter ``Θ(rows + cols)`` — the workhorse for diameter sweeps in
    the E6 broadcast experiment.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    check_grid_jitter(jitter, spacing, radius)
    xs, ys = np.meshgrid(np.arange(cols), np.arange(rows))
    base = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float) * spacing
    noise = rng.uniform(-jitter, jitter, size=base.shape)
    graph = udg_from_points(base + noise, radius=radius)
    graph.graph["family"] = "grid-udg"
    return graph


def clustered_udg(
    n_clusters: int,
    cluster_size: int,
    rng: np.random.Generator,
    cluster_spread: float = 0.3,
    chain_spacing: float = 0.8,
    radius: float = 1.0,
) -> nx.Graph:
    """Chain of dense point clusters — high degree, large diameter.

    Cluster centers sit on a line ``chain_spacing`` apart; each cluster's
    points are Gaussian around its center. This produces UDGs where the
    maximum degree is much larger than needed for connectivity, the regime
    where Decay-style backoff matters.
    """
    if n_clusters < 1 or cluster_size < 1:
        raise ValueError("need at least one cluster with at least one point")
    blocks = []
    for c in range(n_clusters):
        center = np.array([c * chain_spacing, 0.0])
        blocks.append(
            center + rng.normal(scale=cluster_spread, size=(cluster_size, 2))
        )
    graph = udg_from_points(np.concatenate(blocks, axis=0), radius=radius)
    graph.graph["family"] = "clustered-udg"
    return graph


def granularity(graph: nx.Graph) -> float:
    """Granularity ``g`` of a UDG: inverse minimum pairwise distance.

    Defined by Emek et al. (paper Section 1.5.2); their deterministic
    bound ``Θ(min{D + g^2, D log g})`` is one of the comparisons the
    README discusses. Requires the graph to carry ``"pos"`` attributes.
    """
    positions = np.array([graph.nodes[v]["pos"] for v in graph.nodes], dtype=float)
    n = len(positions)
    if n < 2:
        raise ValueError("granularity needs at least two nodes")
    tree = cKDTree(positions)
    distances, _ = tree.query(positions, k=2)
    min_dist = float(distances[:, 1].min())
    if min_dist == 0.0:
        raise ValueError("coincident points: granularity is unbounded")
    return 1.0 / min_dist
