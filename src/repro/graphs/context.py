"""Per-graph cached invariants: the ``GraphContext`` engine cache.

Monte-Carlo experiments rerun the same pipeline on the same graph dozens
to thousands of times, and before this cache existed every trial paid
again for facts that never change between trials: the CSR adjacency
(rebuilt by every :class:`~repro.radio.network.RadioNetwork` and every
``Partition`` call), the degree vector, the diameter (an all-sources BFS
``compete`` recomputed per run), and a deterministic maximal independent
set for analyses that want a fixed center set.

:func:`graph_context` hands out one :class:`GraphContext` per graph
object, memoized in a :class:`weakref.WeakKeyDictionary` and invalidated
automatically when the graph's node/edge counts change. All cached
quantities are *randomness-free* — anything drawn from an ``rng`` (the
random-order MIS inside ``compete``, exponential shifts, ...) stays
per-trial by design, so caching never changes a distribution.

The CSR arrays use int32 indices (the layout the vectorized hot paths
in :mod:`repro.radio.network` and :mod:`repro.core.mpx` consume), and
BFS-style queries are routed through :mod:`scipy.sparse.csgraph` instead
of per-call networkx traversals.
"""

from __future__ import annotations

import weakref
from typing import Hashable, Iterable

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from .independence import greedy_independent_set, greedy_independent_set_csr

#: Sources per chunk when sweeping all-pairs BFS for the diameter; bounds
#: the dense distance block at ``_BFS_CHUNK * n`` float64 entries.
_BFS_CHUNK = 256

_CACHE: "weakref.WeakKeyDictionary[nx.Graph, GraphContext]" = (
    weakref.WeakKeyDictionary()
)


class GraphContext:
    """Cached structural facts of one graph, in CSR-native form.

    Build via :func:`graph_context` (which memoizes per graph object)
    rather than calling the constructor directly. All attributes are
    derived from the graph once; lazy properties compute on first access
    and are cached for the lifetime of the context.

    Attributes
    ----------
    n, m:
        Node and edge counts at construction time (used for staleness
        checks by :func:`graph_context`).
    nodelist:
        Node labels in graph iteration order; CSR row ``i`` corresponds
        to ``nodelist[i]``.
    indptr, indices:
        The int32 CSR adjacency of the graph over ``nodelist`` order.
        Symmetric: every undirected edge appears in both directions.
    degrees:
        Degree of each node, aligned with ``nodelist``.
    """

    def __init__(self, graph: nx.Graph) -> None:
        self._graph_ref = weakref.ref(graph)
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        # Array-native graphs (the corpus layer's CSRGraph) hand their
        # CSR over by reference — memmap/shared-memory views included —
        # instead of round-tripping through networkx conversion. They
        # are identity-labeled by contract.
        self._from_arrays = hasattr(graph, "csr_arrays")
        if self._from_arrays:
            self.nodelist = range(self.n)  # type: ignore[assignment]
            self._index: dict[Hashable, int] | None = None
            self.indptr, self.indices = graph.csr_arrays()
            self._csr = sp.csr_array(
                (
                    np.ones(len(self.indices), dtype=np.float64),
                    self.indices,
                    self.indptr,
                ),
                shape=(self.n, self.n),
            )
            self._identity_order = True
        else:
            self.nodelist: list[Hashable] = list(graph.nodes)
            self._index = {
                label: i for i, label in enumerate(self.nodelist)
            }
            if self.n:
                adj = nx.to_scipy_sparse_array(
                    graph, nodelist=self.nodelist, format="csr"
                )
                adj = (adj != 0).astype(np.float64)
                self.indptr = adj.indptr.astype(np.int32)
                self.indices = adj.indices.astype(np.int32)
                self._csr = sp.csr_array(
                    (adj.data, self.indices, self.indptr),
                    shape=(self.n, self.n),
                )
            else:
                self.indptr = np.zeros(1, dtype=np.int32)
                self.indices = np.zeros(0, dtype=np.int32)
                self._csr = sp.csr_array((0, 0), dtype=np.float64)
            self._identity_order = self.nodelist == list(range(self.n))
        self.degrees = np.diff(self.indptr).astype(np.int64)
        self._identity_csr: sp.csr_array | None = None
        self._edges: tuple[np.ndarray, np.ndarray] | None = None
        self._diameter: int | None = None
        self._connected: bool | None = None
        self._mis: list[Hashable] | None = None
        if self._from_arrays:
            # Stored invariants (corpus entries cache them alongside
            # the arrays) seed the lazy caches: a mmap-loaded graph
            # answers diameter/mis without recomputing.
            cached = getattr(graph, "invariants", None) or {}
            if "diameter" in cached:
                self._diameter = int(cached["diameter"])
            if "connected" in cached:
                self._connected = bool(cached["connected"])
            if "mis" in cached:
                self._mis = [int(v) for v in np.asarray(cached["mis"])]

    # ------------------------------------------------------------------
    # adjacency views
    # ------------------------------------------------------------------
    @property
    def csr(self) -> sp.csr_array:
        """Binary float64 CSR adjacency in ``nodelist`` order."""
        return self._csr

    @property
    def has_identity_labels(self) -> bool:
        """Whether iteration order is exactly ``0..n-1`` (label == row)."""
        return self._identity_order

    def identity_csr(self) -> sp.csr_array:
        """CSR adjacency with row ``i`` == node label ``i``.

        Requires integer labels ``0..n-1``; when iteration order already
        matches (the common case for the generators), this is
        :attr:`csr` itself, otherwise a relabeled copy is built once.
        """
        if self._identity_order:
            return self._csr
        if set(self.nodelist) != set(range(self.n)):
            raise ValueError(
                "identity_csr requires integer node labels 0..n-1"
            )
        if self._identity_csr is None:
            graph = self._require_graph()
            adj = nx.to_scipy_sparse_array(
                graph, nodelist=range(self.n), format="csr"
            )
            adj = (adj != 0).astype(np.float64)
            self._identity_csr = sp.csr_array(
                (
                    adj.data,
                    adj.indices.astype(np.int32),
                    adj.indptr.astype(np.int32),
                ),
                shape=(self.n, self.n),
            )
        return self._identity_csr

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Directed edge arrays ``(src, dst)`` covering both directions.

        Aligned with the CSR layout: ``src`` repeats each row index by
        its degree, ``dst`` is :attr:`indices`. Vectorized one-hop
        updates (``np.maximum.at`` style) consume these directly.
        """
        if self._edges is None:
            src = np.repeat(
                np.arange(self.n, dtype=np.int64), self.degrees
            )
            self._edges = (src, self.indices.astype(np.int64))
        return self._edges

    def index_of(self, label: Hashable) -> int:
        """CSR row of the node with this label."""
        if self._index is None:  # array-native: labels are rows
            row = int(label)
            if row != label or not 0 <= row < self.n:
                raise KeyError(label)
            return row
        return self._index[label]

    def induced_csr(
        self, members: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(indptr, indices)`` of the induced subgraph on ``members``.

        ``members`` are CSR row indices; the returned arrays describe
        the induced subgraph relabeled ``0..k-1`` in ``members`` order,
        sliced directly out of the cached parent CSR — no networkx
        subgraph/relabel copies. Callers that partition one subgraph
        repeatedly (Compete's fine clusterings slice each coarse
        cluster once and redraw ``len(j_range) * fine_per_j`` times)
        hold on to the returned arrays; nothing is memoized here, since
        member sets differ across calls in practice.
        """
        members = np.asarray(members, dtype=np.int64)
        k = members.size
        local = np.full(self.n, -1, dtype=np.int64)
        local[members] = np.arange(k)
        indptr64 = self.indptr.astype(np.int64)
        starts = indptr64[members]
        lens = indptr64[members + 1] - starts
        total = int(lens.sum())
        # Positions of the members' neighbor lists inside `indices`.
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens
        )
        cols = local[self.indices[np.arange(total) + offsets]]
        keep = cols >= 0
        row_of = np.repeat(np.arange(k), lens)
        counts = np.bincount(row_of[keep], minlength=k)
        sub_indptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int32)
        sub_indices = cols[keep].astype(np.int32)
        return sub_indptr, sub_indices

    # ------------------------------------------------------------------
    # cached graph facts
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (cached)."""
        if self._connected is None:
            if self.n <= 1:
                self._connected = True
            else:
                n_comp = csgraph.connected_components(
                    self._csr, directed=False, return_labels=False
                )
                self._connected = bool(n_comp == 1)
        return self._connected

    @property
    def diameter(self) -> int:
        """Exact diameter via chunked all-sources BFS (cached).

        Raises ``ValueError`` on the empty graph or a disconnected one,
        matching :func:`repro.graphs.properties.diameter`.
        """
        if self._diameter is None:
            if self.n == 0:
                raise ValueError("diameter of the empty graph is undefined")
            if self.n == 1:
                self._diameter = 0
                return 0
            if not self.is_connected():
                raise ValueError("diameter requires a connected graph")
            best = 0.0
            for start in range(0, self.n, _BFS_CHUNK):
                block = self.bfs_distances(
                    range(start, min(self.n, start + _BFS_CHUNK))
                )
                best = max(best, float(block.max()))
            self._diameter = int(best)
        return self._diameter

    def bfs_distances(self, sources: Iterable[int] | int) -> np.ndarray:
        """Unweighted BFS distances from ``sources`` (CSR row indices).

        Returns a float64 array (``inf`` for unreachable nodes), shaped
        ``(n,)`` for a scalar source and ``(len(sources), n)`` otherwise
        — the :func:`scipy.sparse.csgraph.dijkstra` convention.
        """
        return csgraph.dijkstra(
            self._csr, directed=False, unweighted=True, indices=sources
        )

    def mis(self) -> list[Hashable]:
        """A deterministic greedy maximal independent set (cached).

        The min-degree greedy of
        :func:`repro.graphs.independence.greedy_independent_set` — a
        fixed, randomness-free center set for analyses and oracles.
        Algorithms whose guarantees rely on a *random* MIS (``compete``)
        keep drawing their own per trial.
        """
        if self._mis is None:
            if self._from_arrays:
                self._mis = [
                    int(v)
                    for v in greedy_independent_set_csr(
                        self.indptr, self.indices
                    )
                ]
            else:
                self._mis = sorted(
                    greedy_independent_set(self._require_graph()),
                    key=lambda v: self._index[v],
                )
        return list(self._mis)

    def alpha_lower(self) -> int:
        """Greedy lower bound on the independence number ``alpha``."""
        return max(1, len(self.mis()))

    def _require_graph(self) -> nx.Graph:
        graph = self._graph_ref()
        if graph is None:
            raise RuntimeError(
                "GraphContext outlived its graph; rebuild via graph_context"
            )
        return graph


def graph_context(graph: nx.Graph) -> GraphContext:
    """The memoized :class:`GraphContext` of ``graph``.

    One context is cached per graph object (weakly, so contexts die with
    their graphs) and rebuilt automatically if the graph's node or edge
    count changes. Mutating a graph *in place while preserving both
    counts* is not detected — treat graphs handed to the pipeline as
    frozen, which every caller in this package does.
    """
    ctx = _CACHE.get(graph)
    if (
        ctx is None
        or ctx.n != graph.number_of_nodes()
        or ctx.m != graph.number_of_edges()
    ):
        ctx = GraphContext(graph)
        try:
            _CACHE[graph] = ctx
        except TypeError:  # pragma: no cover - non-weakrefable graph type
            pass
    return ctx


def distances_from(
    graph: nx.Graph, source: Hashable, context: GraphContext | None = None
) -> dict[Hashable, int]:
    """Hop distances from ``source`` to every reachable node.

    A drop-in replacement for
    ``nx.single_source_shortest_path_length(graph, source)`` that runs
    one :mod:`scipy.sparse.csgraph` BFS over the cached CSR; unreachable
    nodes are absent from the result, matching the networkx contract.
    """
    ctx = context if context is not None else graph_context(graph)
    dist = ctx.bfs_distances(ctx.index_of(source))
    reach = np.nonzero(np.isfinite(dist))[0]
    return {ctx.nodelist[i]: int(dist[i]) for i in reach}


__all__ = ["GraphContext", "graph_context", "distances_from"]
