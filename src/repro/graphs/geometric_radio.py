"""Geometric radio network generators.

Geometric radio networks (paper Section 1.3) give each node ``v`` a
position and a range ``r_v``; a *directed* edge goes from ``v`` to ``u``
when their distance is at most ``r_v``. They are growth-bounded when the
ratio between the largest and smallest range is constant. The paper's
scope is undirected graphs, so it restricts to the subclass of geometric
radio networks that are undirected — realized here by keeping exactly the
*mutual* pairs (distance at most ``min(r_u, r_v)``), which is the maximal
undirected subgraph of the directed reachability relation.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def directed_geometric_radio(
    points: np.ndarray, ranges: np.ndarray
) -> nx.DiGraph:
    """The raw *directed* geometric radio network of points and ranges.

    Provided for completeness and for tests that check the undirected
    extraction; the algorithms in this package do not run on directed
    graphs (matching the paper's scope).
    """
    points = np.asarray(points, dtype=float)
    ranges = np.asarray(ranges, dtype=float)
    if len(points) != len(ranges):
        raise ValueError(
            f"{len(points)} points but {len(ranges)} ranges; must match"
        )
    if np.any(ranges <= 0):
        raise ValueError("all ranges must be positive")
    n = len(points)
    digraph = nx.DiGraph(family="geometric-radio-directed")
    for i in range(n):
        digraph.add_node(
            i, pos=tuple(float(x) for x in points[i]), range=float(ranges[i])
        )
    if n > 1:
        diff = points[:, None, :] - points[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        reach = dist <= ranges[:, None]
        np.fill_diagonal(reach, False)
        rows, cols = np.nonzero(reach)
        digraph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return digraph


def undirected_geometric_radio(
    points: np.ndarray, ranges: np.ndarray
) -> nx.Graph:
    """Undirected geometric radio network: mutual-reachability edges only.

    An edge ``{u, v}`` exists iff each endpoint is within the other's
    range, i.e. ``dist(u, v) <= min(r_u, r_v)``. This is the subclass the
    paper's algorithms address.
    """
    points = np.asarray(points, dtype=float)
    ranges = np.asarray(ranges, dtype=float)
    if len(points) != len(ranges):
        raise ValueError(
            f"{len(points)} points but {len(ranges)} ranges; must match"
        )
    if np.any(ranges <= 0):
        raise ValueError("all ranges must be positive")
    n = len(points)
    graph = nx.Graph(family="geometric-radio")
    for i in range(n):
        graph.add_node(
            i, pos=tuple(float(x) for x in points[i]), range=float(ranges[i])
        )
    if n > 1:
        diff = points[:, None, :] - points[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        mutual = dist <= np.minimum(ranges[:, None], ranges[None, :])
        np.fill_diagonal(mutual, False)
        rows, cols = np.nonzero(np.triu(mutual, k=1))
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


def random_geometric_radio(
    n: int,
    side: float,
    rng: np.random.Generator,
    range_min: float = 0.8,
    range_max: float = 1.2,
    connected: bool = True,
    max_attempts: int = 200,
) -> nx.Graph:
    """Random undirected geometric radio network.

    Uniform points in ``[0, side]^2`` with per-node ranges uniform in
    ``[range_min, range_max]``; a bounded ratio ``range_max/range_min``
    keeps the class growth-bounded (paper Section 1.3).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 < range_min <= range_max:
        raise ValueError(
            f"need 0 < range_min <= range_max, got {range_min}, {range_max}"
        )
    for _ in range(max_attempts):
        points = rng.uniform(0.0, side, size=(n, 2))
        ranges = rng.uniform(range_min, range_max, size=n)
        graph = undirected_geometric_radio(points, ranges)
        if not connected or n == 1 or nx.is_connected(graph):
            return graph
    raise ValueError(
        f"could not sample a connected geometric radio network with n={n}, "
        f"side={side} in {max_attempts} attempts; increase density"
    )
