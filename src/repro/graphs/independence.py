"""Independence number computation and estimation.

The paper's algorithms are parametrized by the independence number
``alpha`` (maximum independent set size), and only need "any polynomial
approximation" of it (Section 1.1). This module provides:

* :func:`exact_independence_number` — exact branch-and-bound with
  reductions, practical to a few hundred nodes on the families used here;
* :func:`greedy_independent_set` — a maximal independent set via greedy
  orders (a lower bound on ``alpha``, and a valid MIS for oracle uses);
* :func:`independence_number_bounds` — certified lower and upper bounds
  (best-of-k greedy vs. greedy clique cover / matching bounds);
* :func:`alpha_estimate` — the estimate the algorithms consume.

The branch-and-bound uses the classic recurrence
``alpha(G) = max(1 + alpha(G - N[v]), alpha(G - v))`` on a maximum-degree
vertex ``v``, after exhaustive degree-0/degree-1 reductions (both are
always safe to take into the set), with a greedy-clique-cover upper bound
for pruning.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx
import numpy as np


def greedy_independent_set(
    graph: nx.Graph,
    rng: np.random.Generator | None = None,
    strategy: str = "min-degree",
) -> set[Hashable]:
    """Build a maximal independent set greedily.

    Parameters
    ----------
    graph:
        Any undirected graph (may be disconnected or empty).
    rng:
        Required for ``strategy="random"``; ignored otherwise.
    strategy:
        ``"min-degree"`` — repeatedly take a minimum-degree vertex
        (classic ``alpha``-approximation heuristic); ``"random"`` — take
        vertices in a uniformly random order.

    Returns
    -------
    set
        A *maximal* independent set (every vertex outside has a neighbor
        inside), hence a lower bound witness for ``alpha``.
    """
    if strategy not in ("min-degree", "random"):
        raise ValueError(f"unknown strategy: {strategy!r}")
    if strategy == "random" and rng is None:
        raise ValueError("strategy='random' requires an rng")

    chosen: set[Hashable] = set()
    if strategy == "random":
        order = list(graph.nodes)
        rng.shuffle(order)  # type: ignore[union-attr]
        blocked: set[Hashable] = set()
        for v in order:
            if v not in blocked:
                chosen.add(v)
                blocked.add(v)
                blocked.update(graph.neighbors(v))
        return chosen

    # min-degree: work on degree bookkeeping over a shrinking vertex set.
    alive = set(graph.nodes)
    degree = {v: graph.degree(v) for v in alive}
    while alive:
        v = min(alive, key=lambda u: (degree[u], _stable_key(u)))
        chosen.add(v)
        removed = {v} | (set(graph.neighbors(v)) & alive)
        alive -= removed
        for u in removed:
            for w in graph.neighbors(u):
                if w in alive:
                    degree[w] -= 1
    return chosen


def _stable_key(v: Hashable) -> str:
    """Deterministic tiebreak usable across mixed label types."""
    return repr(v)


def greedy_independent_set_csr(
    indptr: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Min-degree greedy MIS over CSR arrays (identity-labeled nodes).

    Replicates :func:`greedy_independent_set` with
    ``strategy="min-degree"`` exactly: the same minimum-degree rule
    with the same tiebreak — lexicographic on ``repr(node)``, so for
    integer labels ``"10" < "2"`` — via a lazy-deletion heap instead
    of a linear ``min`` scan over the shrinking vertex set. Returns
    the chosen nodes as a sorted int64 array (the
    :meth:`~repro.graphs.context.GraphContext.mis` order).
    """
    import heapq

    n = len(indptr) - 1
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # rank[v] = position of repr(v) in the sorted repr order — the
    # heap then compares (degree, rank) exactly as the reference
    # compares (degree, repr).
    reprs = np.array([repr(v) for v in range(n)])
    rank = np.empty(n, dtype=np.int64)
    rank[np.argsort(reprs)] = np.arange(n)

    degree = np.diff(indptr).astype(np.int64)
    alive = np.ones(n, dtype=bool)
    heap = [(int(degree[v]), int(rank[v]), v) for v in range(n)]
    heapq.heapify(heap)
    chosen = []
    while heap:
        deg, _, v = heapq.heappop(heap)
        if not alive[v] or degree[v] != deg:
            continue  # stale entry: v removed or its degree decayed
        chosen.append(v)
        neighbors = indices[indptr[v] : indptr[v + 1]]
        removed = [v] + [int(u) for u in neighbors if alive[u]]
        alive[removed] = False
        for u in removed:
            for w in indices[indptr[u] : indptr[u + 1]].tolist():
                if alive[w]:
                    degree[w] -= 1
                    heapq.heappush(
                        heap, (int(degree[w]), int(rank[w]), w)
                    )
    chosen.sort()
    return np.asarray(chosen, dtype=np.int64)


def _greedy_clique_cover_bound(graph: nx.Graph, nodes: set[Hashable]) -> int:
    """Upper bound on ``alpha(G[nodes])`` via a greedy clique cover.

    Any partition of the vertices into cliques has at least ``alpha``
    parts (an independent set meets each clique at most once), so the
    number of parts found by greedily growing cliques is a valid upper
    bound.
    """
    remaining = set(nodes)
    cliques = 0
    while remaining:
        v = next(iter(remaining))
        clique = {v}
        # Grow the clique greedily among candidates adjacent to all members.
        candidates = set(graph.neighbors(v)) & remaining
        while candidates:
            u = candidates.pop()
            clique.add(u)
            candidates &= set(graph.neighbors(u))
        remaining -= clique
        cliques += 1
    return cliques


def _reduce(graph: nx.Graph, nodes: set[Hashable]) -> tuple[int, set[Hashable]]:
    """Exhaustive safe reductions.

    * degree-0 (isolated): always take;
    * degree-1 (pendant): taking the pendant is always optimal;
    * dominance: if ``N[u] subseteq N[v]`` for an edge ``{u, v}``, some
      maximum independent set avoids ``v`` — delete ``v``. (Any IS using
      ``v`` can swap it for ``u``.) This is the reduction that makes
      geometric graphs tractable: dense disk neighborhoods are full of
      dominated vertices.
    """
    taken = 0
    nodes = set(nodes)
    changed = True
    while changed:
        changed = False
        for v in list(nodes):
            if v not in nodes:
                continue
            live_neighbors = [u for u in graph.neighbors(v) if u in nodes]
            if len(live_neighbors) == 0:
                # Isolated vertex: always take it.
                nodes.discard(v)
                taken += 1
                changed = True
            elif len(live_neighbors) == 1:
                # Degree-1 vertex: taking it is always optimal.
                nodes.discard(v)
                nodes.discard(live_neighbors[0])
                taken += 1
                changed = True
        if changed:
            continue
        # Dominance pass (only when cheap rules are exhausted).
        for v in list(nodes):
            if v not in nodes:
                continue
            closed_v = {v} | {u for u in graph.neighbors(v) if u in nodes}
            for u in closed_v - {v}:
                closed_u = {u} | {
                    w for w in graph.neighbors(u) if w in nodes
                }
                if closed_u <= closed_v:
                    nodes.discard(v)
                    changed = True
                    break
    return taken, nodes


def _components_of(graph: nx.Graph, nodes: set[Hashable]) -> list[set[Hashable]]:
    """Connected components of the induced subgraph on ``nodes``."""
    remaining = set(nodes)
    components = []
    while remaining:
        seed = next(iter(remaining))
        comp = {seed}
        frontier = [seed]
        while frontier:
            u = frontier.pop()
            for w in graph.neighbors(u):
                if w in remaining and w not in comp:
                    comp.add(w)
                    frontier.append(w)
        components.append(comp)
        remaining -= comp
    return components


def _cheap_greedy(graph: nx.Graph, nodes: set[Hashable]) -> int:
    """Fast maximal-IS size lower bound (arbitrary order, O(E))."""
    blocked: set[Hashable] = set()
    size = 0
    for v in nodes:
        if v not in blocked:
            size += 1
            blocked.add(v)
            blocked.update(u for u in graph.neighbors(v) if u in nodes)
    return size


def _exact_alpha_set(graph: nx.Graph, nodes: set[Hashable]) -> int:
    """Exact ``alpha(G[nodes])``: reduce, split into components, solve."""
    taken, nodes = _reduce(graph, nodes)
    total = taken
    for comp in _components_of(graph, nodes):
        greedy = _cheap_greedy(graph, comp)
        total += max(greedy, _exact_alpha_recursive(graph, comp, greedy))
    return total


def _exact_alpha_recursive(
    graph: nx.Graph, nodes: set[Hashable], best_so_far: int
) -> int:
    """Branch-and-bound on one connected piece.

    Contract: returns ``alpha(G[nodes])`` exactly whenever that exceeds
    ``best_so_far``; otherwise any value at most ``best_so_far`` may be
    returned (the caller holds an incumbent of that size).
    """
    taken, nodes = _reduce(graph, nodes)
    if not nodes:
        return taken

    # Reductions (or the caller's vertex removals) may have split the
    # piece; components are independent subproblems and solving them
    # separately collapses the search tree — crucial on geometric graphs
    # where deleting a closed neighborhood disconnects the region.
    components = _components_of(graph, nodes)
    if len(components) > 1:
        return taken + sum(
            max(
                _cheap_greedy(graph, comp),
                _exact_alpha_recursive(
                    graph, comp, _cheap_greedy(graph, comp)
                ),
            )
            for comp in components
        )

    # --- bound ----------------------------------------------------------
    upper = taken + _greedy_clique_cover_bound(graph, nodes)
    if upper <= best_so_far:
        return 0  # cannot beat the incumbent; prune

    # --- branch on a maximum-degree vertex -------------------------------
    v = max(
        nodes,
        key=lambda u: (
            sum(1 for w in graph.neighbors(u) if w in nodes),
            _stable_key(u),
        ),
    )
    closed = {v} | (set(graph.neighbors(v)) & nodes)

    with_v = taken + 1 + _exact_alpha_recursive(
        graph, nodes - closed, best_so_far - taken - 1
    )
    best = max(best_so_far, with_v)
    without_v = taken + _exact_alpha_recursive(graph, nodes - {v}, best - taken)
    return max(with_v, without_v)


def exact_independence_number(graph: nx.Graph, max_nodes: int = 400) -> int:
    """Exact independence number by branch-and-bound.

    Parameters
    ----------
    graph:
        Any undirected graph.
    max_nodes:
        Safety limit; exact computation is exponential in the worst case
        and this guard forces callers to opt in for large instances.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    if n > max_nodes:
        raise ValueError(
            f"exact alpha requested for n={n} > max_nodes={max_nodes}; "
            "use independence_number_bounds or raise max_nodes explicitly"
        )
    return _exact_alpha_set(graph, set(graph.nodes))


def independence_number_bounds(
    graph: nx.Graph,
    rng: np.random.Generator,
    greedy_tries: int = 8,
) -> tuple[int, int]:
    """Certified ``(lower, upper)`` bounds on ``alpha``.

    Lower: the best of ``greedy_tries`` random greedy maximal independent
    sets and one min-degree greedy run. Upper: the smaller of the greedy
    clique cover bound and the matching bound ``n - |maximum matching|``
    (each matching edge kills at least one vertex of any independent set).
    """
    n = graph.number_of_nodes()
    if n == 0:
        return (0, 0)
    lower = len(greedy_independent_set(graph, strategy="min-degree"))
    for _ in range(greedy_tries):
        lower = max(
            lower, len(greedy_independent_set(graph, rng, strategy="random"))
        )
    cover = _greedy_clique_cover_bound(graph, set(graph.nodes))
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    upper = min(cover, n - len(matching))
    return (lower, max(lower, upper))


def alpha_estimate(graph: nx.Graph, rng: np.random.Generator) -> int:
    """The ``alpha`` estimate handed to the paper's algorithms.

    The paper only needs a polynomial approximation of ``alpha``
    (Section 1.1); we use the certified lower bound of
    :func:`independence_number_bounds`, which on the growth-bounded
    families here is within a constant factor of the truth and is always
    a valid independent-set size.
    """
    lower, _ = independence_number_bounds(graph, rng)
    return max(1, lower)


def is_independent_set(graph: nx.Graph, nodes: Iterable[Hashable]) -> bool:
    """Whether ``nodes`` is an independent set of ``graph``."""
    nodes = set(nodes)
    return not any(
        u in nodes and v in nodes for u, v in graph.edges
    )


def is_maximal_independent_set(graph: nx.Graph, nodes: Iterable[Hashable]) -> bool:
    """Whether ``nodes`` is independent *and* maximal (dominating)."""
    nodes = set(nodes)
    if not is_independent_set(graph, nodes):
        return False
    for v in graph.nodes:
        if v in nodes:
            continue
        if not any(u in nodes for u in graph.neighbors(v)):
            return False
    return True
