"""Graph classes and structural properties (paper Section 1.3).

Generators for every geometric-derived class the paper discusses (unit
disk, quasi unit disk, unit ball, quasi unit ball, geometric radio
networks) and the general-graph families its general results address,
plus independence-number and growth-boundedness tooling.
"""

from .context import GraphContext, distances_from, graph_context
from .general import (
    barbell,
    caterpillar,
    clique,
    clique_chain,
    connected_gnp,
    cycle,
    lollipop,
    path,
    random_tree,
    star,
)
from .hard_instances import (
    layered_barrier,
    star_of_cliques,
    two_cliques_bottleneck,
)
from .geometric_radio import (
    directed_geometric_radio,
    random_geometric_radio,
    undirected_geometric_radio,
)
from .independence import (
    alpha_estimate,
    exact_independence_number,
    greedy_independent_set,
    independence_number_bounds,
    is_independent_set,
    is_maximal_independent_set,
)
from .metrics import (
    EuclideanBox,
    FlatTorus,
    ManhattanBox,
    MetricSpace,
    estimate_doubling_constant,
)
from .properties import (
    GraphSummary,
    ball,
    ball_independence_profile,
    diameter,
    growth_exponent,
    log_base_d,
    summarize,
)
from .quasi_udg import (
    bernoulli_rule,
    distance_threshold_rule,
    parity_rule,
    qudg_from_points,
    random_qudg,
)
from .udg import clustered_udg, granularity, grid_udg, random_udg, udg_from_points
from .unit_ball import (
    quasi_unit_ball_graph,
    random_unit_ball_graph,
    unit_ball_graph,
)

__all__ = [
    "EuclideanBox",
    "FlatTorus",
    "GraphContext",
    "GraphSummary",
    "ManhattanBox",
    "MetricSpace",
    "alpha_estimate",
    "ball",
    "ball_independence_profile",
    "barbell",
    "bernoulli_rule",
    "caterpillar",
    "clique",
    "clique_chain",
    "clustered_udg",
    "connected_gnp",
    "cycle",
    "diameter",
    "directed_geometric_radio",
    "distance_threshold_rule",
    "distances_from",
    "estimate_doubling_constant",
    "exact_independence_number",
    "granularity",
    "graph_context",
    "greedy_independent_set",
    "grid_udg",
    "growth_exponent",
    "independence_number_bounds",
    "is_independent_set",
    "is_maximal_independent_set",
    "layered_barrier",
    "lollipop",
    "log_base_d",
    "parity_rule",
    "path",
    "qudg_from_points",
    "quasi_unit_ball_graph",
    "random_geometric_radio",
    "random_qudg",
    "random_tree",
    "random_udg",
    "random_unit_ball_graph",
    "star",
    "star_of_cliques",
    "summarize",
    "two_cliques_bottleneck",
    "udg_from_points",
    "undirected_geometric_radio",
    "unit_ball_graph",
]
