"""Unit ball graph generators over arbitrary metric spaces.

Unit ball graphs (paper Section 1.3) generalize unit disk graphs: nodes
live in any metric space and are adjacent iff their distance is at most 1
(after rescaling). They are growth-bounded whenever the metric space is
doubling, with independent sets in ``d``-hop neighborhoods of size
``d^O(b)`` for doubling constant ``b``. Quasi unit ball graphs relax the
edge rule with inner/outer radii exactly as quasi unit disk graphs do.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .metrics import MetricSpace


def unit_ball_graph(
    space: MetricSpace,
    points: np.ndarray,
    radius: float = 1.0,
) -> nx.Graph:
    """Build the unit ball graph of a point set in ``space``.

    Nodes ``0..n-1`` carry their coordinates in the ``"pos"`` attribute.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    graph = nx.Graph(family="unit-ball", radius=float(radius))
    for i in range(n):
        graph.add_node(i, pos=tuple(float(x) for x in points[i]))
    if n > 1:
        dist = space.pairwise_distances(points)
        rows, cols = np.nonzero(np.triu(dist <= radius, k=1))
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


def random_unit_ball_graph(
    space: MetricSpace,
    n: int,
    rng: np.random.Generator,
    radius: float = 1.0,
    connected: bool = True,
    max_attempts: int = 200,
) -> nx.Graph:
    """Unit ball graph on ``n`` points sampled uniformly from ``space``.

    Retries until connected when ``connected`` is set, mirroring
    :func:`repro.graphs.udg.random_udg`.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for _ in range(max_attempts):
        points = space.sample(n, rng)
        graph = unit_ball_graph(space, points, radius=radius)
        if not connected or n == 1 or nx.is_connected(graph):
            return graph
    raise ValueError(
        f"could not sample a connected unit ball graph with n={n} in "
        f"{max_attempts} attempts; enlarge radius or shrink the space"
    )


def quasi_unit_ball_graph(
    space: MetricSpace,
    points: np.ndarray,
    r: float,
    R: float,
    rng: np.random.Generator,
    annulus_probability: float = 0.5,
) -> nx.Graph:
    """Quasi unit ball graph: must-connect below ``r``, never above ``R``.

    Annulus pairs (distance in ``(r, R]``) get an edge independently with
    ``annulus_probability`` — the Bernoulli instantiation of the
    definition's adversarial freedom.
    """
    if not 0 < r <= R:
        raise ValueError(f"need 0 < r <= R, got r={r}, R={R}")
    if not 0.0 <= annulus_probability <= 1.0:
        raise ValueError(
            f"annulus probability must be in [0, 1], got {annulus_probability}"
        )
    points = np.asarray(points, dtype=float)
    n = len(points)
    graph = nx.Graph(family="quasi-unit-ball", r=float(r), R=float(R))
    for i in range(n):
        graph.add_node(i, pos=tuple(float(x) for x in points[i]))
    if n > 1:
        dist = space.pairwise_distances(points)
        upper = np.triu(np.ones_like(dist, dtype=bool), k=1)
        must = upper & (dist <= r)
        annulus = upper & (dist > r) & (dist <= R)
        coin = rng.random(size=dist.shape) < annulus_probability
        chosen = must | (annulus & coin)
        rows, cols = np.nonzero(chosen)
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph
