"""General-graph families for the general-graph results.

The paper's algorithms run on arbitrary undirected graphs; the
independence-number parametrization means their behavior is governed by
``alpha`` relative to ``D``. These generators span the interesting
regimes:

* ``alpha`` tiny, ``D`` large — :func:`clique_chain` (alpha ~ D, the
  "general graph that behaves geometrically" case);
* ``alpha`` huge, ``D`` tiny — :func:`star` and dense :func:`connected_gnp`
  (where the parametrization degenerates to the [7] bound);
* ``alpha ~ n/2``, ``D ~ n`` — :func:`path`, :func:`random_tree`;
* pathological mixtures — :func:`barbell`, :func:`caterpillar`,
  :func:`lollipop`.

All generators label nodes ``0..n-1`` and tag ``G.graph["family"]``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def _tagged(graph: nx.Graph, family: str) -> nx.Graph:
    relabeled = nx.convert_node_labels_to_integers(graph)
    relabeled.graph["family"] = family
    return relabeled


def path(n: int) -> nx.Graph:
    """Path on ``n`` nodes: ``D = n - 1``, ``alpha = ceil(n/2)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return _tagged(nx.path_graph(n), "path")


def cycle(n: int) -> nx.Graph:
    """Cycle on ``n`` nodes: ``D = floor(n/2)``, ``alpha = floor(n/2)``."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    return _tagged(nx.cycle_graph(n), "cycle")


def clique(n: int) -> nx.Graph:
    """Clique on ``n`` nodes: ``D = 1``, ``alpha = 1``.

    Single-hop networks; MIS on a clique is equivalent to leader election
    (paper Section 1.5.1), making cliques the canonical MIS stress test.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return _tagged(nx.complete_graph(n), "clique")


def star(n: int) -> nx.Graph:
    """Star with ``n - 1`` leaves: ``D = 2``, ``alpha = n - 1``.

    The extreme high-``alpha`` instance: here the independence-number
    parametrization gives no advantage over the ``n`` parametrization.
    """
    if n < 2:
        raise ValueError(f"star needs n >= 2, got {n}")
    return _tagged(nx.star_graph(n - 1), "star")


def connected_gnp(
    n: int,
    p: float,
    rng: np.random.Generator,
    max_attempts: int = 200,
) -> nx.Graph:
    """Erdos-Renyi ``G(n, p)`` conditioned on connectivity (by resampling).

    Above the connectivity threshold ``p ~ ln(n)/n`` this succeeds
    quickly; far below it a ``ValueError`` reports the failure rather
    than silently altering the distribution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    for _ in range(max_attempts):
        seed = int(rng.integers(2**31 - 1))
        graph = nx.gnp_random_graph(n, p, seed=seed)
        if n == 1 or nx.is_connected(graph):
            return _tagged(graph, "gnp")
    raise ValueError(
        f"no connected G({n}, {p}) in {max_attempts} attempts; "
        "p is likely below the connectivity threshold"
    )


def random_tree(n: int, rng: np.random.Generator) -> nx.Graph:
    """Uniformly random labeled tree on ``n`` nodes."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n <= 2:
        return _tagged(nx.path_graph(n), "tree")
    seed = int(rng.integers(2**31 - 1))
    return _tagged(nx.random_labeled_tree(n, seed=seed), "tree")


def clique_chain(n_cliques: int, clique_size: int) -> nx.Graph:
    """Chain of cliques joined by single bridge edges.

    ``alpha = n_cliques`` (one node per clique) while ``D ~ 2 n_cliques``
    and ``n = n_cliques * clique_size``: a *general* (non-geometric) graph
    with ``alpha = Θ(D)``, i.e. exactly the regime where the paper's
    ``O(D log_D alpha)`` bound beats the ``O(D log_D n)`` of [7]. The
    headline E6 benchmark sweeps this family.
    """
    if n_cliques < 1 or clique_size < 1:
        raise ValueError("need at least one clique of at least one node")
    graph = nx.Graph()
    for c in range(n_cliques):
        members = [c * clique_size + i for i in range(clique_size)]
        graph.add_nodes_from(members)
        graph.add_edges_from(
            (members[i], members[j])
            for i in range(clique_size)
            for j in range(i + 1, clique_size)
        )
        if c > 0:
            # Bridge from the last node of the previous clique.
            graph.add_edge(c * clique_size - 1, members[0])
    return _tagged(graph, "clique-chain")


def barbell(bell_size: int, bridge_length: int) -> nx.Graph:
    """Two cliques joined by a path: ``alpha ~ bridge/2 + 2``."""
    if bell_size < 2:
        raise ValueError(f"bells need >= 2 nodes, got {bell_size}")
    if bridge_length < 0:
        raise ValueError(f"bridge length must be >= 0, got {bridge_length}")
    return _tagged(nx.barbell_graph(bell_size, bridge_length), "barbell")


def lollipop(clique_size: int, path_length: int) -> nx.Graph:
    """Clique with a path attached (asymmetric alpha-vs-D structure)."""
    if clique_size < 2:
        raise ValueError(f"clique needs >= 2 nodes, got {clique_size}")
    if path_length < 0:
        raise ValueError(f"path length must be >= 0, got {path_length}")
    return _tagged(nx.lollipop_graph(clique_size, path_length), "lollipop")


def caterpillar(spine: int, legs_per_node: int) -> nx.Graph:
    """Path of ``spine`` nodes, each with ``legs_per_node`` pendant leaves.

    ``alpha = spine * legs_per_node`` (all the leaves, for
    ``legs_per_node >= 1``) with ``D = spine + 1``: tunable ``alpha/D``
    ratio at fixed shape.
    """
    if spine < 1:
        raise ValueError(f"spine must be >= 1, got {spine}")
    if legs_per_node < 0:
        raise ValueError(f"legs_per_node must be >= 0, got {legs_per_node}")
    graph = nx.path_graph(spine)
    next_label = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(v, next_label)
            next_label += 1
    return _tagged(graph, "caterpillar")
