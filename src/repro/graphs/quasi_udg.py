"""Quasi unit disk graph generators.

Quasi unit disk graphs (paper Section 1.3) relax the unit disk edge rule:
for parameters ``r < R``, nodes closer than ``r`` *must* be adjacent,
nodes farther than ``R`` *must not* be, and pairs in the annulus
``(r, R]`` may or may not be — the adversary (or, here, a configurable
rule) decides. With ``R/r`` constant they remain growth-bounded: any
independent set within graph distance ``d`` of a node fits in a disk of
radius ``dR`` with pairwise separation ``> r``, so has ``O((dR/r)^2)``
size.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx
import numpy as np
from scipy.spatial import cKDTree

AnnulusRule = Callable[[int, int, float, np.random.Generator], bool]
"""Decides whether an annulus pair ``(u, v)`` at distance ``d`` gets an edge."""


def bernoulli_rule(p: float) -> AnnulusRule:
    """Annulus rule: include each annulus edge independently w.p. ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")

    def rule(u: int, v: int, d: float, rng: np.random.Generator) -> bool:
        return bool(rng.random() < p)

    return rule


def distance_threshold_rule(threshold: float) -> AnnulusRule:
    """Annulus rule: include the edge iff distance is below ``threshold``.

    With ``threshold`` between ``r`` and ``R`` this gives a *deterministic*
    quasi-UDG (it is simply a UDG with radius ``threshold``), useful as a
    degenerate sanity case in tests.
    """

    def rule(u: int, v: int, d: float, rng: np.random.Generator) -> bool:
        return d < threshold

    return rule


def parity_rule() -> AnnulusRule:
    """Adversarial-flavored deterministic rule: edge iff ``u + v`` is even.

    Produces annulus decisions uncorrelated with geometry, exercising the
    "may or may not be an edge" freedom of the definition without
    randomness (handy for reproducible adversarial tests).
    """

    def rule(u: int, v: int, d: float, rng: np.random.Generator) -> bool:
        return (u + v) % 2 == 0

    return rule


def qudg_from_points(
    points: np.ndarray,
    r: float,
    R: float,
    rng: np.random.Generator,
    annulus_rule: AnnulusRule | None = None,
) -> nx.Graph:
    """Build a quasi unit disk graph over a point set.

    Parameters
    ----------
    points:
        ``(n, 2)`` position array.
    r, R:
        Inner (must-connect) and outer (may-connect) radii, ``0 < r <= R``.
    annulus_rule:
        Decides annulus pairs; defaults to :func:`bernoulli_rule` with
        probability 0.5.
    """
    if not 0 < r <= R:
        raise ValueError(f"need 0 < r <= R, got r={r}, R={R}")
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) point array, got {points.shape}")
    if annulus_rule is None:
        annulus_rule = bernoulli_rule(0.5)

    n = len(points)
    graph = nx.Graph(family="quasi-udg", r=float(r), R=float(R))
    for i in range(n):
        graph.add_node(i, pos=(float(points[i, 0]), float(points[i, 1])))
    if n > 1:
        tree = cKDTree(points)
        for i, j in tree.query_pairs(r=R):
            d = float(np.linalg.norm(points[i] - points[j]))
            if d <= r or annulus_rule(int(i), int(j), d, rng):
                graph.add_edge(int(i), int(j))
    return graph


def random_qudg(
    n: int,
    side: float,
    rng: np.random.Generator,
    r: float = 0.7,
    R: float = 1.0,
    annulus_rule: AnnulusRule | None = None,
    connected: bool = True,
    max_attempts: int = 200,
) -> nx.Graph:
    """Random quasi unit disk graph on uniform points in ``[0, side]^2``.

    Mirrors :func:`repro.graphs.udg.random_udg`; see there for the
    ``connected`` retry semantics.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for _ in range(max_attempts):
        points = rng.uniform(0.0, side, size=(n, 2))
        graph = qudg_from_points(points, r=r, R=R, rng=rng, annulus_rule=annulus_rule)
        if not connected or n == 1 or nx.is_connected(graph):
            return graph
    raise ValueError(
        f"could not sample a connected quasi-UDG with n={n}, side={side}, "
        f"r={r}, R={R} in {max_attempts} attempts; increase density"
    )
