"""Metric spaces for unit ball graph generation.

The paper's unit ball graphs (Section 1.3) extend unit disk graphs to an
arbitrary metric space, and are growth-bounded whenever that space is
*doubling*: a space is doubling with constant ``b`` if every ball of
radius ``r`` can be covered by at most ``b`` balls of radius ``r/2``.

A metric space here is a point sampler plus a distance function
(:class:`MetricSpace`). Concrete spaces: Euclidean boxes of any dimension,
flat tori (no boundary effects), and the Manhattan/grid metric. All are
doubling with dimension-dependent constants;
:func:`estimate_doubling_constant` measures this empirically, which the
E9 graph-class experiment reports.
"""

from __future__ import annotations

import abc

import numpy as np


class MetricSpace(abc.ABC):
    """A metric space points can be sampled from.

    Concrete subclasses provide uniform sampling over a bounded region and
    a vectorized distance function. Points are rows of a 2-D float array.
    """

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` points uniformly; returns an ``(n, dim)`` array."""

    @abc.abstractmethod
    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        """Full ``(n, n)`` distance matrix for the given points."""

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between two single points."""
        d = self.pairwise_distances(np.stack([p, q]))
        return float(d[0, 1])


class EuclideanBox(MetricSpace):
    """Euclidean metric on an axis-aligned box ``[0, side]^dim``.

    The classical setting: 2-D gives unit disk graphs, higher dimensions
    give unit ball graphs in fixed-dimensional Euclidean space (doubling
    constant ``2^O(dim)``).
    """

    def __init__(self, dim: int = 2, side: float = 1.0) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.dim = dim
        self.side = side

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.side, size=(n, self.dim))

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        diff = points[:, None, :] - points[None, :, :]
        return np.sqrt((diff**2).sum(axis=-1))


class FlatTorus(MetricSpace):
    """Euclidean metric on a flat torus ``([0, side) mod side)^dim``.

    Wrapping removes boundary effects, which makes density and degree
    homogeneous — convenient for controlled growth-boundedness
    experiments.
    """

    def __init__(self, dim: int = 2, side: float = 1.0) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.dim = dim
        self.side = side

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.side, size=(n, self.dim))

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        diff = np.abs(points[:, None, :] - points[None, :, :])
        diff = np.minimum(diff, self.side - diff)
        return np.sqrt((diff**2).sum(axis=-1))


class ManhattanBox(MetricSpace):
    """L1 (Manhattan) metric on ``[0, side]^dim``.

    A non-Euclidean doubling metric, included so unit *ball* graphs in the
    test suite genuinely differ from unit *disk* graphs.
    """

    def __init__(self, dim: int = 2, side: float = 1.0) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.dim = dim
        self.side = side

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.side, size=(n, self.dim))

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        diff = np.abs(points[:, None, :] - points[None, :, :])
        return diff.sum(axis=-1)


def estimate_doubling_constant(
    space: MetricSpace,
    rng: np.random.Generator,
    n_points: int = 300,
    n_trials: int = 20,
) -> int:
    """Empirically estimate the doubling constant of a metric space.

    For random centers and radii, greedily covers the ball ``B(x, r)``
    (restricted to a sampled point cloud) with balls of radius ``r/2``
    centered at cloud points, and reports the worst cover size observed.
    This lower-bounds the true doubling constant; for the homogeneous
    spaces above it is a good proxy, and the E9 experiment only needs it
    to be bounded (independent of ``n_points``).
    """
    points = space.sample(n_points, rng)
    dist = space.pairwise_distances(points)
    worst = 1
    for _ in range(n_trials):
        center = int(rng.integers(n_points))
        radius = float(rng.uniform(0.05, 0.5)) * float(dist.max())
        inside = np.nonzero(dist[center] < radius)[0]
        uncovered = set(inside.tolist())
        covers = 0
        while uncovered:
            # Greedy: pick the point covering the most uncovered points.
            best_point, best_cover = None, frozenset()
            for candidate in inside:
                cover = {
                    int(u) for u in uncovered if dist[candidate, u] < radius / 2
                }
                if len(cover) > len(best_cover):
                    best_point, best_cover = int(candidate), frozenset(cover)
            if best_point is None:
                # Isolated remainder (possible only by numeric ties); each
                # remaining point covers itself.
                covers += len(uncovered)
                break
            uncovered -= best_cover
            covers += 1
        worst = max(worst, covers)
    return worst
