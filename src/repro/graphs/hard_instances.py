"""Adversarial instances from the radio broadcast lower-bound literature.

The `Omega(D log(n/D))` broadcast lower bounds ([1, 22], paper Section
1.5.1) rest on *layered* constructions: the message must traverse D
layers, and inside each layer an adversarially chosen subset is
connected to the next layer, forcing the algorithm to re-solve a
hitting/wake-up-style problem per layer. These generators build the
randomized analogue of those instances so the benchmarks can exercise
broadcast algorithms on topologies *designed* to be hard, not just on
friendly geometric ones.

Note the scope: the lower bounds are for models without spontaneous
transmissions; the paper's algorithm (which uses spontaneous
transmissions) may legitimately beat them — observing that is part of
the reproduction's story.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def layered_barrier(
    n_layers: int,
    width: int,
    rng: np.random.Generator,
    active_fraction: float = 0.3,
) -> nx.Graph:
    """Layered lower-bound-style instance.

    ``n_layers`` layers of ``width`` nodes sit between a source and a
    sink. Consecutive layers are joined through a random *active subset*
    of the earlier layer (each node active with ``active_fraction``;
    at least one forced): active nodes connect to every node of the next
    layer, inactive ones connect only within their own layer's chain.
    A broadcast must therefore get a clean transmission out of each
    layer's unknown active subset to advance — the per-layer hitting
    problem of [22].

    Nodes: ``0`` is the source, ``1 + layer * width + i`` are layer
    nodes, and the last node is the sink. The graph is connected.
    """
    if n_layers < 1 or width < 1:
        raise ValueError("need at least one layer of at least one node")
    if not 0.0 < active_fraction <= 1.0:
        raise ValueError(
            f"active_fraction must be in (0, 1], got {active_fraction}"
        )
    graph = nx.Graph(family="layered-barrier")
    source = 0
    graph.add_node(source)

    def layer_nodes(layer: int) -> list[int]:
        return [1 + layer * width + i for i in range(width)]

    previous = [source]
    prev_active = [source]
    for layer in range(n_layers):
        members = layer_nodes(layer)
        graph.add_nodes_from(members)
        # Chain inside the layer keeps it connected regardless of the
        # active pattern.
        for a, b in zip(members, members[1:]):
            graph.add_edge(a, b)
        # Every active node of the previous stage reaches this whole
        # layer (the adversary's fan-out).
        for u in prev_active:
            for v in members:
                graph.add_edge(u, v)
        active_mask = rng.random(width) < active_fraction
        if not active_mask.any():
            active_mask[int(rng.integers(width))] = True
        prev_active = [m for m, a in zip(members, active_mask) if a]
        previous = members

    sink = 1 + n_layers * width
    graph.add_node(sink)
    for u in prev_active:
        graph.add_edge(u, sink)
    return graph


def two_cliques_bottleneck(clique_size: int) -> nx.Graph:
    """Two cliques joined by a single edge — the contention bottleneck.

    A broadcast crossing the bridge must silence an entire clique except
    the bridge endpoint; Decay-style backoff handles it in O(log n),
    while naive strategies stall. ``alpha = 2``, ``D = 3``.
    """
    if clique_size < 2:
        raise ValueError(f"cliques need >= 2 nodes, got {clique_size}")
    graph = nx.disjoint_union(
        nx.complete_graph(clique_size), nx.complete_graph(clique_size)
    )
    graph.add_edge(clique_size - 1, clique_size)
    graph.graph["family"] = "two-cliques"
    return graph


def star_of_cliques(
    n_cliques: int, clique_size: int
) -> nx.Graph:
    """Cliques hanging off a central hub — heterogeneous contention.

    The hub neighbors one delegate per clique; informing the hub's other
    delegates is easy, but pushing into each clique faces that clique's
    full contention. ``alpha = n_cliques + 1`` (one non-delegate per
    clique, plus the hub itself, which only touches delegates);
    ``D = 4``.
    """
    if n_cliques < 1 or clique_size < 2:
        raise ValueError("need >= 1 cliques of >= 2 nodes")
    graph = nx.Graph(family="star-of-cliques")
    hub = 0
    graph.add_node(hub)
    next_label = 1
    for _ in range(n_cliques):
        members = list(range(next_label, next_label + clique_size))
        next_label += clique_size
        graph.add_nodes_from(members)
        graph.add_edges_from(
            (members[i], members[j])
            for i in range(clique_size)
            for j in range(i + 1, clique_size)
        )
        graph.add_edge(hub, members[0])
    return graph
