"""Structural graph properties used throughout the reproduction.

Covers the quantities the paper's bounds are stated in — diameter ``D``,
independence number ``alpha`` (see :mod:`repro.graphs.independence`) —
and the growth-boundedness notion of Section 1.3: a graph is
(polynomially) growth-bounded if independent sets inside ``d``-hop
neighborhoods have ``poly(d)`` size. The E9 experiment uses
:func:`ball_independence_profile` and :func:`growth_exponent` to verify
that every geometric generator produces growth-bounded graphs and that
``alpha = poly(D)`` holds for them.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Hashable

import networkx as nx
import numpy as np

from .context import graph_context
from .independence import exact_independence_number, greedy_independent_set


def diameter(graph: nx.Graph) -> int:
    """Graph diameter ``D``; raises on disconnected input.

    The paper assumes nodes know (a linear upper estimate of) ``D``; the
    simulation hands algorithms the exact value, which is the strongest
    version of that assumption and therefore safe for reproducing upper
    bounds.

    Computed (and cached per graph) by the
    :class:`~repro.graphs.context.GraphContext` all-sources BFS sweep —
    repeated trials on one graph pay for it once.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("diameter of the empty graph is undefined")
    return graph_context(graph).diameter


def ball(graph: nx.Graph, center: Hashable, radius: int) -> set[Hashable]:
    """The ``radius``-hop closed neighborhood of ``center``."""
    return set(
        nx.single_source_shortest_path_length(graph, center, cutoff=radius)
    )


def ball_independence_profile(
    graph: nx.Graph,
    radii: list[int],
    rng: np.random.Generator,
    n_centers: int = 10,
    exact_limit: int = 120,
) -> dict[int, int]:
    """Max independent-set size inside ``d``-hop balls, per radius.

    For each radius ``d`` in ``radii``, samples ``n_centers`` centers and
    reports the largest independent set found in any of their ``d``-hop
    balls: exactly when the ball has at most ``exact_limit`` nodes,
    otherwise via greedy lower bound (profile then *underestimates*,
    which is conservative for growth-boundedness claims — we are checking
    the profile stays small).
    """
    nodes = list(graph.nodes)
    if not nodes:
        return {d: 0 for d in radii}
    centers = [
        nodes[int(i)] for i in rng.integers(len(nodes), size=min(n_centers, len(nodes)))
    ]
    profile: dict[int, int] = {}
    for d in radii:
        best = 0
        for center in centers:
            members = ball(graph, center, d)
            sub = graph.subgraph(members)
            if len(members) <= exact_limit:
                size = exact_independence_number(sub, max_nodes=exact_limit)
            else:
                size = len(greedy_independent_set(sub))
            best = max(best, size)
        profile[d] = best
    return profile


def growth_exponent(profile: dict[int, int]) -> float:
    """Least-squares slope of ``log(IS size)`` against ``log(radius)``.

    For a polynomially growth-bounded family the slope is bounded by the
    polynomial's degree (2 for unit disk graphs); families that are not
    growth-bounded show slopes that grow with the graph size instead of
    stabilizing.
    """
    points = [
        (math.log(d), math.log(size))
        for d, size in profile.items()
        if d >= 1 and size >= 1
    ]
    if len(points) < 2:
        raise ValueError("need at least two usable (radius, size) points")
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    slope, _ = np.polyfit(xs, ys, deg=1)
    return float(slope)


@dataclasses.dataclass(frozen=True)
class GraphSummary:
    """Headline parameters of a graph, as used in the paper's bounds."""

    n: int
    m: int
    D: int
    alpha: int
    log_d_alpha: float
    family: str

    def row(self) -> str:
        """One formatted table row (used by the E9 bench)."""
        return (
            f"{self.family:<18} n={self.n:<6} m={self.m:<7} D={self.D:<5} "
            f"alpha={self.alpha:<6} log_D(alpha)={self.log_d_alpha:6.2f}"
        )


def summarize(graph: nx.Graph, alpha: int | None = None) -> GraphSummary:
    """Compute the :class:`GraphSummary` of a connected graph.

    ``alpha`` may be passed in when already known (e.g. from
    :func:`~repro.graphs.independence.independence_number_bounds` on large
    instances); otherwise it is computed exactly.
    """
    d = diameter(graph)
    if alpha is None:
        alpha = exact_independence_number(graph)
    log_d_alpha = log_base_d(alpha, d)
    return GraphSummary(
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        D=d,
        alpha=alpha,
        log_d_alpha=log_d_alpha,
        family=str(graph.graph.get("family", "unknown")),
    )


def log_base_d(alpha: int, d: int) -> float:
    """``log_D(alpha)``, the paper's key quantity, with guarded edges.

    Clamped below at 1 so that bound formulas like ``D * log_D(alpha)``
    never drop below the trivial ``Omega(D)`` term: the paper's bounds are
    ``O(D log_D alpha + polylog n)`` with an implicit floor of ``D``
    rounds, and ``log_D alpha < 1`` (i.e. ``alpha < D``) is exactly the
    regime where the floor binds.
    """
    if d <= 1:
        # Single-hop graphs: the leading term is constant.
        return 1.0
    if alpha <= 1:
        return 1.0
    return max(1.0, math.log(alpha) / math.log(d))
