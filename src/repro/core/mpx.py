"""Miller–Peng–Xu clustering with exponential shifts (paper Section 2.2).

The clustering process: each potential center ``v`` draws
``delta_v ~ Exponential(beta)``; each node ``u`` joins the cluster of the
center ``v`` minimizing ``dist(u, v) - delta_v``. The paper's single
change to the pipeline of [7] is the *center set*: ``Partition(beta, MIS)``
draws centers only from a maximal independent set instead of all nodes,
which is what converts the ``log_D n`` of [7, Thm 2.2] into the paper's
``log_D alpha`` (Theorem 2).

This module computes the clustering centrally (shifted multi-source
Dijkstra); :mod:`repro.core.partition_radio` is the packet-level radio
implementation, and tests check the two agree in distribution. The radio
round cost of constructing a clustering is charged by
:mod:`repro.core.costmodel` in the round-accounted pipeline.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable

import networkx as nx
import numpy as np

from .cluster import Clustering


def draw_shifts(
    centers: Iterable[int], beta: float, rng: np.random.Generator
) -> dict[int, float]:
    """Draw ``delta_v ~ Exponential(beta)`` for each center.

    ``beta`` is the *rate*: mean shift ``1/beta``. Smaller ``beta`` means
    larger shifts and hence larger clusters (diameter ``O(log n / beta)``
    whp).
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    centers = list(centers)
    shifts = rng.exponential(scale=1.0 / beta, size=len(centers))
    return {c: float(s) for c, s in zip(centers, shifts)}


def partition(
    graph: nx.Graph,
    beta: float,
    centers: Iterable[int],
    rng: np.random.Generator,
    shifts: dict[int, float] | None = None,
) -> Clustering:
    """``Partition(beta, centers)`` — one MPX clustering draw.

    Parameters
    ----------
    graph:
        Undirected graph with nodes labeled ``0..n-1`` (as produced by the
        generators in :mod:`repro.graphs`). Every node must be within
        finite distance of some center — guaranteed when centers form a
        maximal independent set (every node is in it or adjacent to it)
        or when the graph is connected.
    beta:
        Exponential shift rate.
    centers:
        Candidate center indices; the paper's variant passes the MIS,
        the [7] baseline passes all nodes.
    rng:
        Randomness for the shift draws.
    shifts:
        Pre-drawn shifts (for paired comparisons across center sets or
        for the radio implementation to reuse); drawn fresh if omitted.

    Returns
    -------
    Clustering
        Every node assigned to the center minimizing
        ``dist(u, v) - delta_v``, ties broken by center index (the
        consistent tiebreak that keeps clusters connected).
    """
    centers = sorted(set(int(c) for c in centers))
    if not centers:
        raise ValueError("need at least one center")
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ValueError(
            "partition expects integer node labels 0..n-1; relabel with "
            "networkx.convert_node_labels_to_integers first"
        )
    if shifts is None:
        shifts = draw_shifts(centers, beta, rng)
    else:
        missing = [c for c in centers if c not in shifts]
        if missing:
            raise ValueError(f"shifts missing for centers: {missing[:5]}")

    # Multi-source Dijkstra on shifted keys. Center c starts at key
    # -delta_c; unit edge weights. Lexicographic (key, center) priority
    # realizes the consistent tiebreak.
    INF = math.inf
    best_key = np.full(n, INF, dtype=np.float64)
    best_center = np.full(n, -1, dtype=np.int64)
    hops = np.full(n, -1, dtype=np.int64)

    heap: list[tuple[float, int, int, int]] = []
    for c in centers:
        key = -shifts[c]
        heapq.heappush(heap, (key, c, c, 0))
        # Do not pre-commit best_key: a center can be captured by another
        # center whose shifted ball covers it more deeply.

    while heap:
        key, center, u, hop = heapq.heappop(heap)
        if best_center[u] != -1 and (
            key > best_key[u]
            or (key == best_key[u] and center >= best_center[u])
        ):
            continue
        best_key[u] = key
        best_center[u] = center
        hops[u] = hop
        for w in graph.neighbors(u):
            candidate = key + 1.0
            if best_center[w] == -1 or candidate < best_key[w] or (
                candidate == best_key[w] and center < best_center[w]
            ):
                heapq.heappush(heap, (candidate, center, w, hop + 1))

    if (best_center == -1).any():
        unreached = int((best_center == -1).sum())
        raise ValueError(
            f"{unreached} nodes unreachable from any center; partition "
            "requires centers to dominate every component"
        )

    return Clustering(
        beta=beta,
        centers=centers,
        assignment=best_center,
        distance_to_center=hops,
        delta=dict(shifts),
    )


def j_range(diameter: int) -> list[int]:
    """The integer ``j`` range of Compete: ``0.01 log D <= j <= 0.1 log D``.

    For the small diameters reachable in simulation this window can be
    empty or a single point; we widen it to always contain at least
    ``[1, max(2, ...)]`` so fine clusterings exist at every scale, and
    record in EXPERIMENTS.md that constants-level widening is a
    simulation-scale accommodation (the paper's range is asymptotic).
    """
    if diameter < 2:
        return [1]
    log_d = math.log2(diameter)
    lo = max(1, math.ceil(0.01 * log_d))
    hi = max(lo + 1, math.floor(0.1 * log_d))
    # At simulation scales 0.1 log2(D) < 2, so extend the window upward a
    # little; betas stay in (0, 1/2] which is all the analysis needs.
    hi = max(hi, min(lo + 3, math.floor(log_d)))
    return list(range(lo, hi + 1))


def beta_of_j(j: int) -> float:
    """``beta = 2^-j`` (the fine-clustering parameter scale)."""
    if j < 0:
        raise ValueError(f"j must be >= 0, got {j}")
    return 2.0**-j


def coarse_beta(diameter: int) -> float:
    """The coarse clustering parameter ``beta = D^-0.5`` of Compete."""
    return max(2, diameter) ** -0.5
