"""Miller–Peng–Xu clustering with exponential shifts (paper Section 2.2).

The clustering process: each potential center ``v`` draws
``delta_v ~ Exponential(beta)``; each node ``u`` joins the cluster of the
center ``v`` minimizing ``dist(u, v) - delta_v``. The paper's single
change to the pipeline of [7] is the *center set*: ``Partition(beta, MIS)``
draws centers only from a maximal independent set instead of all nodes,
which is what converts the ``log_D n`` of [7, Thm 2.2] into the paper's
``log_D alpha`` (Theorem 2).

This module computes the clustering centrally (shifted multi-source
shortest paths); :mod:`repro.core.partition_radio` is the packet-level
radio implementation, and tests check the two agree in distribution. The
radio round cost of constructing a clustering is charged by
:mod:`repro.core.costmodel` in the round-accounted pipeline.

Performance: the default engine is a CSR-native multi-source frontier
relaxation (:func:`partition` with ``engine="frontier"``) — a Dial-style
unit-weight wave over numpy arrays that settles whole frontiers per
sweep instead of popping one ``(key, center, node)`` tuple at a time
from a Python heap. Shift keys are accumulated as the same sequential
``+1.0`` float additions the heap performed, and the exact
``(key, center)`` lexicographic tiebreak is realized by a per-frontier
``lexsort``; assignments, hop counts, and keys are bit-identical to the
reference multi-source Dijkstra, which remains available as
:func:`partition_reference` for equivalence tests and benchmarking.
Compete redraws clusterings many times per run, so this is one of the
two hottest paths in the repository (the other is radio delivery).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable

import networkx as nx
import numpy as np

from ..graphs.context import graph_context
from .cluster import Clustering


def draw_shifts(
    centers: Iterable[int], beta: float, rng: np.random.Generator
) -> dict[int, float]:
    """Draw ``delta_v ~ Exponential(beta)`` for each center.

    ``beta`` is the *rate*: mean shift ``1/beta``. Smaller ``beta`` means
    larger shifts and hence larger clusters (diameter ``O(log n / beta)``
    whp).
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    centers = list(centers)
    shifts = rng.exponential(scale=1.0 / beta, size=len(centers))
    return {c: float(s) for c, s in zip(centers, shifts)}


def _validate_partition_inputs(
    graph: nx.Graph,
    beta: float,
    centers: Iterable[int],
    rng: np.random.Generator,
    shifts: dict[int, float] | None,
) -> tuple[int, list[int], dict[int, float]]:
    """Shared validation/shift-drawing for both partition engines."""
    centers = sorted(set(int(c) for c in centers))
    if not centers:
        raise ValueError("need at least one center")
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ValueError(
            "partition expects integer node labels 0..n-1; relabel with "
            "networkx.convert_node_labels_to_integers first"
        )
    if shifts is None:
        shifts = draw_shifts(centers, beta, rng)
    else:
        missing = [c for c in centers if c not in shifts]
        if missing:
            raise ValueError(f"shifts missing for centers: {missing[:5]}")
    return n, centers, shifts


def _finish_partition(
    beta: float,
    centers: list[int],
    shifts: dict[int, float],
    best_center: np.ndarray,
    hops: np.ndarray,
) -> Clustering:
    """Package engine output, checking every node was reached."""
    if (best_center == -1).any():
        unreached = int((best_center == -1).sum())
        raise ValueError(
            f"{unreached} nodes unreachable from any center; partition "
            "requires centers to dominate every component"
        )
    return Clustering(
        beta=beta,
        centers=centers,
        assignment=best_center,
        distance_to_center=hops,
        delta=dict(shifts),
    )


def partition(
    graph: nx.Graph,
    beta: float,
    centers: Iterable[int],
    rng: np.random.Generator,
    shifts: dict[int, float] | None = None,
    engine: str = "frontier",
) -> Clustering:
    """``Partition(beta, centers)`` — one MPX clustering draw.

    Parameters
    ----------
    graph:
        Undirected graph with nodes labeled ``0..n-1`` (as produced by the
        generators in :mod:`repro.graphs`). Every node must be within
        finite distance of some center — guaranteed when centers form a
        maximal independent set (every node is in it or adjacent to it)
        or when the graph is connected.
    beta:
        Exponential shift rate.
    centers:
        Candidate center indices; the paper's variant passes the MIS,
        the [7] baseline passes all nodes.
    rng:
        Randomness for the shift draws.
    shifts:
        Pre-drawn shifts (for paired comparisons across center sets or
        for the radio implementation to reuse); drawn fresh if omitted.
    engine:
        ``"frontier"`` (default) — the vectorized CSR frontier
        relaxation; ``"dijkstra"`` — the reference Python heap. Both
        produce the same clustering (see the module docstring).

    Returns
    -------
    Clustering
        Every node assigned to the center minimizing
        ``dist(u, v) - delta_v``, ties broken by center index (the
        consistent tiebreak that keeps clusters connected).
    """
    if engine not in ("frontier", "dijkstra"):
        raise ValueError(f"unknown partition engine: {engine!r}")
    n, centers, shifts = _validate_partition_inputs(
        graph, beta, centers, rng, shifts
    )
    if engine == "dijkstra":
        best_center, hops = _relax_dijkstra(graph, n, centers, shifts)
    else:
        csr = graph_context(graph).identity_csr()
        best_center, hops = _relax_frontier(
            csr.indptr, csr.indices, n, centers, shifts
        )
    return _finish_partition(beta, centers, shifts, best_center, hops)


def partition_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    beta: float,
    centers: Iterable[int],
    rng: np.random.Generator,
    shifts: dict[int, float] | None = None,
) -> Clustering:
    """``Partition(beta, centers)`` directly on CSR arrays.

    The graph-free entry point of the frontier engine: callers that
    already hold a CSR adjacency — Compete's fine clusterings run on
    :meth:`~repro.graphs.context.GraphContext.induced_csr` slices of
    coarse clusters — skip the networkx validation layer entirely.
    Node indices are ``0..n-1`` CSR rows; results are bit-identical to
    :func:`partition` on the equivalent graph under shared shifts.
    """
    centers = sorted(set(int(c) for c in centers))
    if not centers:
        raise ValueError("need at least one center")
    if shifts is None:
        shifts = draw_shifts(centers, beta, rng)
    else:
        missing = [c for c in centers if c not in shifts]
        if missing:
            raise ValueError(f"shifts missing for centers: {missing[:5]}")
    best_center, hops = _relax_frontier(indptr, indices, n, centers, shifts)
    return _finish_partition(beta, centers, shifts, best_center, hops)


def partition_reference(
    graph: nx.Graph,
    beta: float,
    centers: Iterable[int],
    rng: np.random.Generator,
    shifts: dict[int, float] | None = None,
) -> Clustering:
    """The original heap-based multi-source Dijkstra partition.

    Kept as the executable specification of :func:`partition`:
    equivalence tests check the frontier engine reproduces its
    assignments and hop counts bit-for-bit under shared shifts, and
    ``benchmarks/bench_p1_engine.py`` measures the speedup against it.
    """
    return partition(graph, beta, centers, rng, shifts, engine="dijkstra")


def _relax_dijkstra(
    graph: nx.Graph,
    n: int,
    centers: list[int],
    shifts: dict[int, float],
) -> tuple[np.ndarray, np.ndarray]:
    """Multi-source Dijkstra on shifted keys (the reference engine).

    Center ``c`` starts at key ``-delta_c``; unit edge weights.
    Lexicographic ``(key, center)`` priority realizes the consistent
    tiebreak.
    """
    INF = math.inf
    best_key = np.full(n, INF, dtype=np.float64)
    best_center = np.full(n, -1, dtype=np.int64)
    hops = np.full(n, -1, dtype=np.int64)

    heap: list[tuple[float, int, int, int]] = []
    for c in centers:
        key = -shifts[c]
        heapq.heappush(heap, (key, c, c, 0))
        # Do not pre-commit best_key: a center can be captured by another
        # center whose shifted ball covers it more deeply.

    while heap:
        key, center, u, hop = heapq.heappop(heap)
        if best_center[u] != -1 and (
            key > best_key[u]
            or (key == best_key[u] and center >= best_center[u])
        ):
            continue
        best_key[u] = key
        best_center[u] = center
        hops[u] = hop
        for w in graph.neighbors(u):
            candidate = key + 1.0
            if best_center[w] == -1 or candidate < best_key[w] or (
                candidate == best_key[w] and center < best_center[w]
            ):
                heapq.heappush(heap, (candidate, center, w, hop + 1))

    return best_center, hops


def _relax_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    centers: list[int],
    shifts: dict[int, float],
) -> tuple[np.ndarray, np.ndarray]:
    """CSR-native multi-source frontier relaxation (the fast engine).

    Unit edge weights make shifted-Dijkstra a Dial-style wave: every
    sweep relaxes all edges leaving the nodes improved by the previous
    sweep, entirely in numpy. Per sweep, the lexicographically smallest
    ``(key, center)`` candidate per target node is selected with one
    ``lexsort`` + first-of-group reduction; a node re-enters the
    frontier whenever its best candidate improves, so the iteration
    converges to the same fixpoint the heap reaches. Keys accumulate as
    ``parent key + 1.0`` — the identical float additions the heap
    performs — which keeps results bit-identical.
    """
    center_arr = np.asarray(centers, dtype=np.int64)
    shift_arr = np.array([shifts[c] for c in centers], dtype=np.float64)

    best_key = np.full(n, np.inf, dtype=np.float64)
    best_center = np.full(n, -1, dtype=np.int64)
    hops = np.full(n, -1, dtype=np.int64)
    best_key[center_arr] = -shift_arr
    best_center[center_arr] = center_arr
    hops[center_arr] = 0

    indptr64 = indptr.astype(np.int64)
    frontier = center_arr
    while frontier.size:
        starts = indptr64[frontier]
        degs = indptr64[frontier + 1] - starts
        total = int(degs.sum())
        if total == 0:
            break
        # Positions of the frontier's neighbor lists inside `indices`.
        offsets = np.repeat(starts - np.concatenate(
            ([0], np.cumsum(degs)[:-1])
        ), degs)
        pos = np.arange(total, dtype=np.int64) + offsets
        src = np.repeat(frontier, degs)
        dst = indices[pos].astype(np.int64)

        cand_key = best_key[src] + 1.0
        cand_center = best_center[src]
        cand_hop = hops[src] + 1

        # Lexicographically smallest (key, center) candidate per target.
        order = np.lexsort((cand_center, cand_key, dst))
        d_sorted = dst[order]
        first = np.ones(d_sorted.size, dtype=bool)
        first[1:] = d_sorted[1:] != d_sorted[:-1]
        win = order[first]

        u = dst[win]
        k = cand_key[win]
        c = cand_center[win]
        h = cand_hop[win]
        improve = (k < best_key[u]) | (
            (k == best_key[u]) & (c < best_center[u])
        )
        u, k, c, h = u[improve], k[improve], c[improve], h[improve]
        best_key[u] = k
        best_center[u] = c
        hops[u] = h
        frontier = u

    return best_center, hops


def j_range(diameter: int) -> list[int]:
    """The integer ``j`` range of Compete: ``0.01 log D <= j <= 0.1 log D``.

    For the small diameters reachable in simulation this window can be
    empty or a single point; we widen it to always contain at least
    ``[1, max(2, ...)]`` so fine clusterings exist at every scale, and
    record in EXPERIMENTS.md that constants-level widening is a
    simulation-scale accommodation (the paper's range is asymptotic).
    """
    if diameter < 2:
        return [1]
    log_d = math.log2(diameter)
    lo = max(1, math.ceil(0.01 * log_d))
    hi = max(lo + 1, math.floor(0.1 * log_d))
    # At simulation scales 0.1 log2(D) < 2, so extend the window upward a
    # little; betas stay in (0, 1/2] which is all the analysis needs.
    hi = max(hi, min(lo + 3, math.floor(log_d)))
    return list(range(lo, hi + 1))


def beta_of_j(j: int) -> float:
    """``beta = 2^-j`` (the fine-clustering parameter scale)."""
    if j < 0:
        raise ValueError(f"j must be >= 0, got {j}")
    return 2.0**-j


def coarse_beta(diameter: int) -> float:
    """The coarse clustering parameter ``beta = D^-0.5`` of Compete."""
    return max(2, diameter) ** -0.5
