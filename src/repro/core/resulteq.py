"""Array-aware equality for result dataclasses.

The generated dataclass ``__eq__`` compares fields with ``==``, which
on an ndarray field yields an element-wise array and then raises
``ValueError: truth value of an array is ambiguous`` the moment the
tuple comparison tries to reduce it to a bool. Every result type with
an ndarray payload (``MISResult.mis_mask``, ``DecayResult.heard``,
``RunReport.result``, ...) was therefore *uncomparable* — a problem
now that the corpus layer wants ``run(...) == run(...)`` as its
cache-hit check.

:class:`ArrayEqMixin` replaces the generated ``__eq__`` (declare the
dataclass with ``eq=False`` and inherit the mixin) with a field-wise
comparison that routes ndarrays through :func:`numpy.array_equal` and
recurses into containers, so nested results (a ``RunReport`` holding a
``MISResult``) compare structurally. NaN keeps IEEE semantics
(``NaN != NaN``) — result arrays are NaN-free by construction, and a
NaN that sneaks in *should* break cache equality rather than alias two
different runs.

Only :mod:`dataclasses` and :mod:`numpy` are imported, so the mixin is
safe to use from any layer without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

__all__ = ["ArrayEqMixin", "values_equal"]


def values_equal(a: Any, b: Any) -> bool:
    """Structural equality that tolerates ndarray members.

    ndarrays compare via :func:`numpy.array_equal` (shape + elements,
    dtype-insensitive like ``==``); dicts compare keys then values
    recursively; lists/tuples of matching type compare element-wise;
    everything else falls back to ``bool(a == b)``.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not isinstance(a, np.ndarray) or not isinstance(b, np.ndarray):
            return False
        return bool(np.array_equal(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        if a.keys() != b.keys():
            return False
        return all(values_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and type(a) is type(b):
        if len(a) != len(b):
            return False
        return all(values_equal(x, y) for x, y in zip(a, b))
    try:
        return bool(a == b)
    except ValueError:
        # A nested object whose own __eq__ produced an array (e.g. a
        # plain dataclass holding ndarrays) — fall back to identity.
        return a is b


class ArrayEqMixin:
    """Field-wise ``__eq__`` for dataclasses with ndarray fields.

    Usage::

        @dataclasses.dataclass(eq=False)
        class MISResult(ArrayEqMixin):
            mis_mask: np.ndarray
            ...

    Instances stay unhashable (like an ``eq=True`` non-frozen
    dataclass): two equal results are still distinct objects and must
    not silently collapse in sets/dict keys.
    """

    __hash__ = None  # type: ignore[assignment]

    def __eq__(self, other: Any) -> bool:
        if other is self:
            return True
        if type(other) is not type(self):
            return NotImplemented
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            if field.compare and not values_equal(
                getattr(self, field.name), getattr(other, field.name)
            ):
                return False
        return True

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result
