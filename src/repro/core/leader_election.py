"""Leader election (paper Algorithm 3, Theorem 8).

The protocol:

1. every node independently becomes a *candidate* with probability
   ``Theta(log n / n)`` — so ``|C| = Theta(log n)`` with high
   probability, and in particular ``C`` is non-empty;
2. candidates draw uniformly random ``Theta(log n)``-bit IDs — unique
   with high probability;
3. ``Compete(C)`` propagates the candidate IDs; the highest ID wins and
   every node learns it.

Success requires both "some candidate exists" and "the maximum ID is
unique"; the E7 experiment measures the empirical success rate against
the with-high-probability claim.
"""

from __future__ import annotations

import dataclasses
import math

import networkx as nx
import numpy as np

from ..radio.network import RadioNetwork
from ..radio.trace import CostLedger
from .compete import CompeteConfig, CompeteResult, compete
from .compete_packet import (
    PacketCompeteConfig,
    PacketCompeteResult,
    compete_packet,
)


@dataclasses.dataclass
class LeaderElectionResult:
    """Outcome of a leader election run.

    ``elected`` requires a unique winner known by everyone: exactly one
    candidate held the maximum ID and Compete delivered it network-wide.
    """

    leader: int | None
    leader_id: int | None
    candidates: dict[int, int]
    elected: bool
    total_rounds: int
    ledger: CostLedger
    compete: CompeteResult | None


def candidate_probability(n: int, c_cand: float = 1.0) -> float:
    """The ``Theta(log n / n)`` candidacy probability, capped at 1."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return min(1.0, c_cand * math.log2(max(2, n)) / n)


def id_bits(n: int, c_bits: float = 3.0) -> int:
    """Candidate ID length: ``Theta(log n)`` bits.

    ``c_bits = 3`` gives IDs from ``[O(n^3)]``, making collisions
    ``O(log^2 n / n)``-unlikely per the paper's Section 1.1 remark.
    """
    return max(4, math.ceil(c_bits * math.log2(max(2, n))))


def elect_leader(
    graph: nx.Graph,
    rng: np.random.Generator,
    config: CompeteConfig | None = None,
    alpha: int | None = None,
    c_cand: float = 1.0,
) -> LeaderElectionResult:
    """Run Algorithm 3 on ``graph``.

    Returns a :class:`LeaderElectionResult`; ``elected`` is false when no
    node became a candidate or the maximum ID collided (both
    low-probability events the algorithm is allowed to suffer — the
    theorem's guarantee is with high probability, not certainty).
    """
    n = graph.number_of_nodes()
    candidates = _draw_candidates(n, rng, c_cand)
    if not candidates:
        # No candidates — the run fails (detected by silence in practice;
        # rerunning is the standard amplification).
        return LeaderElectionResult(
            leader=None,
            leader_id=None,
            candidates={},
            elected=False,
            total_rounds=0,
            ledger=CostLedger(),
            compete=None,
        )

    result = compete(graph, candidates, rng, config=config, alpha=alpha)
    top_id = max(candidates.values())
    holders = [v for v, cid in candidates.items() if cid == top_id]
    unique = len(holders) == 1
    elected = unique and result.delivered
    return LeaderElectionResult(
        leader=holders[0] if unique else None,
        leader_id=top_id,
        candidates=candidates,
        elected=elected,
        total_rounds=result.total_rounds,
        ledger=result.ledger,
        compete=result,
    )


@dataclasses.dataclass
class PacketLeaderResult:
    """Outcome of a packet-level (fully simulated) leader election.

    ``steps`` counts actual radio steps across the whole Compete
    pipeline; ``compete`` holds the per-stage itemization.
    """

    leader: int | None
    leader_id: int | None
    candidates: dict[int, int]
    elected: bool
    steps: int
    compete: PacketCompeteResult | None


def _draw_candidates(
    n: int, rng: np.random.Generator, c_cand: float
) -> dict[int, int]:
    """Algorithm 3 steps 1-2: candidacy coins, then random IDs.

    Shared by :func:`elect_leader` and :func:`elect_leader_packet` so
    both draw the identical candidate set from one seed.
    """
    prob = candidate_probability(n, c_cand)
    bits = id_bits(n)
    candidate_mask = rng.random(n) < prob
    return {
        int(v): int(rng.integers(1, 2**bits))
        for v in np.nonzero(candidate_mask)[0]
    }


def elect_leader_packet(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: PacketCompeteConfig | None = None,
    alpha: int | None = None,
    c_cand: float = 1.0,
) -> PacketLeaderResult:
    """Algorithm 3, every radio step simulated on the windowed engine.

    Candidates are drawn exactly as in :func:`elect_leader` (same rng
    order), then their IDs race through the packet-level Compete
    pipeline. Pass ``PacketCompeteConfig(engine="reference")`` for the
    step-wise path; seeded results are bit-identical across engines.
    """
    n = network.n
    candidates = _draw_candidates(n, rng, c_cand)
    if not candidates:
        return PacketLeaderResult(
            leader=None,
            leader_id=None,
            candidates={},
            elected=False,
            steps=0,
            compete=None,
        )
    result = compete_packet(
        network, candidates, rng, config=config, alpha=alpha
    )
    top_id = max(candidates.values())
    holders = [v for v, cid in candidates.items() if cid == top_id]
    unique = len(holders) == 1
    return PacketLeaderResult(
        leader=holders[0] if unique else None,
        leader_id=top_id,
        candidates=candidates,
        elected=unique and result.delivered,
        steps=result.steps,
        compete=result,
    )
