"""The Decay protocol (paper Algorithm 5, Bar-Yehuda–Goldreich–Itai).

Decay is the classic single-hop transmission primitive: each node in a
transmitting set ``S`` runs, for ``i = 1 .. log n``, a step in which it
transmits its message with probability ``2^-i``. Whatever the unknown
local density of ``S``, some ``i`` matches it and each node with a
neighbor in ``S`` hears a transmission with constant probability during
the sweep. Iterating the sweep ``O(log n)`` times amplifies this to high
probability (paper Claim 10).

This module provides the vectorized :class:`Decay` protocol (all of ``S``
decaying concurrently), its schedule emitter :func:`decay_block_schedule`, and
the convenience :func:`run_decay` wrapper used by Radio MIS and
intra-cluster propagation.

Performance: a Decay block is *oblivious* — the transmit mask of every
step depends only on the fixed active set and fresh coin flips, never on
what was heard — so :func:`decay_block_schedule` emits whole blocks as
:class:`~repro.engine.segments.ObliviousWindow` segments, which the
:class:`~repro.engine.runner.WindowedRunner` executes through
:meth:`~repro.radio.network.RadioNetwork.deliver_window` (one sparse
matrix-matrix product per chunk of steps instead of one matvec plus
Python dispatch per step). The emitter draws the same random numbers in
the same order and folds receptions in step order, so results, trace
totals, and the post-call rng state are all bit-identical to driving
the :class:`Decay` protocol step by step — which
:func:`run_decay_reference` still does, as the executable specification
the equivalence suite compares against.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

import numpy as np

from ..engine.pcg import CoinField
from ..engine.policy import ExecutionPolicy, legacy_policy
from ..engine.segments import ProtocolSchedule, StreamedWindow
from ..radio.network import (
    NO_SENDER,
    PipelineForm,
    RadioNetwork,
    TransmitPlan,
)
from ..radio.protocol import Protocol, run_steps
from .resulteq import ArrayEqMixin


def decay_span(n_estimate: int) -> int:
    """Number of steps in one Decay sweep: ``ceil(log2 n)``, at least 1.

    ``n_estimate`` is the (linear upper estimate of the) network size the
    ad-hoc model gives every node; the probability ladder
    ``1/2, 1/4, ..., 2^-span`` reaches below ``1/n`` so that even
    full-density neighborhoods get an uncontended step.
    """
    if n_estimate < 1:
        raise ValueError(f"n_estimate must be >= 1, got {n_estimate}")
    return max(1, math.ceil(math.log2(max(2, n_estimate))))


def claim10_iterations(n_estimate: int, amplification: float = 4.0) -> int:
    """Iteration count for Claim 10's high-probability amplification.

    One sweep succeeds per listener with probability Omega(1); repeating
    ``Theta(log n)`` times drives the failure probability to ``n^-c``.
    ``amplification`` is the constant inside the Theta — benchmarks sweep
    it in E3 to locate the success/failure trade-off empirically.
    """
    return max(1, math.ceil(amplification * math.log2(max(2, n_estimate))))


@dataclasses.dataclass(eq=False)
class DecayResult(ArrayEqMixin):
    """Outcome of a Decay block.

    Attributes
    ----------
    heard:
        Boolean array: node heard at least one transmission during the
        block. In a block where only members of ``S`` transmit, this is
        exactly "node learned it has a neighbor in ``S``".
    heard_from:
        For each hearing node, the index of one transmitter it heard
        (the first); ``NO_SENDER`` elsewhere.
    messages:
        For each hearing node, the message of that first-heard
        transmitter; ``None`` elsewhere.
    """

    heard: np.ndarray
    heard_from: np.ndarray
    messages: list[Any]


class Decay(Protocol):
    """Vectorized concurrent Decay over a transmitting set.

    Parameters
    ----------
    network:
        The radio network.
    active:
        Boolean mask of the transmitting set ``S``. Nodes outside listen.
    messages:
        Optional per-node payloads for members of ``S`` (length-``n``
        list); defaults to each node's own index.
    iterations:
        Number of sweeps (Claim 10 amplification).
    n_estimate:
        Size estimate defining the sweep length; defaults to the true
        ``n`` (the strongest version of the known-``n`` assumption).

    The protocol finishes after ``iterations * decay_span`` steps and its
    :meth:`result` is a :class:`DecayResult`.
    """

    def __init__(
        self,
        network: RadioNetwork,
        active: np.ndarray,
        messages: list[Any] | None = None,
        iterations: int = 1,
        n_estimate: int | None = None,
    ) -> None:
        super().__init__(network)
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.n,):
            raise ValueError(
                f"active mask has shape {active.shape}, expected ({self.n},)"
            )
        self.active = active.copy()
        if messages is None:
            messages = list(range(self.n))
        if len(messages) != self.n:
            raise ValueError(
                f"messages has length {len(messages)}, expected {self.n}"
            )
        self.messages = list(messages)
        self.span = decay_span(n_estimate if n_estimate is not None else self.n)
        self.total_steps = iterations * self.span
        self._step = 0
        self.heard = np.zeros(self.n, dtype=bool)
        self.heard_from = np.full(self.n, NO_SENDER, dtype=np.int64)
        self._finished = self.total_steps == 0

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        i = (self._step % self.span) + 1  # i = 1 .. span
        prob = 2.0**-i
        coins = rng.random(self.n) < prob
        return self.active & coins

    def observe(self, hear_from: np.ndarray) -> None:
        new = (hear_from != NO_SENDER) & ~self.heard
        self.heard_from[new] = hear_from[new]
        self.heard |= new
        self._step += 1
        if self._step >= self.total_steps:
            self._finished = True

    def _absorb_window(self, hear_window: np.ndarray) -> None:
        """Fold a ``(k, n)`` window of receptions, in step order.

        Equivalent to ``k`` sequential :meth:`observe` calls: for every
        node not yet served, the *first* step of the window on which it
        heard someone determines its ``heard_from`` entry.
        """
        k = hear_window.shape[0]
        got = hear_window != NO_SENDER
        fresh = got.any(axis=0) & ~self.heard
        if fresh.any():
            cols = np.nonzero(fresh)[0]
            first = got[:, cols].argmax(axis=0)
            self.heard_from[cols] = hear_window[first, cols]
            self.heard[cols] = True
        self._step += k
        if self._step >= self.total_steps:
            self._finished = True

    def _absorb_window_at(
        self, hear_window: np.ndarray, cols: np.ndarray
    ) -> None:
        """Column-restricted twin of :meth:`_absorb_window`.

        ``hear_window`` is ``(k, len(cols))`` with senders already
        translated to global ids; every node outside ``cols`` heard
        silence (the residual support invariant), so folding the member
        columns folds the whole window.
        """
        k = hear_window.shape[0]
        got = hear_window != NO_SENDER
        fresh = got.any(axis=0) & ~self.heard[cols]
        if fresh.any():
            local = np.nonzero(fresh)[0]
            gcols = cols[local]
            first = got[:, local].argmax(axis=0)
            self.heard_from[gcols] = hear_window[first, local]
            self.heard[gcols] = True
        self._step += k
        if self._step >= self.total_steps:
            self._finished = True

    def _absorb_coo(
        self,
        k: int,
        steps: np.ndarray,
        nodes: np.ndarray,
        senders: np.ndarray,
    ) -> None:
        """Reception-triple twin of :meth:`_absorb_window`.

        Folds ``(step, node, sender)`` triples for a ``k``-step chunk,
        in arbitrary order: among a node's receptions the earliest step
        wins, matching the first-hit scan of the slab form (the radio
        model delivers at most one sender per node per step, so the
        earliest step pins a unique sender).
        """
        fresh = ~self.heard[nodes]
        if fresh.any():
            st = steps[fresh]
            nd = nodes[fresh]
            sd = senders[fresh]
            order = np.lexsort((st, nd))
            nd = nd[order]
            first = np.ones(nd.shape[0], dtype=bool)
            first[1:] = nd[1:] != nd[:-1]
            self.heard_from[nd[first]] = sd[order][first]
            self.heard[nd[first]] = True
        self._step += k
        if self._step >= self.total_steps:
            self._finished = True

    def result(self) -> DecayResult:
        payloads: list[Any] = [None] * self.n
        for v in np.nonzero(self.heard)[0]:
            payloads[v] = self.messages[self.heard_from[v]]
        return DecayResult(
            heard=self.heard.copy(),
            heard_from=self.heard_from.copy(),
            messages=payloads,
        )


def decay_block_schedule(
    network: RadioNetwork,
    active: np.ndarray,
    rng: np.random.Generator,
    messages: list[Any] | None = None,
    iterations: int = 1,
    n_estimate: int | None = None,
) -> ProtocolSchedule:
    """Schedule emitter for one full Decay block.

    Emits the block as a single
    :class:`~repro.engine.segments.StreamedWindow` — every mask is the
    fixed active set gated by fresh coins, so the whole block is
    oblivious, and the runner executes it in bounded ``(chunk_steps,
    n)`` slabs (its memory knob; the legacy coin-budget granularity by
    default). Coins are drawn lazily inside the plan, chunk-row-major,
    which is stream-identical to the per-step draws of the
    :class:`Decay` protocol whatever the slab height; receptions fold
    in step order through :meth:`Decay._absorb_window`. Returns the
    block's :class:`DecayResult`.
    """
    protocol = Decay(
        network,
        active,
        messages=messages,
        iterations=iterations,
        n_estimate=n_estimate,
    )
    total = protocol.total_steps
    if total:
        n = network.n
        # Per-step transmission probabilities of the sweep ladder.
        probs = 2.0 ** -((np.arange(total) % protocol.span) + 1.0)
        coins = CoinField(rng, n)

        def masks(start: int, stop: int) -> np.ndarray:
            flips = coins.draw(start, stop) < probs[start:stop, None]
            return flips & protocol.active[None, :]

        def masks_at(
            start: int, stop: int, cols: np.ndarray
        ) -> np.ndarray:
            flips = coins.draw_at(start, stop, cols)
            return (
                flips < probs[start:stop, None]
            ) & protocol.active[cols][None, :]

        # Separable form for the fused pipeline: the ladder probability
        # is a pure row factor and the fixed active set a 0/1 column
        # factor, so ``coin < prob * active`` reproduces the slab mask
        # exactly (a 0 column prob can never exceed a [0, 1) coin).
        col = protocol.active.astype(np.float64)

        yield StreamedWindow(
            TransmitPlan(
                total, masks,
                support=protocol.active, masks_at=masks_at,
                pipeline=PipelineForm(coins, probs, lambda start: col),
            ),
            consume=protocol._absorb_window,
            consume_at=protocol._absorb_window_at,
            consume_coo=protocol._absorb_coo,
        )
    return protocol.result()


def run_decay(
    network: RadioNetwork,
    active: np.ndarray,
    rng: np.random.Generator,
    messages: list[Any] | None = None,
    iterations: int = 1,
    n_estimate: int | None = None,
    chunk_steps: int | None = None,
    mem_budget: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> DecayResult:
    """Run a full Decay block and return its :class:`DecayResult`.

    This is the form in which Radio MIS consumes Decay: "marked nodes
    perform ``O(log n)`` iterations of Decay" translates to
    ``run_decay(network, marked, rng, iterations=claim10_iterations(n))``.

    The block executes :func:`decay_block_schedule` under ``policy``
    (see the module docstring) — ``engine="reference"`` dispatches to
    :func:`run_decay_reference`; results and rng consumption are
    identical either way, the engine path just much faster. The
    deprecated per-call ``chunk_steps``/``mem_budget`` kwargs fold
    into a policy through the usual shim (memory knobs only —
    bit-identical at any setting).
    """
    policy = legacy_policy(
        policy, "run_decay",
        chunk_steps=chunk_steps, mem_budget=mem_budget,
    )
    policy.bind(network)
    if policy.engine_for(("windowed", "reference"), "windowed") == "reference":
        return run_decay_reference(
            network, active, rng,
            messages=messages, iterations=iterations,
            n_estimate=n_estimate,
        )
    return policy.run_schedule(
        network,
        decay_block_schedule(
            network,
            active,
            rng,
            messages=messages,
            iterations=iterations,
            n_estimate=n_estimate,
        ),
    )


def run_decay_reference(
    network: RadioNetwork,
    active: np.ndarray,
    rng: np.random.Generator,
    messages: list[Any] | None = None,
    iterations: int = 1,
    n_estimate: int | None = None,
) -> DecayResult:
    """Step-wise Decay block: the executable specification of
    :func:`run_decay`.

    Drives the :class:`Decay` protocol one
    :meth:`~repro.radio.network.RadioNetwork.deliver` call at a time.
    ``tests/test_engine_windowed.py`` pins bit-identical results, trace
    totals, and post-call rng state against the windowed path.
    """
    protocol = Decay(
        network,
        active,
        messages=messages,
        iterations=iterations,
        n_estimate=n_estimate,
    )
    run_steps(protocol, rng, protocol.total_steps)
    return protocol.result()
