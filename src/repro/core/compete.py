"""``Compete(S)`` — the paper's Algorithm 2, round-accounted.

Compete is the engine behind both broadcasting and leader election: a set
``S`` of candidate messages propagates through the network, higher
messages overriding lower ones, until every node knows the highest. The
paper's version differs from Czumaj–Davies [7] (Algorithm 1) in exactly
one structural way — clusterings use only MIS nodes as potential centers
(``Partition(beta, MIS)``) — plus the matching shorter propagation length
``ell = O(log_D alpha / beta)`` justified by Theorem 2.

This module simulates the pipeline at **cluster-event granularity** with
**round-accounted costs** (DESIGN.md Section 1.1): real MPX clusterings
are drawn (real shifts, real BFS distances — the objects Theorem 2 is
about), knowledge spreads exactly as Algorithm 9's three-pass ICP allows
(center collects within ``ell``, redistributes within ``ell``), the
Algorithm 8 background process is modeled as its guaranteed
one-hop-per-``Theta(log n)``-rounds progress, and every component's
rounds are charged to a :class:`~repro.radio.trace.CostLedger` using
:mod:`repro.core.costmodel`. Setting ``centers_mode="all"`` reproduces
[7] as the baseline (same code path, all-nodes center set,
``ell = O(log_D n / beta)``), so E6's comparison is apples-to-apples.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Hashable

import networkx as nx
import numpy as np

from ..graphs.context import GraphContext, graph_context
from ..graphs.independence import greedy_independent_set
from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.trace import CostLedger
from .costmodel import CostModel, propagation_length
from .cluster import Clustering
from .mpx import beta_of_j, coarse_beta, j_range, partition, partition_csr


@dataclasses.dataclass
class CompeteConfig:
    """Knobs of the round-accounted Compete pipeline.

    Attributes
    ----------
    centers_mode:
        ``"mis"`` — the paper's Algorithm 2; ``"all"`` — the [7]
        baseline (Algorithm 1).
    cost_model:
        Round-cost constants (see :mod:`repro.core.costmodel`).
    c_ell:
        Constant inside the ICP length
        ``ell = c_ell * log_D(alpha) / beta``. The paper's analysis
        needs the O() constant large enough to cover Theorem 2's
        expected distance; 4 is comfortable at simulation scales.
    fine_per_j:
        Fine clusterings per ``j`` per coarse cluster. Paper: ``D^0.2``;
        capped by default at 3 (DESIGN.md substitution 2 — when the
        sequence exhausts them, fresh clusterings are resampled, which
        preserves the randomization they exist to provide).
    sequence_length:
        Length of each coarse center's random fine-clustering sequence.
        Paper: ``D^0.99``; ``None`` uses ``ceil(D^0.99)``.
    bg_rounds_per_hop:
        The Algorithm 8 background process advances messages one hop per
        ``Theta(log n)`` rounds; this is that constant times ``log2 n``.
    max_phases:
        Safety cap on total ICP phases before declaring failure.
    """

    centers_mode: str = "mis"
    cost_model: CostModel = dataclasses.field(default_factory=CostModel)
    c_ell: float = 4.0
    fine_per_j: int = 3
    sequence_length: int | None = None
    bg_rounds_per_hop: float = 1.0
    max_phases: int | None = None

    def __post_init__(self) -> None:
        if self.centers_mode not in ("mis", "all"):
            raise ValueError(
                f"centers_mode must be 'mis' or 'all', got {self.centers_mode!r}"
            )


@dataclasses.dataclass
class PhaseRecord:
    """Per-phase instrumentation of a Compete run."""

    phase: int
    rounds_charged: int
    informed_before: int
    informed_after: int


@dataclasses.dataclass
class CompeteResult:
    """Output of :func:`compete`.

    ``winner`` is the highest message key; ``knowledge`` maps every node
    to the key it ended with (equal to ``winner`` everywhere on success).
    ``ledger`` itemizes every charged round.
    """

    winner: int
    knowledge: dict[Hashable, int]
    delivered: bool
    ledger: CostLedger
    phases: list[PhaseRecord]
    alpha_used: int
    mis_size: int

    @property
    def total_rounds(self) -> int:
        """Total charged rounds (setup + propagation)."""
        return self.ledger.total

    @property
    def propagation_rounds(self) -> int:
        """Rounds in the ``D log_D alpha`` leading term."""
        return self.ledger.propagation_total


def _check_graph(graph: nx.Graph, context: GraphContext) -> int:
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphContractError("Compete requires a non-empty graph")
    if list(graph.nodes) != list(range(n)):
        raise GraphContractError(
            "Compete expects integer node labels 0..n-1; relabel with "
            "networkx.convert_node_labels_to_integers first"
        )
    if n > 1 and not context.is_connected():
        raise GraphContractError(
            "broadcast/leader election require a connected graph "
            "(paper Section 1.2)"
        )
    return n


def compete(
    graph: nx.Graph,
    sources: dict[int, int],
    rng: np.random.Generator,
    config: CompeteConfig | None = None,
    alpha: int | None = None,
    context: GraphContext | None = None,
) -> CompeteResult:
    """Run round-accounted ``Compete(S)`` until the highest message wins.

    Parameters
    ----------
    graph:
        Connected graph with nodes ``0..n-1``.
    sources:
        Mapping node -> message key for the candidate set ``S``. Keys
        must be non-negative ints; the highest key is the winner.
    rng:
        Randomness source.
    config:
        Pipeline knobs; defaults to the paper's Algorithm 2.
    alpha:
        The independence-number estimate the algorithm is given (the
        paper needs any polynomial approximation). Defaults to the size
        of the maximal independent set the pipeline computes anyway —
        a valid lower-bound estimate available for free.
    context:
        Optional pre-built :class:`~repro.graphs.context.GraphContext`.
        Repeated trials on one graph share its cached CSR adjacency,
        connectivity, and diameter instead of recomputing them per run;
        defaults to the memoized per-graph context, so even callers
        that pass nothing get the cache.

    Returns
    -------
    CompeteResult
        With ``delivered`` true unless the phase cap was exhausted.
    """
    config = config or CompeteConfig()
    context = context if context is not None else graph_context(graph)
    n = _check_graph(graph, context)
    if not sources:
        raise ValueError("Compete needs at least one source message")
    if any(key < 0 for key in sources.values()):
        raise ValueError("message keys must be non-negative")
    model = config.cost_model
    ledger = CostLedger()
    d = context.diameter
    d = max(2, d)  # bound formulas need D >= 2; D=1 cliques are single-hop

    # --- step 1: MIS (or the all-nodes baseline) -------------------------
    if config.centers_mode == "mis":
        mis = sorted(greedy_independent_set(graph, rng, strategy="random"))
        ledger.charge(model.mis_rounds(n), "ComputeMIS (Thm 14)", "setup")
        centers = mis
    else:
        centers = list(range(n))
        mis = centers
    mis_size = len(mis)
    alpha_used = alpha if alpha is not None else max(1, mis_size)
    # ell's alpha argument: the paper's variant uses alpha, [7] uses n.
    ell_alpha = alpha_used if config.centers_mode == "mis" else n

    # --- steps 2-3: coarse clustering + schedules -------------------------
    cbeta = coarse_beta(d)
    coarse = partition(graph, cbeta, centers, rng)
    ledger.charge(
        model.partition_rounds(n, cbeta), "coarse Partition", "setup"
    )
    ledger.charge(model.schedule_rounds(n), "coarse schedules", "setup")

    # --- steps 4-5: fine clusterings within each coarse cluster -----------
    js = j_range(d)
    fine = _build_fine_clusterings(
        graph, coarse, centers, js, config, rng, context
    )
    # Coarse clusters build their clusterings in parallel; j values and
    # repeated draws are sequential.
    n_clusterings = len(js) * config.fine_per_j
    for j in js:
        ledger.charge(
            model.partition_rounds(n, beta_of_j(j)) * config.fine_per_j,
            f"fine Partitions (j={j})",
            "setup",
        )
    ledger.charge(
        model.schedule_rounds(n) * max(1, n_clusterings),
        "fine schedules",
        "setup",
    )

    # --- steps 6-7: random sequences, transmitted in coarse clusters ------
    seq_len = (
        config.sequence_length
        if config.sequence_length is not None
        else max(1, math.ceil(d**0.99))
    )
    ledger.charge(
        model.sequence_rounds(n, d, seq_len), "sequence transmission", "setup"
    )

    # --- step 8: the phase loop -------------------------------------------
    knowledge = np.full(n, -1, dtype=np.int64)
    for node, key in sources.items():
        knowledge[node] = max(knowledge[node], key)
    winner = int(knowledge.max())

    bg_period = max(1.0, config.bg_rounds_per_hop * math.log2(max(2, n)))
    max_phases = (
        config.max_phases
        if config.max_phases is not None
        else max(50, 60 * d)
    )

    phases: list[PhaseRecord] = []
    bg_credit = 0.0
    phase_index = 0
    delivered = bool((knowledge == winner).all())
    while not delivered:
        if phase_index >= max_phases:
            raise BudgetExceededError(
                f"Compete did not deliver within {max_phases} phases "
                f"({ledger.total} charged rounds)"
            )
        informed_before = int((knowledge == winner).sum())

        # Each coarse cluster follows its own random sequence; a fresh
        # position in the sequence each phase. The global phase length is
        # the maximum ICP length among the coarse clusters' choices
        # (synchronous rounds are network-wide).
        phase_rounds = 0
        for coarse_center, members in coarse.members().items():
            j = int(js[rng.integers(len(js))])
            beta = beta_of_j(j)
            per_j = fine[coarse_center][j]
            clustering = per_j[int(rng.integers(len(per_j)))]
            ell = propagation_length(beta, ell_alpha, d, config.c_ell)
            phase_rounds = max(phase_rounds, model.icp_rounds(ell))
            _apply_icp_event(knowledge, clustering, ell)

        ledger.charge(phase_rounds, "ICP phases", "propagation")

        # Background process (Algorithm 8): guaranteed one-hop progress
        # every bg_period rounds, accumulated across phases.
        bg_credit += phase_rounds / bg_period
        while bg_credit >= 1.0:
            _apply_one_hop_exchange(context, knowledge)
            bg_credit -= 1.0

        delivered = bool((knowledge == winner).all())
        phases.append(
            PhaseRecord(
                phase=phase_index,
                rounds_charged=phase_rounds,
                informed_before=informed_before,
                informed_after=int((knowledge == winner).sum()),
            )
        )
        phase_index += 1

    return CompeteResult(
        winner=winner,
        knowledge={v: int(knowledge[v]) for v in range(n)},
        delivered=delivered,
        ledger=ledger,
        phases=phases,
        alpha_used=alpha_used,
        mis_size=mis_size,
    )


def _build_fine_clusterings(
    graph: nx.Graph,
    coarse: Clustering,
    centers: list[int],
    js: list[int],
    config: CompeteConfig,
    rng: np.random.Generator,
    context: GraphContext | None = None,
) -> dict[int, dict[int, list[Clustering]]]:
    """Algorithm 2 step 4: per coarse cluster, per ``j``, fine clusterings.

    Fine clusterings partition each coarse cluster's subgraph using the
    center candidates that fall inside it (the coarse center itself is
    always a candidate, so the set is never empty). Subgraphs are CSR
    slices of the cached :class:`~repro.graphs.context.GraphContext`
    (:meth:`~repro.graphs.context.GraphContext.induced_csr`) — one slice
    per coarse cluster, reused across every ``j`` and redraw — instead
    of per-cluster ``nx.relabel_nodes`` copies. Shift draws and
    partition results are bit-identical to the networkx path, which is
    retained as :func:`_build_fine_clusterings_reference`.
    """
    context = context if context is not None else graph_context(graph)
    center_set = set(centers)
    fine: dict[int, dict[int, list[Clustering]]] = {}
    for coarse_center, members in coarse.members().items():
        members_arr = np.asarray(members, dtype=np.int64)
        sub_indptr, sub_indices = context.induced_csr(members_arr)
        # Candidate centers inside this coarse cluster; the coarse center
        # itself is always one (used centers own themselves in MPX).
        local_centers = [
            i for i, v in enumerate(members) if v in center_set
        ]
        fine[coarse_center] = {}
        for j in js:
            beta = beta_of_j(j)
            draws = []
            for _ in range(config.fine_per_j):
                local = partition_csr(
                    sub_indptr,
                    sub_indices,
                    len(members),
                    beta,
                    local_centers,
                    rng,
                )
                draws.append(
                    _lift_clustering(local, members_arr, len(graph))
                )
            fine[coarse_center][j] = draws
    return fine


def _build_fine_clusterings_reference(
    graph: nx.Graph,
    coarse: Clustering,
    centers: list[int],
    js: list[int],
    config: CompeteConfig,
    rng: np.random.Generator,
) -> dict[int, dict[int, list[Clustering]]]:
    """The original networkx subgraph/relabel construction (reference).

    One relabeled copy per coarse cluster; kept for the equivalence
    suite, which pins :func:`_build_fine_clusterings` against it
    bit-for-bit under a shared rng.
    """
    center_set = set(centers)
    fine: dict[int, dict[int, list[Clustering]]] = {}
    for coarse_center, members in coarse.members().items():
        # Relabel the coarse-cluster subgraph 0..k-1 for partition().
        relabel = {v: i for i, v in enumerate(members)}
        members_arr = np.asarray(members, dtype=np.int64)
        sub_relabeled = nx.relabel_nodes(
            graph.subgraph(members), relabel, copy=True
        )
        local_centers = [relabel[v] for v in members if v in center_set]
        fine[coarse_center] = {}
        for j in js:
            beta = beta_of_j(j)
            draws = []
            for _ in range(config.fine_per_j):
                local = partition(sub_relabeled, beta, local_centers, rng)
                draws.append(
                    _lift_clustering(local, members_arr, len(graph))
                )
            fine[coarse_center][j] = draws
    return fine


def _lift_clustering(
    local: Clustering, members: np.ndarray, n: int
) -> Clustering:
    """Lift a subgraph clustering to global indices (vectorized).

    ``members[i]`` is the global index of local node ``i``. Nodes
    outside the coarse cluster get assignment ``-1`` (they belong to
    other coarse clusters' fine clusterings) and are ignored by the
    event update.
    """
    assignment = np.full(n, -1, dtype=np.int64)
    distance = np.full(n, -1, dtype=np.int64)
    assignment[members] = members[local.assignment]
    distance[members] = local.distance_to_center
    return Clustering(
        beta=local.beta,
        centers=sorted(int(members[c]) for c in local.centers),
        assignment=assignment,
        distance_to_center=distance,
        delta={int(members[c]): s for c, s in local.delta.items()},
    )


def _apply_icp_event(
    knowledge: np.ndarray, clustering: Clustering, ell: int
) -> None:
    """Event-level effect of Algorithm 9 on one fine clustering.

    Within each cluster, consider the members within distance ``ell`` of
    the center (plus the center). After down/up/down passes they all know
    the highest message any of them knew — exactly the guarantee the fast
    schedules provide. Members beyond ``ell`` are untouched.
    """
    assigned = clustering.assignment >= 0
    in_range = assigned & (clustering.distance_to_center <= ell)
    if not in_range.any():
        return
    # Segment max per cluster, vectorized: scatter member knowledge into
    # a per-center maximum, then broadcast each cluster's max back.
    members = np.nonzero(in_range)[0]
    owners = clustering.assignment[members]
    cluster_max = np.full(len(knowledge), -1, dtype=np.int64)
    np.maximum.at(cluster_max, owners, knowledge[members])
    knowledge[members] = np.maximum(knowledge[members], cluster_max[owners])


def _apply_one_hop_exchange(
    context: GraphContext, knowledge: np.ndarray
) -> None:
    """Event-level effect of one background hop (Algorithm 8).

    Every node learns the highest message among itself and its neighbors
    — the progress the slow background broadcast guarantees once per
    ``Theta(log n)`` rounds. Vectorized as one scatter-max over the
    cached CSR edge arrays.
    """
    src, dst = context.edges()
    updated = knowledge.copy()
    np.maximum.at(updated, dst, knowledge[src])
    knowledge[:] = updated
