"""EstimateEffectiveDegree (paper Algorithm 6).

Radio MIS needs each node ``v`` to know whether its *effective degree*
``d_t(v) = sum of p_t(u) over neighbors u`` is large or small — but exact
effective degrees cannot be collected in a radio network. Algorithm 6
estimates it by listening: for each density guess ``i = 0 .. log n``,
every node transmits with probability ``p_t(v) / 2^i`` for ``C log n``
steps; when ``2^i`` matches ``d_t(v)``, a constant fraction of those
steps deliver a clean transmission, so hearing at least ``C log n / 33``
transmissions at some ``i`` certifies a large effective degree
(Lemma 11: ``d_t(v) >= 1`` implies High whp, ``d_t(v) <= 0.01`` implies
Low whp; in between either answer is allowed).

The protocol runs on *all* active nodes concurrently — each node is both
a transmitter (perturbing others' estimates exactly as in the real
algorithm) and a listener counting its own hears.

Performance: Algorithm 6 is *fully oblivious* — every transmit mask
depends only on the fixed desire levels, the step's density guess, and
fresh coins, never on what was heard (receptions only update counters).
:func:`effective_degree_schedule` therefore emits the entire
``O(log^2 n)``-step block as
:class:`~repro.engine.segments.ObliviousWindow` segments, executed as a
handful of sparse matrix-matrix products by the windowed engine. The
step-wise drive is retained as
:func:`estimate_effective_degree_reference`; results, trace totals, and
rng consumption are bit-identical.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..engine.pcg import CoinField
from ..engine.policy import ExecutionPolicy, legacy_policy
from ..engine.segments import PlanSection, ProtocolSchedule, StreamedWindow
from ..radio.network import (
    NO_SENDER,
    PipelineForm,
    RadioNetwork,
    TransmitPlan,
)
from ..radio.protocol import Protocol, run_steps
from .resulteq import ArrayEqMixin

#: Lemma 11's hearing-rate threshold: High iff some round-``i`` hear count
#: reaches ``steps_per_level / 33``.
THRESHOLD_DIVISOR = 33.0

#: Effective degree above which Lemma 11 guarantees High.
HIGH_GUARANTEE = 1.0

#: Effective degree below which Lemma 11 guarantees Low.
LOW_GUARANTEE = 0.01


@dataclasses.dataclass(eq=False)
class EffectiveDegreeResult(ArrayEqMixin):
    """Outcome of one EstimateEffectiveDegree block.

    ``high`` is the per-node High/Low verdict (True = High); ``counts``
    has shape ``(levels, n)`` with the raw per-level hear counts, kept for
    the E2 accuracy experiment.
    """

    high: np.ndarray
    counts: np.ndarray
    steps_per_level: int


class EstimateEffectiveDegree(Protocol):
    """Vectorized Algorithm 6 over the active node set.

    Parameters
    ----------
    network:
        The radio network.
    p:
        Desire levels ``p_t(v)``; only entries of active nodes are used.
    active:
        Mask of nodes still in the (MIS-residual) graph. Inactive nodes
        neither transmit nor produce a verdict.
    C:
        The "sufficiently large constant": each density level runs for
        ``C * ceil(log2 n)`` steps. Larger ``C`` sharpens Lemma 11's
        guarantee at linear cost in steps; the E2 benchmark sweeps it.
    n_estimate:
        Network-size estimate; defaults to the true ``n``.
    """

    def __init__(
        self,
        network: RadioNetwork,
        p: np.ndarray,
        active: np.ndarray,
        C: int = 24,
        n_estimate: int | None = None,
    ) -> None:
        super().__init__(network)
        p = np.asarray(p, dtype=np.float64)
        active = np.asarray(active, dtype=bool)
        if p.shape != (self.n,) or active.shape != (self.n,):
            raise ValueError("p and active must be length-n arrays")
        if np.any((p < 0) | (p > 1)):
            raise ValueError("desire levels must lie in [0, 1]")
        if C < 1:
            raise ValueError(f"C must be >= 1, got {C}")
        n_est = n_estimate if n_estimate is not None else self.n
        log_n = max(1, math.ceil(math.log2(max(2, n_est))))

        self.p = np.where(active, p, 0.0)
        self.active = active.copy()
        self.levels = log_n + 1  # i = 0 .. log n inclusive
        self.steps_per_level = C * log_n
        self.total_steps = self.levels * self.steps_per_level
        self.counts = np.zeros((self.levels, self.n), dtype=np.int64)
        self._step = 0
        self._finished = self.total_steps == 0

    def _level(self) -> int:
        return self._step // self.steps_per_level

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        i = self._level()
        prob = self.p / (2.0**i)
        return self.active & (rng.random(self.n) < prob)

    def observe(self, hear_from: np.ndarray) -> None:
        i = self._level()
        heard = (hear_from != NO_SENDER) & self.active
        self.counts[i, heard] += 1
        self._step += 1
        if self._step >= self.total_steps:
            self._finished = True

    def _absorb_window(self, hear_window: np.ndarray) -> None:
        """Fold a ``(k, n)`` window of receptions, in step order.

        Equivalent to ``k`` sequential :meth:`observe` calls: each row's
        hears increment the counter of that step's density level. A
        chunk may straddle level boundaries, so rows are grouped by
        level before the (order-independent) per-level sums.
        """
        k = hear_window.shape[0]
        heard = (hear_window != NO_SENDER) & self.active[None, :]
        levels = (self._step + np.arange(k)) // self.steps_per_level
        for lev in np.unique(levels):
            rows = heard[levels == lev]
            self.counts[lev] += rows.sum(axis=0)
        self._step += k
        if self._step >= self.total_steps:
            self._finished = True

    def _absorb_window_at(
        self, hear_window: np.ndarray, cols: np.ndarray
    ) -> None:
        """Column-restricted twin of :meth:`_absorb_window`.

        ``hear_window`` is ``(k, len(cols))``; nodes outside ``cols``
        heard silence (residual support invariant), so their counters
        are unchanged by construction.
        """
        k = hear_window.shape[0]
        heard = (hear_window != NO_SENDER) & self.active[cols][None, :]
        levels = (self._step + np.arange(k)) // self.steps_per_level
        for lev in np.unique(levels):
            rows = heard[levels == lev]
            self.counts[lev, cols] += rows.sum(axis=0)
        self._step += k
        if self._step >= self.total_steps:
            self._finished = True

    def _absorb_coo(
        self,
        k: int,
        steps: np.ndarray,
        nodes: np.ndarray,
        senders: np.ndarray,
    ) -> None:
        """Reception-triple twin of :meth:`_absorb_window`.

        Folds ``(step, node, sender)`` triples for a ``k``-step chunk:
        each reception bumps the counter of its step's density level.
        Hear counts are order-independent sums, so arbitrary triple
        order is fine; ``np.add.at`` accumulates duplicates (the same
        node hearing on several steps of one chunk) correctly.
        """
        keep = self.active[nodes]
        if keep.any():
            lev = (self._step + steps[keep]) // self.steps_per_level
            np.add.at(self.counts, (lev, nodes[keep]), 1)
        self._step += k
        if self._step >= self.total_steps:
            self._finished = True

    def result(self) -> EffectiveDegreeResult:
        threshold = self.steps_per_level / THRESHOLD_DIVISOR
        high = (self.counts >= threshold).any(axis=0) & self.active
        return EffectiveDegreeResult(
            high=high,
            counts=self.counts.copy(),
            steps_per_level=self.steps_per_level,
        )


def effective_degree_schedule(
    network: RadioNetwork,
    p: np.ndarray,
    active: np.ndarray,
    rng: np.random.Generator,
    C: int = 24,
    n_estimate: int | None = None,
) -> ProtocolSchedule:
    """Schedule emitter for one full EstimateEffectiveDegree block.

    Step ``t`` of the block transmits with probability
    ``p(v) / 2^(t // steps_per_level)``; the whole block goes out as one
    :class:`~repro.engine.segments.StreamedWindow`, its coins drawn
    lazily chunk-row-major inside the plan (stream-identical to the
    protocol's per-step draws whatever slab height the runner picks) and
    its receptions folded per chunk through
    :meth:`EstimateEffectiveDegree._absorb_window`. Returns the block's
    :class:`EffectiveDegreeResult`.
    """
    protocol = EstimateEffectiveDegree(
        network, p, active, C=C, n_estimate=n_estimate
    )
    total = protocol.total_steps
    if total:
        n = network.n
        # 2^i is exact, so dividing row-wise reproduces the protocol's
        # per-step `p / 2**i` values bit-for-bit.
        pow2 = 2.0 ** (np.arange(total) // protocol.steps_per_level)
        coins = CoinField(rng, n)

        # ``coin < p / 2^i`` is tested as ``coin * 2^i < p``: scaling a
        # float by a power of two is exact (exponent arithmetic only),
        # so the comparison is bit-identical while the per-step
        # threshold matrix ``p / 2^i`` never materializes — the coin
        # block (a dead scratch view once thresholded) rescales in
        # place instead.

        def masks(start: int, stop: int) -> np.ndarray:
            flips = coins.draw(start, stop)
            flips *= pow2[start:stop, None]
            out = flips < protocol.p[None, :]
            out &= protocol.active[None, :]
            return out

        def masks_at(
            start: int, stop: int, cols: np.ndarray
        ) -> np.ndarray:
            flips = coins.draw_at(start, stop, cols)
            flips *= pow2[start:stop, None]
            out = flips < protocol.p[cols][None, :]
            out &= protocol.active[cols][None, :]
            return out

        # Separable form for the fused pipeline: `p * 2^-i` equals the
        # slab path's `p / 2^i` bit-for-bit (power-of-two scaling is
        # exact), with the desire level — already zeroed outside the
        # active set — as the fixed column factor.
        row_probs = 2.0 ** -(np.arange(total) // protocol.steps_per_level)

        # One unlabeled section per density level. Chunks never
        # straddle a section boundary, so every fold sees rows of a
        # single level, and the whole ladder still shares one plan —
        # one restriction decision (and one ResidualContext) for the
        # block instead of one per level.
        sections = tuple(
            PlanSection(
                protocol.steps_per_level,
                None,
                protocol._absorb_window,
                protocol._absorb_window_at,
                protocol._absorb_coo,
            )
            for _ in range(protocol.levels)
        )

        yield StreamedWindow(
            TransmitPlan(
                total, masks,
                support=protocol.active, masks_at=masks_at,
                pipeline=PipelineForm(
                    coins, row_probs, lambda start: protocol.p
                ),
            ),
            sections=sections,
        )
    return protocol.result()


def estimate_effective_degree(
    network: RadioNetwork,
    p: np.ndarray,
    active: np.ndarray,
    rng: np.random.Generator,
    C: int = 24,
    n_estimate: int | None = None,
    delivery: str | None = None,
    chunk_steps: int | None = None,
    mem_budget: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> EffectiveDegreeResult:
    """Run one full EstimateEffectiveDegree block under ``policy``.

    The policy's ``delivery`` selects the window execution strategy
    (``"auto"``, ``"sparse"``, ``"dense"``) — a performance knob only,
    all three are bit-identical. Desire levels near ``p = 0.5`` on
    dense graphs are the regime where ``"auto"`` routes the low-``i``
    density levels through the dense matmul (most (listener, step)
    pairs hear energy, so the sparse product's output stops being
    sparse). ``chunk_steps``/``mem_budget`` bound the streamed slab
    height (memory knobs only — bit-identical at any setting); this
    block is the canonical out-of-core workload, since its
    ``O(log^2 n)`` steps are what stalled ``n >= 10^5`` runs when
    materialized whole. ``engine="reference"`` dispatches to
    :func:`estimate_effective_degree_reference`; the deprecated
    per-call kwargs fold into a policy through the usual shim.
    """
    policy = legacy_policy(
        policy, "estimate_effective_degree", delivery=delivery,
        chunk_steps=chunk_steps, mem_budget=mem_budget,
    )
    policy.bind(network)
    if policy.engine_for(("windowed", "reference"), "windowed") == "reference":
        return estimate_effective_degree_reference(
            network, p, active, rng, C=C, n_estimate=n_estimate
        )
    return policy.run_schedule(
        network,
        effective_degree_schedule(
            network, p, active, rng, C=C, n_estimate=n_estimate
        ),
    )


def estimate_effective_degree_reference(
    network: RadioNetwork,
    p: np.ndarray,
    active: np.ndarray,
    rng: np.random.Generator,
    C: int = 24,
    n_estimate: int | None = None,
) -> EffectiveDegreeResult:
    """Step-wise EstimateEffectiveDegree: the executable specification.

    Drives the :class:`EstimateEffectiveDegree` protocol one step at a
    time; the equivalence suite pins the windowed path against it.
    """
    protocol = EstimateEffectiveDegree(
        network, p, active, C=C, n_estimate=n_estimate
    )
    run_steps(protocol, rng, protocol.total_steps)
    return protocol.result()


def exact_effective_degree(
    network: RadioNetwork, p: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Oracle effective degrees ``d_t(v)`` (instrumentation only).

    Used by the ``oracle_degree`` fidelity knob of Radio MIS (documented
    in DESIGN.md substitution 3) and by golden-round instrumentation;
    never by the faithful protocol path.
    """
    p = np.asarray(p, dtype=np.float64)
    active = np.asarray(active, dtype=bool)
    return network.neighbor_sum(np.where(active, p, 0.0))
