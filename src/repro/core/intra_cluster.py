"""Intra-Cluster Propagation (paper Algorithms 9 and 10), packet level.

Algorithm 9 moves the highest message known inside each cluster to every
member within distance ``ell`` of the center in three pipelined passes:

1. downward — the center's message flows out along BFS layers;
2. upward — members knowing a *higher* message flow it toward the center;
3. downward again — the center redistributes the new highest message.

Passes use the slot schedules of :mod:`repro.core.schedule` (collision
-free within clusters). Algorithm 10 is the concurrent background
process: clusters repeatedly flip coordinated coins and run single Decay
iterations, which works around collisions caused by nodes bordering
*other* clusters — those are real in this simulation, exactly the
failure mode the background exists for.

Knowledge is represented as an ``int64`` array of message keys with
``-1`` meaning "knows nothing"; keys are ordered, and bigger overrides
smaller (the ``Compete`` override rule).

Engine migration notes. A Decay iteration (Algorithm 5) runs over a set
``S`` that is *fixed for the sweep*, so :class:`DecayBackground`
freezes its participant set and payloads at each block boundary and
commits receptions when the block ends — sweep-synchronized semantics
that are both closer to the primitive the paper invokes and what makes
a standalone background block an oblivious window
(:func:`decay_background_schedule`). Inside
:func:`intra_cluster_propagation` the background is time-multiplexed
with the *adaptive* slot passes (each slot's mask depends on knowledge
received in earlier slots). Under ``engine="windowed"`` that makes
every multiplexed step a decision point
(:func:`~repro.engine.runner.protocol_schedule`, fused single-step
deliveries); under ``engine="fused"`` the plan/commit split lets the
:func:`~repro.engine.mux.multiplex` combinator zip the slot passes
(width-1 planned windows, exact step count) with sweep-wide background
windows (:class:`DecayBackgroundSource`) into joint oblivious windows
— roughly half as many delivery calls, each a sparse product over the
few transmitters of a slot or sweep row. ``engine="reference"`` drives
the identical protocols through
:func:`~repro.radio.protocol.run_steps`. All three are bit-identical
on a shared seed (``tests/test_engine_mux.py``).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..engine.mux import multiplex
from ..engine.policy import ExecutionPolicy, legacy_policy
from ..engine.runner import (
    ProtocolSegmentSource,
    protocol_schedule,
)
from ..engine.segments import (
    ObliviousWindow,
    ProtocolSchedule,
    SegmentProtocol,
)
from ..radio.errors import ProtocolError
from ..radio.network import NO_SENDER, RadioNetwork
from ..radio.protocol import Protocol, TimeMultiplexer, run_steps
from .cluster import Clustering
from .resulteq import ArrayEqMixin
from .schedule import ClusterSchedule


@dataclasses.dataclass(eq=False)
class ICPResult(ArrayEqMixin):
    """Outcome of one packet-level Intra-Cluster Propagation run."""

    knowledge: np.ndarray
    steps: int


class _SlotPassProtocol(Protocol):
    """One sequence of (layer, color) slots over clusters in lockstep.

    ``layers`` lists the layer indices in firing order (ascending for a
    downward pass, descending for upward); each layer expands into its
    color slots. Nodes with no knowledge stay silent even when their slot
    fires.
    """

    def __init__(
        self,
        network: RadioNetwork,
        schedule: ClusterSchedule,
        knowledge: np.ndarray,
        layers: list[int],
    ) -> None:
        super().__init__(network)
        self.schedule = schedule
        self.knowledge = knowledge  # shared, mutated in place
        self.slots: list[tuple[int, int]] = [
            (layer, color)
            for layer in layers
            for color in range(schedule.n_colors)
        ]
        self._slot_masks = schedule.pass_masks(layers)
        self._cursor = 0
        self._tx_snapshot: np.ndarray | None = None
        self._finished = not self.slots

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        mask = self._slot_masks[self._cursor] & (self.knowledge >= 0)
        self._tx_snapshot = self.knowledge.copy()
        return mask

    def observe(self, hear_from: np.ndarray) -> None:
        assert self._tx_snapshot is not None
        heard = hear_from != NO_SENDER
        senders = hear_from[heard]
        values = self._tx_snapshot[senders]
        np.maximum.at(self.knowledge, np.nonzero(heard)[0], values)
        self._cursor += 1
        if self._cursor >= len(self.slots):
            self._finished = True

    def result(self) -> np.ndarray:
        return self.knowledge


class DecayBackground(Protocol):
    """Algorithm 10: the Decay background process of ICP.

    Runs forever (until the multiplexer's main process completes): cycling
    ``i = 1 .. log n``, each cluster flips a coordinated coin with
    probability ``2^-i``; on heads its knowledge-bearing members perform
    one Decay iteration (a ``log n``-step sweep), on tails they stay
    silent for the same duration. Listeners everywhere adopt the highest
    message they hear — this is what carries messages across cluster
    boundaries despite schedule collisions.

    Sweep-synchronized semantics: a Decay iteration (Algorithm 5) runs
    over a set fixed for the whole sweep, so the participant set, the
    transmitted payloads, and the sweep's coins are all frozen when a
    block starts, and receptions are committed to ``knowledge`` when the
    block ends. This is what makes a block *oblivious* — the windowed
    :func:`decay_background_schedule` executes the identical plan as one
    sparse product per block, bit-identical to stepping this protocol.
    """

    def __init__(
        self,
        network: RadioNetwork,
        clustering: Clustering,
        knowledge: np.ndarray,
        n_estimate: int | None = None,
    ) -> None:
        super().__init__(network)
        self.clustering = clustering
        self.knowledge = knowledge  # shared, mutated in place
        n_est = n_estimate if n_estimate is not None else self.n
        self.span = max(1, math.ceil(math.log2(max(2, n_est))))
        self._i = 1
        self._step_in_block = 0
        self._block_masks: np.ndarray | None = None
        self._block_payload: np.ndarray | None = None
        self._block_incoming: np.ndarray | None = None
        # Per-block planning is on the hot path of every ICP engine, so
        # the per-node center lookup is precomputed once: position of
        # each node's center in the used-centers order, -1 when the
        # node's assignment is not a used center.
        self._centers = np.asarray(
            clustering.used_centers(), dtype=np.int64
        )
        center_pos = {int(c): i for i, c in enumerate(self._centers)}
        self._assign_pos = np.array(
            [center_pos.get(int(c), -1) for c in clustering.assignment],
            dtype=np.int64,
        )
        self._probs = 2.0 ** -(np.arange(self.span) + 1.0)
        self._on_padded: np.ndarray | None = None

    @property
    def _cluster_on(self) -> dict[int, bool]:
        """Per-center on/off coins of the current block, as a dict.

        Introspection only (tests, debugging) — planning reads the
        vectorized ``_on_padded`` directly, so the dict is built
        lazily, off the per-block hot path.
        """
        if self._on_padded is None:
            return {}
        return {
            int(c): bool(v)
            for c, v in zip(self._centers, self._on_padded[:-1])
        }

    def _refresh_cluster_coins(self, rng: np.random.Generator) -> None:
        # One vectorized draw over the used centers consumes exactly the
        # stream of the historical per-center scalar draws, in the same
        # (used_centers) order. A trailing False lets assignment
        # positions of -1 (no used center) index it.
        prob = 2.0**-self._i
        coins = rng.random(self._centers.size) < prob
        self._on_padded = np.append(coins, False)

    def _plan_block(self, rng: np.random.Generator) -> None:
        """Freeze one sweep: cluster coins, participants, payloads, coins.

        Draw order (cluster coins first, then the ``(span, n)`` coin
        matrix) is the stream contract shared with
        :func:`decay_background_schedule`.
        """
        self._refresh_cluster_coins(rng)
        on = self._on_padded[self._assign_pos]
        participants = on & (self.knowledge >= 0)
        coins = rng.random((self.span, self.n)) < self._probs[:, None]
        self._block_masks = participants[None, :] & coins
        self._block_payload = self.knowledge.copy()
        self._block_incoming = np.full(self.n, -1, dtype=np.int64)

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        if self._step_in_block == 0:
            self._plan_block(rng)
        assert self._block_masks is not None
        return self._block_masks[self._step_in_block]

    def observe(self, hear_from: np.ndarray) -> None:
        assert self._block_payload is not None
        assert self._block_incoming is not None
        heard = hear_from != NO_SENDER
        values = self._block_payload[hear_from[heard]]
        np.maximum.at(self._block_incoming, np.nonzero(heard)[0], values)
        self._step_in_block += 1
        if self._step_in_block >= self.span:
            # Block boundary: commit the sweep's receptions.
            np.maximum(
                self.knowledge, self._block_incoming, out=self.knowledge
            )
            self._step_in_block = 0
            self._i += 1
            if self._i > self.span:
                self._i = 1

    def result(self) -> np.ndarray:
        return self.knowledge


def _commit_decay_block(
    protocol: DecayBackground, hear_window: np.ndarray
) -> None:
    """Fold one completed sweep's receptions into ``knowledge``.

    The vectorized equivalent of ``span`` sequential ``observe`` calls
    followed by the block-end commit: the max-fold is associative and
    commutative over exact integers, so folding the whole ``(span, n)``
    window at once is bit-identical to the step-wise path. Also
    advances the sweep's density counter, as ``observe`` does at block
    boundaries.
    """
    payload = protocol._block_payload
    assert payload is not None
    heard = hear_window != NO_SENDER
    incoming = np.full(protocol.n, -1, dtype=np.int64)
    step_idx, node_idx = np.nonzero(heard)
    np.maximum.at(
        incoming, node_idx, payload[hear_window[step_idx, node_idx]]
    )
    np.maximum(protocol.knowledge, incoming, out=protocol.knowledge)
    protocol._i += 1
    if protocol._i > protocol.span:
        protocol._i = 1


class DecayBackgroundSource(SegmentProtocol):
    """Plan/commit form of the :class:`DecayBackground` sweep stream.

    ``plan`` freezes one sweep — cluster coins, participants, payloads,
    the ``(span, n)`` coin matrix — exactly as the protocol's
    ``_plan_block`` does at a block boundary, and emits it as one
    :class:`~repro.engine.segments.ObliviousWindow`; ``commit`` folds
    the sweep's receptions at the block end. This is the native
    plan/commit citizen the :func:`~repro.engine.mux.multiplex`
    combinator needs (the generator form cannot separate the two —
    its ``knowledge`` commit would land at the wrong multiplexed step).
    A sweep that the run abandons mid-block is never committed,
    matching the step-wise protocol, which only commits at block ends.
    """

    def __init__(self, protocol: DecayBackground) -> None:
        super().__init__(protocol.n)
        self.protocol = protocol
        self._awaiting_commit = False

    def plan(self, rng: np.random.Generator) -> ObliviousWindow:
        if self._awaiting_commit:
            raise ProtocolError(
                "DecayBackgroundSource.plan() before the previous sweep "
                "was committed"
            )
        self.protocol._plan_block(rng)
        assert self.protocol._block_masks is not None
        self._awaiting_commit = True
        return ObliviousWindow(self.protocol._block_masks)

    def commit(self, hear_window: np.ndarray) -> None:
        if not self._awaiting_commit:
            raise ProtocolError(
                "DecayBackgroundSource.commit() without a planned sweep"
            )
        _commit_decay_block(self.protocol, hear_window)
        self._awaiting_commit = False

    def result(self) -> np.ndarray:
        return self.protocol.knowledge


def decay_background_schedule(
    network: RadioNetwork,
    clustering: Clustering,
    knowledge: np.ndarray,
    rng: np.random.Generator,
    total_steps: int,
    n_estimate: int | None = None,
) -> ProtocolSchedule:
    """Run the Decay background alone for ``total_steps`` radio steps,
    one oblivious window per sweep.

    Standalone (no multiplexed main process), every block of
    :class:`DecayBackground` is an oblivious window: participants,
    payloads, and coins are frozen at the block boundary. This emitter
    executes exactly the plan the protocol would have stepped through —
    same rng draws, same masks, same block-end commits; a final partial
    block executes its steps but (like the step-wise protocol, which
    only commits at block ends) leaves ``knowledge`` untouched. Returns
    ``knowledge``, mutated in place.
    """
    if total_steps < 0:
        raise ValueError(f"total_steps must be >= 0, got {total_steps}")
    protocol = DecayBackground(
        network, clustering, knowledge, n_estimate=n_estimate
    )
    done = 0
    while done < total_steps:
        protocol._plan_block(rng)
        masks = protocol._block_masks
        assert masks is not None
        remaining = total_steps - done
        if remaining < protocol.span:
            yield ObliviousWindow(masks[:remaining])
            done = total_steps
            break
        hear_window = yield ObliviousWindow(masks)
        _commit_decay_block(protocol, hear_window)
        done += protocol.span
    return knowledge


class ICPProtocol(Protocol):
    """Full Algorithm 9: down / up / down slot passes over distance ``ell``.

    Layers beyond ``ell`` never fire — the paper's
    ``Intra-Cluster Propagation(ell)`` only serves nodes within distance
    ``ell`` of their center; deeper nodes rely on later phases (their
    clusters were built with a different random shift) and the
    background.
    """

    def __init__(
        self,
        network: RadioNetwork,
        schedule: ClusterSchedule,
        knowledge: np.ndarray,
        ell: int,
    ) -> None:
        super().__init__(network)
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        depth = min(ell, schedule.n_layers - 1)
        down = list(range(0, depth + 1))
        up = list(range(depth, -1, -1))
        self._passes = [
            _SlotPassProtocol(network, schedule, knowledge, down),
            _SlotPassProtocol(network, schedule, knowledge, up),
            _SlotPassProtocol(network, schedule, knowledge, down),
        ]
        self._stage = 0
        self.knowledge = knowledge

    @property
    def finished(self) -> bool:
        return self._stage >= len(self._passes)

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        return self._passes[self._stage].transmit_mask(rng)

    def observe(self, hear_from: np.ndarray) -> None:
        current = self._passes[self._stage]
        current.observe(hear_from)
        if current.finished:
            self._stage += 1

    def result(self) -> np.ndarray:
        return self.knowledge


def build_icp_inputs(
    graph,
    rng: np.random.Generator,
    beta: float = 0.3,
    sources: dict[int, int] | None = None,
) -> tuple[Clustering, ClusterSchedule, np.ndarray]:
    """The standard setup pipeline for one standalone ICP phase.

    Greedy-MIS centers, one ``Partition(beta, MIS)`` draw, its slot
    schedule, and a knowledge vector seeded from ``sources`` (node
    index -> message key; everyone else knows nothing). The CLI ``icp``
    subcommand and the P3 benchmark share this so the configuration
    being demonstrated is the one the bit-identity claims were
    verified on.
    """
    from ..graphs import greedy_independent_set
    from .mpx import partition
    from .schedule import build_schedule

    mis = sorted(greedy_independent_set(graph, rng, "random"))
    clustering = partition(graph, beta, mis, rng)
    schedule = build_schedule(graph, clustering)
    knowledge = np.full(graph.number_of_nodes(), -1, dtype=np.int64)
    for node, key in (sources or {}).items():
        knowledge[node] = max(knowledge[node], int(key))
    return clustering, schedule, knowledge


def intra_cluster_propagation(
    network: RadioNetwork,
    clustering: Clustering,
    schedule: ClusterSchedule,
    knowledge: np.ndarray,
    ell: int,
    rng: np.random.Generator,
    with_background: bool = True,
    engine: str | None = None,
    delivery: str | None = None,
    chunk_steps: int | None = None,
    mem_budget: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> ICPResult:
    """Run one packet-level ICP phase, mutating and returning knowledge.

    When ``with_background`` is set (the default, matching the paper),
    the Algorithm 10 background process is time-multiplexed with the slot
    passes, doubling the step count but carrying messages across cluster
    boundaries.

    Three engines execute the identical protocol, bit-identically on a
    shared seed:

    * ``engine="fused"`` — the slot passes enter as a width-1
      plan/commit stream (:class:`~repro.engine.runner
      .ProtocolSegmentSource`, exact step count) and the background as
      sweep-wide planned windows (:class:`DecayBackgroundSource`); the
      :func:`~repro.engine.mux.multiplex` combinator zips them into
      joint oblivious windows, so the Decay background runs as sparse
      window products instead of degrading every multiplexed step to a
      decision point. This is the fast path for ICP.
    * ``engine="windowed"`` (default) — the conservative engine path:
      every multiplexed step is a decision point via
      :func:`~repro.engine.runner.protocol_schedule`, executed on the
      fused single-step delivery.
    * ``engine="reference"`` — the step-wise executable specification
      through :func:`~repro.radio.protocol.run_steps`.

    The policy's ``delivery`` routes the engine paths' window
    execution (``"auto"``, ``"sparse"``, ``"dense"``); the reference
    path ignores it. Without a background there is nothing to
    multiplex: ``engine="fused"`` runs the slot passes exactly as
    ``"windowed"`` does. ``chunk_steps``/``mem_budget`` bound the
    engine paths' streamed slab height (the fused path's joint windows
    stream, so joint hear-windows never materialize whole); memory
    knobs only, bit-identical at any setting, ignored by the reference
    path. The deprecated per-call kwargs fold into a policy through
    the usual shim.
    """
    policy = legacy_policy(
        policy, "intra_cluster_propagation", engine=engine,
        delivery=delivery, chunk_steps=chunk_steps, mem_budget=mem_budget,
    )
    policy.bind(network)
    engine = policy.engine_for(("windowed", "reference", "fused"), "windowed")
    knowledge = np.asarray(knowledge, dtype=np.int64).copy()
    main = ICPProtocol(network, schedule, knowledge, ell)
    main_slots = sum(len(p.slots) for p in main._passes)
    steps_before = network.steps_elapsed
    network.trace.enter_phase("icp")
    if engine == "fused" and with_background:
        background = DecayBackground(network, clustering, knowledge)
        policy.run_schedule(
            network,
            multiplex(
                ProtocolSegmentSource(main, steps=main_slots),
                DecayBackgroundSource(background),
                rng=rng,
                stream=True,
            ),
        )
    else:
        if with_background:
            background = DecayBackground(network, clustering, knowledge)
            muxed: Protocol = TimeMultiplexer(network, main, background)
            # The multiplexer runs main on even steps; give it twice
            # the slots.
            total = 2 * main_slots + 2
        else:
            muxed = main
            total = main_slots
        if engine == "reference":
            run_steps(muxed, rng, total)
        else:
            policy.run_schedule(
                network,
                protocol_schedule(muxed, rng, steps=total),
            )
    network.trace.enter_phase("default")
    return ICPResult(
        knowledge=knowledge, steps=network.steps_elapsed - steps_before
    )
