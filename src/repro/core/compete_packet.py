"""Packet-level Compete: the full pipeline, every collision simulated.

The round-accounted :mod:`repro.core.compete` is the scalable way to
measure the paper's asymptotic shapes; this module is its ground-truth
companion for small graphs — **everything** here happens on the radio
simulator:

1. Radio MIS (Algorithm 7) finds the cluster-center candidates;
2. ``Partition(beta, MIS)`` clusterings are built by the packet-level
   wave protocol of [18] (:mod:`repro.core.partition_radio`);
3. each phase runs packet-level Intra-Cluster Propagation (Algorithms
   9-10: slot schedules + Decay background) on a freshly chosen fine
   clustering;
4. the loop ends when every node knows the highest message.

One documented simplification (a fidelity knob, not a silent cheat): the
phase sequence of fine clusterings is drawn from shared randomness
instead of being negotiated through the coarse-clustering machinery of
Algorithm 2 steps 2-7. The paper introduces coarse clusters *only* to
let nodes agree on those random choices in the ad-hoc model; the
round-accounted pipeline models that machinery and charges for it, while
this packet-level variant assumes a shared seed so that every simulated
step is protocol communication. E6's packet-vs-accounted comparison
quantifies the difference.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.policy import ExecutionPolicy, validate_engine
from ..graphs.context import GraphContext, graph_context
from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.network import RadioNetwork
from .costmodel import propagation_length
from .decay import run_decay
from .intra_cluster import intra_cluster_propagation
from .mis import MISConfig, compute_mis
from .mpx import beta_of_j, j_range
from .partition_radio import partition_radio
from .schedule import build_schedule


@dataclasses.dataclass
class PacketCompeteConfig:
    """Knobs of the packet-level Compete.

    ``clusterings_per_j`` fine clusterings are prepared per ``j`` (the
    paper's ``D^0.2``, capped for tractability — resampling on
    exhaustion preserves the randomization; DESIGN.md substitution 2).
    ``mis_config`` defaults to the oracle-degree speed knob since MIS
    step costs are already measured separately in E1.

    ``engine`` selects the delivery engine for every stage:
    ``"windowed"`` (default) batches oblivious segments through the
    engine layer, ``"reference"`` drives the retained step-wise
    implementations, and ``"fused"`` additionally runs each ICP phase
    through the :func:`~repro.engine.mux.multiplex` combinator (the
    non-ICP stages execute as under ``"windowed"`` — fusing only
    applies to time-multiplexed pairs). Seeded runs are bit-identical
    across all three. ``policy`` is the full
    :class:`~repro.engine.policy.ExecutionPolicy` form — its engine
    plays the role of ``engine`` (with ``"auto"`` meaning
    ``"windowed"``) and its delivery/streaming knobs reach every
    stage; setting both ``policy`` and a non-default ``engine``
    refuses.
    """

    clusterings_per_j: int = 2
    c_ell: float = 4.0
    mis_config: MISConfig = dataclasses.field(
        default_factory=lambda: MISConfig(oracle_degree=True)
    )
    max_phases: int | None = None
    final_sweep_iterations: int = 4
    engine: str = "windowed"
    policy: ExecutionPolicy | None = None

    def __post_init__(self) -> None:
        validate_engine(self.engine, ("windowed", "reference", "fused"))
        if self.policy is not None and self.engine != "windowed":
            raise ValueError(
                "PacketCompeteConfig got both policy= and engine=; "
                "set the engine on the policy"
            )

    @property
    def icp_policy(self) -> ExecutionPolicy:
        """The effective policy of the ICP phases (``fused`` allowed)."""
        base = self.policy or ExecutionPolicy(engine=self.engine)
        engine = base.engine_for(("windowed", "reference", "fused"), "windowed")
        return dataclasses.replace(base, engine=engine)

    @property
    def stage_policy(self) -> ExecutionPolicy:
        """The effective policy of the non-ICP stages (``"fused"``
        applies to ICP only, so it degrades to ``"windowed"`` here)."""
        icp = self.icp_policy
        if icp.engine == "fused":
            return dataclasses.replace(icp, engine="windowed")
        return icp

    @property
    def stage_engine(self) -> str:
        """Engine for the non-ICP stages (``"fused"`` applies to ICP only)."""
        return self.stage_policy.engine


@dataclasses.dataclass
class PacketCompeteResult:
    """Outcome of a packet-level Compete run.

    ``steps`` counts every simulated radio step across all stages;
    ``stage_steps`` itemizes them (mis / partition / icp / sweep).
    """

    winner: int
    delivered: bool
    steps: int
    phases: int
    mis_size: int
    stage_steps: dict[str, int]


def compete_packet(
    network: RadioNetwork,
    sources: dict[int, int],
    rng: np.random.Generator,
    config: PacketCompeteConfig | None = None,
    alpha: int | None = None,
    context: GraphContext | None = None,
) -> PacketCompeteResult:
    """Run the fully simulated Compete on ``network``.

    Parameters
    ----------
    network:
        A connected radio network (node labels are indices here; build
        the network from a generator graph).
    sources:
        Node index -> non-negative message key; highest key wins.
    rng:
        Shared randomness (see module docstring).
    config:
        Pipeline knobs.
    alpha:
        Independence-number estimate for the phase length; defaults to
        the MIS size found in stage 1.
    context:
        Optional pre-built :class:`~repro.graphs.context.GraphContext`;
        repeated trials share the cached connectivity and diameter.
        Defaults to the memoized per-graph context.
    """
    config = config or PacketCompeteConfig()
    config.stage_policy.bind(network)
    context = (
        context if context is not None else graph_context(network.graph)
    )
    if not context.is_connected():
        raise GraphContractError("Compete requires a connected network")
    if not sources:
        raise ValueError("Compete needs at least one source message")
    if any(key < 0 for key in sources.values()):
        raise ValueError("message keys must be non-negative")

    n = network.n
    graph = network.graph
    steps_at = {"start": network.steps_elapsed}

    # --- stage 1: Radio MIS ----------------------------------------------
    mis_result = compute_mis(
        network, rng, config.mis_config, policy=config.stage_policy
    )
    mis = sorted(network.index_of(v) for v in mis_result.mis)
    steps_at["mis"] = network.steps_elapsed
    alpha_used = alpha if alpha is not None else max(1, len(mis))
    d = max(2, context.diameter)

    # --- stage 2: fine clusterings via the radio wave protocol ------------
    js = j_range(d)
    clusterings = {}
    for j in js:
        beta = beta_of_j(j)
        clusterings[j] = []
        for _ in range(config.clusterings_per_j):
            clustering = partition_radio(network, beta, mis, rng)
            schedule = build_schedule(graph, clustering)
            clusterings[j].append((clustering, schedule))
    steps_at["partition"] = network.steps_elapsed

    # --- stage 3: phase loop ----------------------------------------------
    knowledge = np.full(n, -1, dtype=np.int64)
    for node, key in sources.items():
        knowledge[node] = max(knowledge[node], int(key))
    winner = int(knowledge.max())

    max_phases = (
        config.max_phases if config.max_phases is not None else 40 + 20 * d
    )
    phases = 0
    while not bool((knowledge == winner).all()):
        if phases >= max_phases:
            raise BudgetExceededError(
                f"packet Compete did not deliver within {max_phases} phases"
            )
        j = int(js[rng.integers(len(js))])
        clustering, schedule = clusterings[j][
            int(rng.integers(len(clusterings[j])))
        ]
        ell = propagation_length(
            beta_of_j(j), alpha_used, d, config.c_ell
        )
        icp = intra_cluster_propagation(
            network, clustering, schedule, knowledge, ell, rng,
            policy=config.icp_policy,
        )
        knowledge = icp.knowledge
        phases += 1
    steps_at["icp"] = network.steps_elapsed

    # --- stage 4: verification sweep ---------------------------------------
    # A final multi-source Decay sweep models the "all nodes confirm"
    # epilogue; it also mops up any straggler in the rare event the loop
    # exited on a stale check.
    informed = knowledge == winner
    run_decay(
        network,
        informed,
        rng,
        messages=[int(k) for k in knowledge],
        iterations=config.final_sweep_iterations,
        policy=config.stage_policy,
    )
    steps_at["sweep"] = network.steps_elapsed

    stage_steps = {
        "mis": steps_at["mis"] - steps_at["start"],
        "partition": steps_at["partition"] - steps_at["mis"],
        "icp": steps_at["icp"] - steps_at["partition"],
        "sweep": steps_at["sweep"] - steps_at["icp"],
    }
    return PacketCompeteResult(
        winner=winner,
        delivered=bool((knowledge == winner).all()),
        steps=network.steps_elapsed - steps_at["start"],
        phases=phases,
        mis_size=len(mis),
        stage_steps=stage_steps,
    )


def broadcast_packet(
    network: RadioNetwork,
    source: int,
    rng: np.random.Generator,
    config: PacketCompeteConfig | None = None,
) -> PacketCompeteResult:
    """Packet-level broadcast: ``compete_packet`` with one source."""
    if not 0 <= source < network.n:
        raise ValueError(f"source {source} out of range")
    return compete_packet(network, {source: 1}, rng, config=config)
