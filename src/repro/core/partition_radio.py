"""Packet-level radio implementation of ``Partition(beta, centers)``.

This is the Haeupler–Wajc [18] realization of Miller–Peng–Xu clustering
that the paper's pipeline actually runs in the radio model, simulated at
full collision fidelity:

* each center ``c`` draws ``delta_c ~ Exponential(beta)`` and is
  *activated* at integer time ``max_delta - floor(delta_c)`` (larger
  shift = earlier start), provided no other cluster captured it first;
* time advances in *epochs*; in each epoch, every already-assigned node
  announces its cluster id with a Decay block (Claim 10), and every
  unassigned node that hears an announcement joins that cluster, at hop
  distance one more than the sender's;
* a node therefore joins the first shifted BFS front to reach it —
  ``argmin_c (dist(u, c) - floor(delta_c))`` up to Decay failures, which
  is the MPX rule with integer shifts.

Each epoch costs one Decay block (``O(log^2 n)`` steps), so a clustering
with maximum cluster radius ``R`` costs ``O((max_shift + R) log^2 n)``
steps — the ``O(polylog(n)/beta)`` construction cost the paper quotes.
The E10 experiment compares the result against the centralized
:func:`repro.core.mpx.partition` on the same shifts.
"""

from __future__ import annotations

import math

import numpy as np

from ..radio.errors import BudgetExceededError
from ..radio.network import RadioNetwork
from .cluster import Clustering
from .decay import claim10_iterations, run_decay
from .mpx import draw_shifts


def partition_radio(
    network: RadioNetwork,
    beta: float,
    centers: list[int],
    rng: np.random.Generator,
    shifts: dict[int, float] | None = None,
    decay_amplification: float = 4.0,
    max_epochs: int | None = None,
) -> Clustering:
    """Run the radio Partition protocol and return its clustering.

    Parameters
    ----------
    network:
        The radio network (nodes indexed ``0..n-1``).
    beta:
        Exponential shift rate.
    centers:
        Candidate center indices (the MIS in the paper's pipeline).
    rng:
        Randomness source.
    shifts:
        Pre-drawn real-valued shifts (floored to integers internally);
        drawn fresh if omitted. Passing the same shifts to
        :func:`repro.core.mpx.partition` yields the clustering this
        protocol converges to when every Decay block succeeds.
    decay_amplification:
        Claim 10 constant for the per-epoch announcement blocks.
    max_epochs:
        Safety budget; defaults to ``max_shift + n + 8`` epochs. A clean
        run needs ``max_shift + max_cluster_radius`` epochs; persistent
        Decay failures beyond the budget raise
        :class:`~repro.radio.errors.BudgetExceededError`.

    Notes
    -----
    Epoch loops re-announce from *all* assigned nodes, not only the
    current frontier, so a node that misses its epoch (Decay failure)
    joins in a later epoch at a possibly one-larger recorded distance
    instead of deadlocking — matching [18]'s robustness discussion.
    """
    n = network.n
    centers = sorted(set(int(c) for c in centers))
    if not centers:
        raise ValueError("need at least one center")
    if shifts is None:
        shifts = draw_shifts(centers, beta, rng)

    int_shift = {c: int(math.floor(shifts[c])) for c in centers}
    max_shift = max(int_shift.values())
    activation = {c: max_shift - int_shift[c] for c in centers}
    if max_epochs is None:
        max_epochs = max_shift + n + 8

    assignment = np.full(n, -1, dtype=np.int64)
    wave = np.full(n, -1, dtype=np.int64)  # hop distance to own center
    decay_iters = claim10_iterations(n, decay_amplification)

    for epoch in range(max_epochs + 1):
        # Activate centers whose start time arrived and that are still free.
        for c in centers:
            if activation[c] == epoch and assignment[c] == -1:
                assignment[c] = c
                wave[c] = 0

        if (assignment != -1).all():
            break

        announcers = assignment != -1
        if not announcers.any():
            continue
        # Message: (cluster id, sender's wave). Only the sender's *own*
        # state is used — ad-hoc discipline.
        messages = [
            (int(assignment[v]), int(wave[v])) if announcers[v] else None
            for v in range(n)
        ]
        network.trace.enter_phase("partition/announce")
        echo = run_decay(
            network, announcers, rng, messages=messages, iterations=decay_iters
        )
        joiners = (assignment == -1) & echo.heard
        for v in np.nonzero(joiners)[0]:
            cluster_id, sender_wave = echo.messages[v]
            assignment[v] = cluster_id
            wave[v] = sender_wave + 1
    else:
        unassigned = int((assignment == -1).sum())
        raise BudgetExceededError(
            f"radio partition left {unassigned} nodes unassigned after "
            f"{max_epochs} epochs"
        )

    network.trace.enter_phase("default")
    return Clustering(
        beta=beta,
        centers=centers,
        assignment=assignment,
        distance_to_center=wave,
        delta={c: float(int_shift[c]) for c in centers},
    )
