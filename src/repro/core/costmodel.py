"""Round-cost formulas for the round-accounted Compete pipeline.

The full ``Compete`` of Algorithm 2 layers the paper's contribution (MIS
centers + the Theorem 2 analysis) on machinery taken unchanged from prior
work: the Partition construction of Haeupler–Wajc [18], the fast
intra-cluster schedules of Ghaffari–Haeupler–Khabbazian [17], and the
background boundary-crossing process of Czumaj–Davies [7]. DESIGN.md
substitution 1 explains why those components are *charged* their
published round costs in the event-level simulation rather than simulated
packet-by-packet; this module is the single place all those charges are
defined, so every constant is visible and benchmarks can itemize them.

Categories follow :class:`repro.radio.trace.CostLedger`: ``setup``
charges form the additive ``polylog n`` term of Theorems 6-8,
``propagation`` charges form the ``D log_D alpha`` leading term.
"""

from __future__ import annotations

import dataclasses
import math


def _log2(x: float) -> float:
    """``log2`` clamped below at 1 (asymptotic formulas at small scales)."""
    return max(1.0, math.log2(max(2.0, x)))


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Round-cost constants for the accounted pipeline.

    Each ``c_*`` is the constant in front of the corresponding published
    bound. Defaults are 1 — the benchmarks compare *shapes* (growth in
    ``D``, ``n``, ``alpha``), which constants do not affect, and keeping
    them at 1 makes ledgers easy to read.
    """

    c_mis: float = 1.0
    c_partition: float = 1.0
    c_schedule: float = 1.0
    c_sequence: float = 1.0
    c_icp: float = 1.0

    def mis_rounds(self, n: int) -> int:
        """Theorem 14: Radio MIS costs ``O(log^3 n)`` rounds (setup)."""
        return math.ceil(self.c_mis * _log2(n) ** 3)

    def partition_rounds(self, n: int, beta: float) -> int:
        """Section 2.2: one ``Partition(beta, MIS)`` costs
        ``O(polylog(n) / beta)`` rounds (setup).

        The concrete polylog from the [18] construction (one Decay block
        per BFS layer over ``O(log(n)/beta)`` layers) is
        ``O(log^2 n / beta)``.
        """
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        return math.ceil(self.c_partition * _log2(n) ** 2 / beta)

    def schedule_rounds(self, n: int) -> int:
        """[17]/[18]: computing fast schedules inside all clusters of one
        clustering costs ``O(log^2 n)`` rounds (setup; clusters are
        processed in parallel)."""
        return math.ceil(self.c_schedule * _log2(n) ** 2)

    def sequence_rounds(self, n: int, diameter: int, length: int) -> int:
        """Algorithm 2 step 7: transmitting the length-``L`` fine-clustering
        sequence within coarse clusters (radius ``O(sqrt(D) log n)`` for
        ``beta = D^-0.5``) via coarse schedules: ``O(sqrt(D) log n + L)``
        rounds (setup)."""
        if length < 0:
            raise ValueError(f"sequence length must be >= 0, got {length}")
        return math.ceil(
            self.c_sequence * (math.sqrt(max(1, diameter)) * _log2(n) + length)
        )

    def icp_rounds(self, ell: int) -> int:
        """One Intra-Cluster Propagation phase over distance ``ell``.

        With the fast schedules of [17], the three broadcasts of
        Algorithm 9 cost ``O(ell)`` rounds for cluster radii up to
        ``ell`` — this is the per-phase charge whose sum forms the
        ``D log_D alpha`` leading term (propagation)."""
        return max(1, math.ceil(self.c_icp * ell))


def propagation_length(
    beta: float, alpha: int, diameter: int, c_ell: float = 1.0
) -> int:
    """The paper's ICP length ``ell = O(log_D(alpha) / beta)``.

    Algorithm 2 step 8 runs ``Intra-Cluster Propagation(O(log_D alpha /
    beta))``; the [7] baseline (Algorithm 1 step 7) uses
    ``O(log(n) / (beta log D))`` — obtained from this function by passing
    ``alpha = n`` (since ``log_D n = log n / log D``). The floor at
    ``1/beta`` keeps ``ell`` at least one expected cluster radius even
    when the clamped ``log_D`` term is 1.
    """
    from ..graphs.properties import log_base_d

    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return max(1, math.ceil(c_ell * log_base_d(alpha, diameter) / beta))


def total_bound(n: int, diameter: int, alpha: int) -> float:
    """The headline bound ``D log_D alpha + log^4 n`` (Theorem 7 shape).

    The paper leaves the polylog unoptimized ("we have not tried to
    optimize the log^O(1) n term"); ``log^4`` covers the MIS, partition,
    and schedule setup charges above. Benchmarks use this as the
    normalizer when checking measured totals stay within a constant
    factor of the claim.
    """
    from ..graphs.properties import log_base_d

    return diameter * log_base_d(alpha, diameter) + _log2(n) ** 4
