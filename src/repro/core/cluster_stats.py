"""The Section 3 quantities: ``m_i``, ``s_j``, ``T_beta``, ``B_beta``,
``S_beta``, the constant ``b``, and Lemma 5's bad-``j`` test.

For a fixed node ``v`` and center set (the computed MIS), ``m_i`` is the
number of centers at hop distance exactly ``i`` from ``v``; then

* ``T_beta = sum_i i * m_i * exp(-i beta)``,
* ``B_beta = sum_i m_i * exp(-i beta)``,
* ``S_beta = T_beta / B_beta``,

and Lemma 3 bounds the expected distance from ``v`` to its cluster
center under ``Partition(beta, MIS)`` by ``5 * S_beta``. Lemma 4 says
``S_beta = O(b 2^j)`` whenever the prefix counts
``s_j = sum_{i <= 2^(j+1)} m_i`` do not explode just outside radius
``2^j log b`` (the lemma's condition), and Lemma 5 says at most
``0.02 log D`` values of ``j`` can violate that condition because the
total number of MIS nodes is at most ``alpha``.

These are exact (non-simulated) computations used by the E4/E5
experiments and by property-based tests of the lemmas.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

import networkx as nx
import numpy as np

from ..graphs.context import graph_context


def center_distance_histogram(
    graph: nx.Graph, v: int, centers: Iterable[int]
) -> np.ndarray:
    """``m_i``: number of centers at hop distance ``i`` from ``v``.

    Returns an array of length ``max_distance + 1``; unreachable centers
    are excluded (they cannot capture ``v`` either).

    The BFS runs over the cached CSR adjacency through
    :mod:`scipy.sparse.csgraph` (the E4/E5 experiments call this for
    many ``v`` on one graph), replacing the per-call networkx
    traversal.
    """
    ctx = graph_context(graph)
    dist = ctx.bfs_distances(ctx.index_of(v))
    center_rows = np.array(
        [ctx.index_of(int(c)) for c in set(int(c) for c in centers)],
        dtype=np.int64,
    )
    center_dist = dist[center_rows]
    reach = center_dist[np.isfinite(center_dist)].astype(np.int64)
    if reach.size == 0:
        raise ValueError(f"no center reachable from node {v}")
    return np.bincount(reach, minlength=int(reach.max()) + 1).astype(
        np.int64
    )


def t_beta(m: np.ndarray, beta: float) -> float:
    """``T_beta = sum_i i m_i e^{-i beta}``."""
    i = np.arange(len(m), dtype=np.float64)
    return float(np.sum(i * m * np.exp(-i * beta)))


def b_beta(m: np.ndarray, beta: float) -> float:
    """``B_beta = sum_i m_i e^{-i beta}``."""
    i = np.arange(len(m), dtype=np.float64)
    return float(np.sum(m * np.exp(-i * beta)))


def s_beta(m: np.ndarray, beta: float) -> float:
    """``S_beta = T_beta / B_beta`` — Lemma 3's distance bound driver."""
    denominator = b_beta(m, beta)
    if denominator <= 0:
        raise ValueError("B_beta is zero: no centers in the histogram")
    return t_beta(m, beta) / denominator


def b_constant(alpha: int, diameter: int) -> int:
    """The paper's ``b = 2^(ceil(log2 log_D alpha) + 2)``.

    ``b`` is an integer power of two with
    ``2 <= 4 log_D alpha <= b <= 8 log_D alpha`` (for ``log_D alpha >=
    1/2``). We clamp ``log_D alpha`` below at 1 — the regime
    ``alpha < D`` is where the trivial ``Omega(D)`` floor binds and the
    paper's asymptotic range assumptions do not hold; the clamp keeps
    ``b >= 4`` and every Lemma 4/5 computation well-defined at
    simulation scales.
    """
    from ..graphs.properties import log_base_d

    log_d_alpha = max(1.0, log_base_d(alpha, diameter))
    return 2 ** (math.ceil(math.log2(log_d_alpha)) + 2)


def prefix_counts(m: np.ndarray, j: int) -> int:
    """``s_j = sum_{i=0}^{2^(j+1)} m_i`` (saturating beyond the histogram)."""
    if j < 0:
        raise ValueError(f"j must be >= 0, got {j}")
    cutoff = min(len(m) - 1, 2 ** (j + 1))
    return int(m[: cutoff + 1].sum())


@dataclasses.dataclass(frozen=True)
class BadJReport:
    """Outcome of Lemma 5's process over a ``j`` window."""

    window: list[int]
    bad: list[int]
    limit: float  # Lemma 5's bound: 0.02 log2 D

    @property
    def good(self) -> list[int]:
        """The ``j`` values that satisfy Lemma 4's condition."""
        return [j for j in self.window if j not in set(self.bad)]

    @property
    def good_fraction(self) -> float:
        """Fraction of the window that is good (Theorem 2: >= 0.77...)."""
        if not self.window:
            return 1.0
        return len(self.good) / len(self.window)


def is_bad_j(m: np.ndarray, j: int, b: int, max_r: int | None = None) -> bool:
    """Whether ``j`` violates Lemma 4's condition.

    ``j`` is bad iff there is some ``r >= 8`` with
    ``s_{j + log2 b + r} > 2^(b 2^(r-1)) * s_{j + log2 b}``.
    The comparison is done in log space — the right-hand side overflows
    floats already at ``r = 12``.
    """
    log_b = int(math.log2(b))
    if 2**log_b != b:
        raise ValueError(f"b must be a power of two, got {b}")
    base = prefix_counts(m, j + log_b)
    if base <= 0:
        # No centers within the base radius: the condition degenerates;
        # since s_0 >= 1 for nodes dominated by the center set, this only
        # happens for malformed inputs.
        return True
    if max_r is None:
        # Beyond this, s saturates at the total and cannot grow further.
        max_r = max(8, math.ceil(math.log2(max(2, len(m)))) + 2)
    log_base = math.log2(base)
    for r in range(8, max_r + 1):
        count = prefix_counts(m, j + log_b + r)
        if count <= 0:
            continue
        if math.log2(count) - log_base > b * 2.0 ** (r - 1):
            return True
    return False


def bad_j_report(
    m: np.ndarray, window: Iterable[int], alpha: int, diameter: int
) -> BadJReport:
    """Classify every ``j`` in the window as good or bad (Lemma 5).

    Lemma 5's claim: at most ``0.02 log2 D`` of the ``j`` in
    ``[0.01 log D, 0.1 log D]`` are bad; the E5 benchmark checks the
    measured count against the ``limit`` recorded here.
    """
    window = list(window)
    b = b_constant(alpha, diameter)
    bad = [j for j in window if is_bad_j(m, j, b)]
    limit = 0.02 * math.log2(max(2, diameter))
    return BadJReport(window=window, bad=bad, limit=limit)


def lemma4_bound(j: int, b: int) -> float:
    """Lemma 4's conclusion, ``S_beta = O(b 2^j)``, with its constant.

    Reading the proof's final inequality
    ``S_beta <= b 2^(j+7) + 3 * 2^(j+1)`` gives the explicit constant
    ``(2^7 b + 6) 2^j`` — property tests check ``S_beta`` against this
    exact expression, not just the O().
    """
    return (2.0**7 * b + 6.0) * 2.0**j


def expected_distance_bound(j: int, alpha: int, diameter: int) -> float:
    """Theorem 2's bound ``O(log_D alpha / beta)`` with explicit constants.

    Combining Lemma 3 (``E[dist] <= 5 S_beta``) with Lemma 4's explicit
    form; used as the normalizer in the E4 experiment.
    """
    b = b_constant(alpha, diameter)
    return 5.0 * lemma4_bound(j, b)
