"""Broadcasting via Compete (paper Theorem 7).

Broadcasting is ``Compete({s})``: the single source's message is the only
candidate, so when Compete finishes, every node knows it — in
``O(D log_D alpha + polylog n)`` charged rounds with high probability.
On growth-bounded graphs (``alpha = poly(D)``) this is
``O(D + polylog n)`` (Corollary 9), with the optimal ``O(D)`` leading
term.

Two fidelity levels share this entry point (DESIGN.md Section 1.1):
:func:`broadcast` charges rounds at cluster-event granularity (the
scalable way to measure the theorem's shape), while
:func:`broadcast_packet_level` simulates every radio step of the
pipeline on the windowed engine — MIS, radio Partition, slot-schedule
ICP with the Decay background — and is the packet ground truth the E6
comparison uses.
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np

from ..radio.network import RadioNetwork
from ..radio.trace import CostLedger, StepTrace
from .compete import CompeteConfig, CompeteResult, compete
from .compete_packet import (
    PacketCompeteConfig,
    PacketCompeteResult,
    broadcast_packet,
)


@dataclasses.dataclass
class BroadcastResult:
    """Outcome of a broadcast: delivery flag plus the round ledger."""

    source: int
    delivered: bool
    total_rounds: int
    setup_rounds: int
    propagation_rounds: int
    ledger: CostLedger
    compete: CompeteResult


def broadcast(
    graph: nx.Graph,
    source: int,
    rng: np.random.Generator,
    config: CompeteConfig | None = None,
    alpha: int | None = None,
) -> BroadcastResult:
    """Broadcast from ``source`` to every node (round-accounted).

    Parameters
    ----------
    graph:
        Connected graph with nodes ``0..n-1``.
    source:
        The designated source node.
    rng:
        Randomness source.
    config:
        Compete knobs; ``centers_mode="all"`` turns this into the [7]
        baseline broadcast.
    alpha:
        Optional independence-number estimate (paper Section 1.1: any
        polynomial approximation suffices).

    Returns
    -------
    BroadcastResult
        ``delivered`` is true when every node ended with the source
        message; rounds are itemized in ``ledger``.
    """
    if source not in graph:
        raise ValueError(f"source {source} is not a node of the graph")
    result = compete(graph, {source: 1}, rng, config=config, alpha=alpha)
    return BroadcastResult(
        source=source,
        delivered=result.delivered,
        total_rounds=result.total_rounds,
        setup_rounds=result.ledger.setup_total,
        propagation_rounds=result.ledger.propagation_total,
        ledger=result.ledger,
        compete=result,
    )


def broadcast_packet_level(
    graph: nx.Graph,
    source: int,
    rng: np.random.Generator,
    config: PacketCompeteConfig | None = None,
    trace: StepTrace | None = None,
) -> PacketCompeteResult:
    """Packet-level broadcast: every radio step simulated, engine-backed.

    Builds a :class:`~repro.radio.network.RadioNetwork` over ``graph``
    and runs the full packet pipeline
    (:func:`~repro.core.compete_packet.broadcast_packet`). The default
    :class:`~repro.core.compete_packet.PacketCompeteConfig` uses the
    windowed engine; pass ``PacketCompeteConfig(engine="reference")``
    for the step-wise path (bit-identical seeded results, much slower).
    """
    network = RadioNetwork(graph, trace=trace)
    return broadcast_packet(network, source, rng, config=config)
