"""Intra-cluster transmission schedules (packet level).

``Intra-Cluster Propagation`` (paper Algorithm 9) relies on "fast
schedules" from Ghaffari–Haeupler–Khabbazian [17] as implemented by
Haeupler–Wajc [18] to move a message across a cluster in time linear in
the distance rather than ``distance x log n``. The paper uses those
schedules as a black box; per DESIGN.md substitution 1 we realize them at
packet level with the classic *BFS-layer pipelining + distance-2
coloring* construction:

* build a BFS layering of each cluster from its center;
* properly color the cluster's nodes so that two nodes sharing a common
  in-cluster neighbor get different colors (distance-2 coloring);
* a *slot* is a (layer, color) pair; when a slot fires, all its nodes
  transmit. Within a cluster no listener can hear two same-slot
  transmitters, so downward (and upward) passes are collision-free
  inside the cluster; collisions across cluster boundaries remain and
  are handled by the Decay background process (Algorithm 10), exactly
  the role it plays in the paper.

On growth-bounded graphs the number of colors is ``O(1)``-ish (bounded
by one plus the maximum distance-2 degree), so a pass over distance
``ell`` costs ``O(ell)`` slots — the behavior the paper's accounting
assumes.

Performance: both schedule ingredients are computed over the
*intra-cluster* CSR adjacency (between-cluster edges masked out) in
whole-graph passes — the BFS layering as one batched
:mod:`scipy.sparse.csgraph` multi-source sweep, and the distance-2
coloring as one sparse square (``A + A @ A``) followed by a single
greedy pass over all clusters at once (clusters are disjoint components
of the square, so one global greedy equals the per-cluster greedies).
The original per-cluster ``networkx.power`` + ``greedy_color``
construction is retained as ``coloring="networkx"`` /
:func:`build_schedule_reference`. Both are greedy colorings of the same
square graph; the CSR pass orders nodes deterministically by
(two-hop-degree desc, index asc), whereas the networkx path inherits
Python set iteration order from subgraph views, so individual colors
may differ between the two — the equivalence suite checks the
properties that matter (identical layers; a *valid* distance-2
coloring, which is what makes slot passes collision-free in-cluster;
color counts within the same greedy bound).
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from ..graphs.context import graph_context
from .cluster import Clustering


@dataclasses.dataclass
class ClusterSchedule:
    """Packet-level schedule data for every cluster of a clustering.

    Attributes
    ----------
    layer:
        Length-``n`` array: BFS layer of each node inside its own cluster
        (0 at the center).
    color:
        Length-``n`` array: distance-2 color of each node within its
        cluster.
    n_layers, n_colors:
        Global maxima, defining the synchronized slot grid — all clusters
        run their slots in lockstep, slot ``(L, c)`` firing every node
        with ``layer == L`` and ``color == c``.
    """

    layer: np.ndarray
    color: np.ndarray
    n_layers: int
    n_colors: int
    _pass_masks_cache: dict = dataclasses.field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def slot_members(self, layer: int, color: int) -> np.ndarray:
        """Boolean mask of the nodes firing in slot ``(layer, color)``."""
        return (self.layer == layer) & (self.color == color)

    def pass_masks(self, layers: list[int]) -> np.ndarray:
        """Member masks of every slot of a pass over ``layers``, stacked.

        Row ``k`` is :meth:`slot_members` of the ``k``-th slot when the
        given layers fire in order, each expanded into its color slots
        — exactly the firing order of an ICP pass. Computed as one
        vectorized comparison against a combined ``layer * n_colors +
        color`` key and cached per layer tuple, so the three passes of
        an ICP phase (down/up/down share two layer orders) build their
        slot masks once instead of twice per slot per pass.
        """
        key = tuple(int(layer) for layer in layers)
        cached = self._pass_masks_cache.get(key)
        if cached is not None:
            return cached
        node_key = self.layer * self.n_colors + self.color
        slot_keys = np.array(
            [
                layer * self.n_colors + color
                for layer in key
                for color in range(self.n_colors)
            ],
            dtype=np.int64,
        )
        masks = slot_keys[:, None] == node_key[None, :]
        self._pass_masks_cache[key] = masks
        return masks


def _distance2_coloring(subgraph: nx.Graph) -> dict:
    """Greedy distance-2 coloring of a (small) cluster subgraph.

    Colors the square of the subgraph greedily in degree order; two nodes
    at distance <= 2 inside the cluster never share a color, which makes
    same-slot transmissions collision-free for in-cluster listeners.
    Retained as the reference the CSR engine is checked against.
    """
    square = nx.power(subgraph, 2) if subgraph.number_of_nodes() > 1 else subgraph
    return nx.coloring.greedy_color(square, strategy="largest_first")


def _intra_cluster_csr(
    graph: nx.Graph, clustering: Clustering
) -> sp.csr_array:
    """CSR adjacency restricted to edges within one cluster.

    Between-cluster edges are masked out, so every cluster becomes its
    own connected component — the shared substrate of the batched
    layering BFS and the vectorized distance-2 coloring.
    """
    n = clustering.n
    ctx = graph_context(graph)
    src, dst = ctx.edges()
    assignment = clustering.assignment
    intra = assignment[src] == assignment[dst]
    return sp.csr_array(
        (np.ones(int(intra.sum()), dtype=np.float64),
         (src[intra], dst[intra])),
        shape=(n, n),
    )


def _cluster_layers(
    masked: sp.csr_array, clustering: Clustering
) -> np.ndarray:
    """In-cluster BFS depth of every node from its own center, batched.

    One :func:`scipy.sparse.csgraph.dijkstra` multi-source BFS over the
    intra-cluster adjacency computes every cluster's layering at once:
    each cluster is its own connected component containing exactly one
    used center, so the min-distance to the center set is the distance
    to the node's own center. This replaces one networkx BFS per
    cluster.
    """
    centers = np.asarray(clustering.used_centers(), dtype=np.int64)
    depths = csgraph.dijkstra(
        masked, directed=False, unweighted=True, indices=centers,
        min_only=True,
    )
    if not np.isfinite(depths).all():
        raise ValueError(
            "clustering has members unreachable from their center "
            "through in-cluster edges; MPX clusters must be connected"
        )
    return depths.astype(np.int64)


def _distance2_color_csr(masked: sp.csr_array) -> np.ndarray:
    """Vectorized distance-2 coloring over the intra-cluster adjacency.

    The two-hop neighborhoods of *all* clusters come from one sparse
    square — ``A + A @ A`` with the diagonal dropped — and a single
    greedy pass colors every node in (two-hop-degree desc, index asc)
    order with the smallest free color. Clusters are disjoint components
    of the square, so the global pass is exactly the per-cluster
    largest-first greedy, in a deterministic order (the networkx
    reference's order floats with Python set iteration).
    """
    n = masked.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    square = (masked + masked @ masked).tocsr()
    square.setdiag(0)
    square.eliminate_zeros()
    indptr = square.indptr
    indices = square.indices
    deg2 = np.diff(indptr)
    order = np.lexsort((np.arange(n), -deg2))

    colors = np.full(n, -1, dtype=np.int64)
    for v in order:
        used = colors[indices[indptr[v] : indptr[v + 1]]]
        used = used[used >= 0]
        if used.size == 0:
            colors[v] = 0
            continue
        present = np.zeros(int(used.max()) + 2, dtype=bool)
        present[used] = True
        colors[v] = int(np.nonzero(~present)[0][0])
    return colors


def build_schedule(
    graph: nx.Graph,
    clustering: Clustering,
    coloring: str = "csr",
) -> ClusterSchedule:
    """Compute the synchronized slot schedule for all clusters.

    Schedule computation is centralized here (an oracle step); the
    distributed construction of [17]/[18] is charged by
    :meth:`repro.core.costmodel.CostModel.schedule_rounds` in the
    round-accounted pipeline. The *use* of the schedule — which
    transmissions collide where — is simulated exactly.

    Both ingredients run over the shared intra-cluster CSR: the
    layering as one batched :mod:`scipy.sparse.csgraph` BFS
    (:func:`_cluster_layers`), the distance-2 coloring as one sparse
    square plus a single global greedy pass
    (:func:`_distance2_color_csr`). ``coloring="networkx"`` selects the
    original per-cluster ``nx.power`` + ``greedy_color`` construction,
    kept as the reference.

    Clustering indices are interpreted as positions in
    ``list(graph.nodes)`` (the convention of the packet-level radio
    pipeline). For integer-labeled graphs whose iteration order is
    *not* ``0..n-1`` that interpretation conflicts with the
    label-indexed clusterings of :func:`repro.core.mpx.partition`, so
    such graphs are rejected with a clear error — relabel with
    ``networkx.convert_node_labels_to_integers`` first.
    """
    if coloring not in ("csr", "networkx"):
        raise ValueError(f"unknown coloring engine: {coloring!r}")
    nodes = list(graph.nodes)
    n = len(nodes)
    if set(nodes) == set(range(n)) and nodes != list(range(n)):
        raise ValueError(
            "build_schedule requires integer-labeled graphs to iterate "
            "in order 0..n-1 (clustering indices would be ambiguous); "
            "relabel with networkx.convert_node_labels_to_integers first"
        )
    masked = _intra_cluster_csr(graph, clustering)
    layer = _cluster_layers(masked, clustering)
    n_layers = int(layer.max()) + 1 if clustering.n else 1

    if coloring == "csr":
        color = _distance2_color_csr(masked)
        n_colors = int(color.max()) + 1 if clustering.n else 1
    else:
        color = np.zeros(clustering.n, dtype=np.int64)
        labels = list(graph.nodes)
        n_colors = 1
        for center, member_indices in clustering.members().items():
            member_labels = [labels[v] for v in member_indices]
            sub = graph.subgraph(member_labels)
            per_cluster = _distance2_coloring(sub)
            for v in member_indices:
                color[v] = per_cluster[labels[v]]
            n_colors = max(n_colors, max(per_cluster.values()) + 1)

    return ClusterSchedule(
        layer=layer, color=color, n_layers=n_layers, n_colors=n_colors
    )


def build_schedule_reference(
    graph: nx.Graph, clustering: Clustering
) -> ClusterSchedule:
    """The per-cluster networkx schedule construction (reference).

    The equivalence suite checks :func:`build_schedule`'s CSR coloring
    against this on every graph family the pipeline uses.
    """
    return build_schedule(graph, clustering, coloring="networkx")
