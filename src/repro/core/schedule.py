"""Intra-cluster transmission schedules (packet level).

``Intra-Cluster Propagation`` (paper Algorithm 9) relies on "fast
schedules" from Ghaffari–Haeupler–Khabbazian [17] as implemented by
Haeupler–Wajc [18] to move a message across a cluster in time linear in
the distance rather than ``distance x log n``. The paper uses those
schedules as a black box; per DESIGN.md substitution 1 we realize them at
packet level with the classic *BFS-layer pipelining + distance-2
coloring* construction:

* build a BFS layering of each cluster from its center;
* properly color the cluster's nodes so that two nodes sharing a common
  in-cluster neighbor get different colors (distance-2 coloring);
* a *slot* is a (layer, color) pair; when a slot fires, all its nodes
  transmit. Within a cluster no listener can hear two same-slot
  transmitters, so downward (and upward) passes are collision-free
  inside the cluster; collisions across cluster boundaries remain and
  are handled by the Decay background process (Algorithm 10), exactly
  the role it plays in the paper.

On growth-bounded graphs the number of colors is ``O(1)``-ish (bounded
by one plus the maximum distance-2 degree), so a pass over distance
``ell`` costs ``O(ell)`` slots — the behavior the paper's accounting
assumes.
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from ..graphs.context import graph_context
from .cluster import Clustering


@dataclasses.dataclass
class ClusterSchedule:
    """Packet-level schedule data for every cluster of a clustering.

    Attributes
    ----------
    layer:
        Length-``n`` array: BFS layer of each node inside its own cluster
        (0 at the center).
    color:
        Length-``n`` array: distance-2 color of each node within its
        cluster.
    n_layers, n_colors:
        Global maxima, defining the synchronized slot grid — all clusters
        run their slots in lockstep, slot ``(L, c)`` firing every node
        with ``layer == L`` and ``color == c``.
    """

    layer: np.ndarray
    color: np.ndarray
    n_layers: int
    n_colors: int

    def slot_members(self, layer: int, color: int) -> np.ndarray:
        """Boolean mask of the nodes firing in slot ``(layer, color)``."""
        return (self.layer == layer) & (self.color == color)


def _distance2_coloring(subgraph: nx.Graph) -> dict:
    """Greedy distance-2 coloring of a (small) cluster subgraph.

    Colors the square of the subgraph greedily in degree order; two nodes
    at distance <= 2 inside the cluster never share a color, which makes
    same-slot transmissions collision-free for in-cluster listeners.
    """
    square = nx.power(subgraph, 2) if subgraph.number_of_nodes() > 1 else subgraph
    return nx.coloring.greedy_color(square, strategy="largest_first")


def _cluster_layers(graph: nx.Graph, clustering: Clustering) -> np.ndarray:
    """In-cluster BFS depth of every node from its own center, batched.

    One :func:`scipy.sparse.csgraph.dijkstra` multi-source BFS over the
    *intra-cluster* adjacency (edges whose endpoints share a cluster)
    computes every cluster's layering at once: masking removes all
    between-cluster edges, so each cluster is its own connected
    component containing exactly one used center, and the min-distance
    to the center set is the distance to the node's own center. This
    replaces one networkx BFS per cluster.
    """
    n = clustering.n
    ctx = graph_context(graph)
    src, dst = ctx.edges()
    assignment = clustering.assignment
    intra = assignment[src] == assignment[dst]
    masked = sp.csr_array(
        (np.ones(int(intra.sum()), dtype=np.float64),
         (src[intra], dst[intra])),
        shape=(n, n),
    )
    centers = np.asarray(clustering.used_centers(), dtype=np.int64)
    depths = csgraph.dijkstra(
        masked, directed=False, unweighted=True, indices=centers,
        min_only=True,
    )
    if not np.isfinite(depths).all():
        raise ValueError(
            "clustering has members unreachable from their center "
            "through in-cluster edges; MPX clusters must be connected"
        )
    return depths.astype(np.int64)


def build_schedule(graph: nx.Graph, clustering: Clustering) -> ClusterSchedule:
    """Compute the synchronized slot schedule for all clusters.

    Schedule computation is centralized here (an oracle step); the
    distributed construction of [17]/[18] is charged by
    :meth:`repro.core.costmodel.CostModel.schedule_rounds` in the
    round-accounted pipeline. The *use* of the schedule — which
    transmissions collide where — is simulated exactly.

    Layering is computed for all clusters in one batched
    :mod:`scipy.sparse.csgraph` BFS (see :func:`_cluster_layers`);
    the distance-2 coloring stays per-cluster.

    Clustering indices are interpreted as positions in
    ``list(graph.nodes)`` (the convention of the packet-level radio
    pipeline). For integer-labeled graphs whose iteration order is
    *not* ``0..n-1`` that interpretation conflicts with the
    label-indexed clusterings of :func:`repro.core.mpx.partition`, so
    such graphs are rejected with a clear error — relabel with
    ``networkx.convert_node_labels_to_integers`` first.
    """
    nodes = list(graph.nodes)
    n = len(nodes)
    if set(nodes) == set(range(n)) and nodes != list(range(n)):
        raise ValueError(
            "build_schedule requires integer-labeled graphs to iterate "
            "in order 0..n-1 (clustering indices would be ambiguous); "
            "relabel with networkx.convert_node_labels_to_integers first"
        )
    layer = _cluster_layers(graph, clustering)
    color = np.zeros(clustering.n, dtype=np.int64)
    labels = list(graph.nodes)

    n_layers = int(layer.max()) + 1 if clustering.n else 1
    n_colors = 1
    for center, member_indices in clustering.members().items():
        member_labels = [labels[v] for v in member_indices]
        sub = graph.subgraph(member_labels)
        coloring = _distance2_coloring(sub)
        for v in member_indices:
            color[v] = coloring[labels[v]]
        n_colors = max(n_colors, max(coloring.values()) + 1)

    return ClusterSchedule(
        layer=layer, color=color, n_layers=n_layers, n_colors=n_colors
    )
