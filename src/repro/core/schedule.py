"""Intra-cluster transmission schedules (packet level).

``Intra-Cluster Propagation`` (paper Algorithm 9) relies on "fast
schedules" from Ghaffari–Haeupler–Khabbazian [17] as implemented by
Haeupler–Wajc [18] to move a message across a cluster in time linear in
the distance rather than ``distance x log n``. The paper uses those
schedules as a black box; per DESIGN.md substitution 1 we realize them at
packet level with the classic *BFS-layer pipelining + distance-2
coloring* construction:

* build a BFS layering of each cluster from its center;
* properly color the cluster's nodes so that two nodes sharing a common
  in-cluster neighbor get different colors (distance-2 coloring);
* a *slot* is a (layer, color) pair; when a slot fires, all its nodes
  transmit. Within a cluster no listener can hear two same-slot
  transmitters, so downward (and upward) passes are collision-free
  inside the cluster; collisions across cluster boundaries remain and
  are handled by the Decay background process (Algorithm 10), exactly
  the role it plays in the paper.

On growth-bounded graphs the number of colors is ``O(1)``-ish (bounded
by one plus the maximum distance-2 degree), so a pass over distance
``ell`` costs ``O(ell)`` slots — the behavior the paper's accounting
assumes.
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np

from .cluster import Clustering


@dataclasses.dataclass
class ClusterSchedule:
    """Packet-level schedule data for every cluster of a clustering.

    Attributes
    ----------
    layer:
        Length-``n`` array: BFS layer of each node inside its own cluster
        (0 at the center).
    color:
        Length-``n`` array: distance-2 color of each node within its
        cluster.
    n_layers, n_colors:
        Global maxima, defining the synchronized slot grid — all clusters
        run their slots in lockstep, slot ``(L, c)`` firing every node
        with ``layer == L`` and ``color == c``.
    """

    layer: np.ndarray
    color: np.ndarray
    n_layers: int
    n_colors: int

    def slot_members(self, layer: int, color: int) -> np.ndarray:
        """Boolean mask of the nodes firing in slot ``(layer, color)``."""
        return (self.layer == layer) & (self.color == color)


def _distance2_coloring(subgraph: nx.Graph) -> dict:
    """Greedy distance-2 coloring of a (small) cluster subgraph.

    Colors the square of the subgraph greedily in degree order; two nodes
    at distance <= 2 inside the cluster never share a color, which makes
    same-slot transmissions collision-free for in-cluster listeners.
    """
    square = nx.power(subgraph, 2) if subgraph.number_of_nodes() > 1 else subgraph
    return nx.coloring.greedy_color(square, strategy="largest_first")


def build_schedule(graph: nx.Graph, clustering: Clustering) -> ClusterSchedule:
    """Compute the synchronized slot schedule for all clusters.

    Schedule computation is centralized here (an oracle step); the
    distributed construction of [17]/[18] is charged by
    :meth:`repro.core.costmodel.CostModel.schedule_rounds` in the
    round-accounted pipeline. The *use* of the schedule — which
    transmissions collide where — is simulated exactly.
    """
    n = clustering.n
    layer = np.zeros(n, dtype=np.int64)
    color = np.zeros(n, dtype=np.int64)
    labels = list(graph.nodes)

    n_layers = 1
    n_colors = 1
    for center, member_indices in clustering.members().items():
        member_labels = [labels[v] for v in member_indices]
        sub = graph.subgraph(member_labels)
        # BFS layering from the center within the cluster.
        depths = nx.single_source_shortest_path_length(sub, labels[center])
        coloring = _distance2_coloring(sub)
        for v in member_indices:
            label = labels[v]
            layer[v] = depths[label]
            color[v] = coloring[label]
        n_layers = max(n_layers, max(depths.values()) + 1)
        n_colors = max(n_colors, max(coloring.values()) + 1)

    return ClusterSchedule(
        layer=layer, color=color, n_layers=n_layers, n_colors=n_colors
    )
