"""The single-hop wake-up problem (paper Section 1.5.1).

The paper's MIS lower bound comes by reduction: ``n`` nodes sit in a
clique but only an unknown ``k`` of them are *activated* at time 0; the
goal is a *successful transmission* — a step where exactly one active
node transmits. Any high-probability MIS algorithm, simulated by the
active nodes, must produce such a step (a node cannot safely join the
MIS of a clique without one), so the ``Omega(log^2 n)`` wake-up lower
bound of Farach-Colton–Fernandes–Mosteiro transfers to MIS.

This module makes the reduction concrete and measurable:

* :func:`run_wakeup` — the wake-up game itself, for any transmission
  strategy (a per-step probability schedule);
* :func:`decay_schedule` — the cyclic Decay ladder, the classic
  ``O(log^2 n)``-expected strategy (and the one inside Algorithm 7);
* :func:`uniform_schedule` — the naive fixed-probability strategy that
  degrades badly when ``k`` is far from its tuned density;
* :func:`mis_as_wakeup_strategy` — runs actual Radio MIS on the
  k-active clique and reports the step of its first successful
  transmission, realizing the reduction in the paper's footnote 3
  (the MIS algorithm must still work when given ``n`` but run on ``k``
  nodes, because isolated extra nodes are indistinguishable).

Experiment E11 uses these to reproduce the lower-bound *shape*: every
correct strategy needs steps growing with both ``log n`` (to sweep
densities) and the confidence level.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Sequence

import numpy as np

Schedule = Callable[[int], float]
"""Maps a step index to the transmission probability every active node
uses in that step (symmetric strategies — the interesting regime, since
nodes are indistinguishable before the first success)."""


def decay_schedule(n_estimate: int) -> Schedule:
    """Cyclic Decay ladder: step ``t`` uses probability ``2^-(t mod L + 1)``.

    ``L = ceil(log2 n)``; some rung is within a factor 2 of ``1/k`` for
    every ``k <= n``, giving a constant success chance per cycle —
    hence expected ``O(log n)`` steps *per cycle hit* and ``O(log^2 n)``
    for high-probability success over all k simultaneously.
    """
    span = max(1, math.ceil(math.log2(max(2, n_estimate))))

    def schedule(step: int) -> float:
        return 2.0 ** -((step % span) + 1)

    return schedule


def uniform_schedule(probability: float) -> Schedule:
    """Fixed-probability strategy (optimal iff tuned to ``k``).

    With ``p = 1/k`` the per-step success chance is ``~1/e``; with ``k``
    unknown the strategy collapses: success probability per step is
    ``k p (1-p)^(k-1) -> 0`` when ``p`` misses ``1/k`` by a large
    factor. The E11 table shows exactly that failure.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {probability}")

    def schedule(step: int) -> float:
        return probability

    return schedule


@dataclasses.dataclass
class WakeupResult:
    """Outcome of one wake-up game."""

    succeeded: bool
    steps: int
    k: int


def run_wakeup(
    k: int,
    schedule: Schedule,
    rng: np.random.Generator,
    max_steps: int = 10_000,
) -> WakeupResult:
    """Play the wake-up game with ``k`` active clique nodes.

    Each step, every active node independently transmits with the
    schedule's probability; success is the first step with exactly one
    transmitter. The clique topology never matters beyond "everyone
    collides with everyone", so the game is simulated directly on the
    binomial count.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for step in range(max_steps):
        p = schedule(step)
        transmitters = rng.binomial(k, p)
        if transmitters == 1:
            return WakeupResult(succeeded=True, steps=step + 1, k=k)
    return WakeupResult(succeeded=False, steps=max_steps, k=k)


def expected_steps(
    k: int,
    schedule: Schedule,
    rng: np.random.Generator,
    trials: int = 50,
    max_steps: int = 10_000,
) -> float:
    """Mean steps-to-success over repeated games (failures count full)."""
    results = [run_wakeup(k, schedule, rng, max_steps) for _ in range(trials)]
    return float(np.mean([r.steps for r in results]))


def _wakeup_mis_schedule(n: int, k: int, rng: np.random.Generator):
    """Schedule emitter for the MIS-as-wake-up reduction.

    Each Decay block of the marking dynamics is oblivious (masks are the
    round's marked set gated by fresh coins), so blocks go out as
    :class:`~repro.engine.segments.ObliviousWindow` chunks. The success
    event — the first step with exactly one transmitter — is a property
    of the masks alone, so the emitter scans each chunk, trims the final
    window at the success step, and stops: executed radio steps and the
    returned :class:`WakeupResult` are bit-identical to the step-wise
    reference. (Only the post-success rng state differs: the batched
    path has already drawn the remainder of the final chunk's coins.)
    """
    from ..engine.segments import ObliviousWindow, coin_chunk
    from .decay import claim10_iterations, decay_span

    span = decay_span(n)  # the algorithm believes the network has n nodes
    iterations = claim10_iterations(n)
    block = iterations * span
    probs = 2.0 ** -((np.arange(block) % span) + 1.0)
    chunk = coin_chunk(k)

    p = np.full(k, 0.5)
    steps = 0
    budget = max(1, math.ceil(10 * math.log2(max(2, n))))
    for _ in range(budget):
        marked = rng.random(k) < p
        done = 0
        while done < block:
            c = min(chunk, block - done)
            coins = rng.random((c, k)) < probs[done : done + c, None]
            masks = marked[None, :] & coins
            singles = np.nonzero(masks.sum(axis=1) == 1)[0]
            if singles.size:
                t = int(singles[0])
                yield ObliviousWindow(masks[: t + 1])
                return WakeupResult(succeeded=True, steps=steps + t + 1, k=k)
            yield ObliviousWindow(masks)
            steps += c
            done += c
        # Nobody succeeded this round; in the clique every d_t is high,
        # so Ghaffari's update halves every desire level.
        p = p / 2.0
    return WakeupResult(succeeded=False, steps=steps, k=k)


def mis_as_wakeup_strategy(
    n: int,
    k: int,
    rng: np.random.Generator,
    engine: str | None = None,
    *,
    policy: "ExecutionPolicy | None" = None,
) -> WakeupResult:
    """The paper's reduction, executed: run Radio MIS on a k-clique
    while telling it the network size is ``n``.

    Per footnote 3, a correct MIS algorithm must behave correctly here —
    the ``k`` active nodes cannot distinguish this network from one with
    ``n - k`` extra isolated nodes. We run the *marking* dynamics of
    Algorithm 7 on the clique and report the step of the first clean
    (single-transmitter) step inside its Decay blocks, which is exactly
    the wake-up success event the lower bound counts.

    ``engine="windowed"`` (default) batches the Decay blocks through the
    windowed engine; ``"reference"`` is the retained step-wise loop.
    Seeded results are bit-identical. One caveat, unique among the
    engine pairs: on success the windowed path has already drawn the
    remainder of its final coin chunk, so the *post-call rng state*
    differs from the reference's — pass each engine its own seeded
    generator (rather than one shared across calls) when comparing
    multi-trial sequences across engines. The deprecated per-call
    ``engine`` kwarg folds into a policy through the usual shim.
    """
    from ..engine.policy import legacy_policy

    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    policy = legacy_policy(policy, "mis_as_wakeup_strategy", engine=engine)
    schedule = policy.fault_schedule()
    if schedule is not None and not schedule.is_empty:
        from ..radio.errors import ProtocolError

        raise ProtocolError(
            "mis_as_wakeup_strategy builds its own internal k-clique, "
            "so a FaultSchedule over the caller's topology cannot "
            "apply; run the reduction fault-free (faults=None or an "
            "empty FaultSchedule)"
        )
    if policy.engine_for(("windowed", "reference"), "windowed") == "reference":
        return mis_as_wakeup_strategy_reference(n, k, rng)

    import networkx as nx

    from ..radio.network import RadioNetwork

    net = RadioNetwork(nx.complete_graph(k))
    return policy.run_schedule(net, _wakeup_mis_schedule(n, k, rng))


def mis_as_wakeup_strategy_reference(
    n: int,
    k: int,
    rng: np.random.Generator,
) -> WakeupResult:
    """Step-wise MIS-as-wake-up: the executable specification.

    One :meth:`~repro.radio.network.RadioNetwork.deliver` call per step,
    stopping at the first single-transmitter step.
    """
    import networkx as nx

    from ..radio.network import RadioNetwork
    from .decay import claim10_iterations, decay_span

    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    clique = nx.complete_graph(k)
    net = RadioNetwork(clique)
    span = decay_span(n)  # the algorithm believes the network has n nodes
    iterations = claim10_iterations(n)

    p = np.full(k, 0.5)
    steps = 0
    budget = max(1, math.ceil(10 * math.log2(max(2, n))))
    for _ in range(budget):
        marked = rng.random(k) < p
        for i in range(iterations * span):
            prob = 2.0 ** -((i % span) + 1)
            transmit = marked & (rng.random(k) < prob)
            hear = net.deliver(transmit)
            steps += 1
            if transmit.sum() == 1:
                return WakeupResult(succeeded=True, steps=steps, k=k)
            del hear  # collision or silence: the game continues
        # Nobody succeeded this round; in the clique every d_t is high,
        # so Ghaffari's update halves every desire level.
        p = p / 2.0
    return WakeupResult(succeeded=False, steps=steps, k=k)
