"""The paper's algorithms (Sections 2-4).

Packet-level primitives (Decay, EstimateEffectiveDegree, Radio MIS,
radio Partition, Intra-Cluster Propagation) and the round-accounted
Compete pipeline with broadcasting and leader election on top.
"""

from .broadcast import BroadcastResult, broadcast, broadcast_packet_level
from .cluster import Clustering
from .cluster_stats import (
    BadJReport,
    b_beta,
    b_constant,
    bad_j_report,
    center_distance_histogram,
    expected_distance_bound,
    is_bad_j,
    lemma4_bound,
    prefix_counts,
    s_beta,
    t_beta,
)
from .compete import (
    CompeteConfig,
    CompeteResult,
    PhaseRecord,
    compete,
)
from .compete_packet import (
    PacketCompeteConfig,
    PacketCompeteResult,
    broadcast_packet,
    compete_packet,
)
from .costmodel import CostModel, propagation_length, total_bound
from .decay import (
    Decay,
    DecayResult,
    claim10_iterations,
    decay_block_schedule,
    decay_span,
    run_decay,
    run_decay_reference,
)
from .effective_degree import (
    EffectiveDegreeResult,
    EstimateEffectiveDegree,
    effective_degree_schedule,
    estimate_effective_degree,
    estimate_effective_degree_reference,
    exact_effective_degree,
)
from .intra_cluster import (
    DecayBackground,
    ICPProtocol,
    ICPResult,
    decay_background_schedule,
    intra_cluster_propagation,
)
from .leader_election import (
    LeaderElectionResult,
    PacketLeaderResult,
    candidate_probability,
    elect_leader,
    elect_leader_packet,
    id_bits,
)
from .mis import (
    MISConfig,
    MISResult,
    MISRoundRecord,
    compute_mis,
    compute_mis_reference,
    mis_round_budget,
    mis_schedule,
)
from .mpx import (
    beta_of_j,
    coarse_beta,
    draw_shifts,
    j_range,
    partition,
    partition_csr,
    partition_reference,
)
from .partition_radio import partition_radio
from .schedule import (
    ClusterSchedule,
    build_schedule,
    build_schedule_reference,
)
from .wakeup import (
    WakeupResult,
    decay_schedule,
    expected_steps,
    mis_as_wakeup_strategy,
    mis_as_wakeup_strategy_reference,
    run_wakeup,
    uniform_schedule,
)

__all__ = [
    "BadJReport",
    "BroadcastResult",
    "Clustering",
    "ClusterSchedule",
    "CompeteConfig",
    "CompeteResult",
    "CostModel",
    "Decay",
    "DecayBackground",
    "DecayResult",
    "EffectiveDegreeResult",
    "EstimateEffectiveDegree",
    "ICPProtocol",
    "ICPResult",
    "LeaderElectionResult",
    "MISConfig",
    "MISResult",
    "MISRoundRecord",
    "PacketCompeteConfig",
    "PacketCompeteResult",
    "PacketLeaderResult",
    "PhaseRecord",
    "WakeupResult",
    "b_beta",
    "b_constant",
    "bad_j_report",
    "beta_of_j",
    "broadcast",
    "broadcast_packet",
    "broadcast_packet_level",
    "build_schedule",
    "build_schedule_reference",
    "candidate_probability",
    "center_distance_histogram",
    "claim10_iterations",
    "coarse_beta",
    "compete",
    "compete_packet",
    "compute_mis",
    "compute_mis_reference",
    "decay_background_schedule",
    "decay_block_schedule",
    "decay_schedule",
    "decay_span",
    "draw_shifts",
    "effective_degree_schedule",
    "elect_leader",
    "elect_leader_packet",
    "expected_steps",
    "estimate_effective_degree",
    "estimate_effective_degree_reference",
    "exact_effective_degree",
    "expected_distance_bound",
    "id_bits",
    "intra_cluster_propagation",
    "is_bad_j",
    "j_range",
    "lemma4_bound",
    "mis_as_wakeup_strategy",
    "mis_as_wakeup_strategy_reference",
    "mis_round_budget",
    "mis_schedule",
    "partition",
    "partition_csr",
    "partition_radio",
    "partition_reference",
    "prefix_counts",
    "propagation_length",
    "run_decay",
    "run_decay_reference",
    "run_wakeup",
    "s_beta",
    "t_beta",
    "total_bound",
    "uniform_schedule",
]
