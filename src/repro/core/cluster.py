"""Clustering result type shared by all Partition implementations.

Both the centralized Miller–Peng–Xu computation (:mod:`repro.core.mpx`)
and the packet-level radio implementation
(:mod:`repro.core.partition_radio`) produce a :class:`Clustering`;
``Compete`` and the Section 3 analysis consume it through this one
interface.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

import networkx as nx
import numpy as np
from .resulteq import ArrayEqMixin


@dataclasses.dataclass(eq=False)
class Clustering(ArrayEqMixin):
    """A partition of the nodes into clusters around centers.

    Attributes
    ----------
    beta:
        The exponential-shift parameter the clustering was built with.
    centers:
        Indices of the potential cluster centers (the paper's change: MIS
        nodes only, vs. all nodes in [7]/[18]). A center with no members
        assigned (captured by another center's shifted ball) simply does
        not appear in ``assignment``.
    assignment:
        Length-``n`` array; ``assignment[v]`` is the center index ``v``
        joined.
    distance_to_center:
        Length-``n`` array of hop distances ``dist(v, assignment[v])``.
    delta:
        The exponential shifts, keyed by center index.
    """

    beta: float
    centers: list[int]
    assignment: np.ndarray
    distance_to_center: np.ndarray
    delta: dict[int, float]

    @property
    def n(self) -> int:
        """Number of clustered nodes."""
        return len(self.assignment)

    def members(self) -> dict[int, list[int]]:
        """Cluster membership: center index -> sorted member indices."""
        clusters: dict[int, list[int]] = defaultdict(list)
        for v, c in enumerate(self.assignment):
            clusters[int(c)].append(v)
        return {c: sorted(vs) for c, vs in clusters.items()}

    def used_centers(self) -> list[int]:
        """Centers that actually own at least one node."""
        return sorted(set(int(c) for c in self.assignment))

    def radius(self, center: int) -> int:
        """Max hop distance from ``center`` to its members."""
        mask = self.assignment == center
        if not mask.any():
            raise ValueError(f"center {center} owns no nodes")
        return int(self.distance_to_center[mask].max())

    def max_radius(self) -> int:
        """Largest cluster radius in the clustering."""
        return int(self.distance_to_center.max())

    def mean_distance(self) -> float:
        """Mean hop distance from nodes to their centers.

        This is the quantity Theorem 2 bounds in expectation:
        ``O(log_D alpha / beta)`` for a 0.77-fraction of the ``j`` range
        under MIS centers.
        """
        return float(self.distance_to_center.mean())

    def validate(self, graph: nx.Graph, index_of) -> None:
        """Sanity-check invariants; raises ``AssertionError`` on failure.

        Checks that every node is assigned to a declared center, that
        centers own themselves whenever they own anything nearby, and
        that every cluster induces a connected subgraph (a structural
        property of MPX clusterings that intra-cluster propagation
        relies on).
        """
        center_set = set(self.centers)
        assert all(int(c) in center_set for c in self.assignment), (
            "assignment references a non-center"
        )
        labels = list(graph.nodes)
        for center, member_indices in self.members().items():
            member_labels = {labels[v] for v in member_indices}
            sub = graph.subgraph(member_labels)
            assert nx.is_connected(sub), (
                f"cluster of center {center} induces a disconnected subgraph"
            )
