"""Restartable Radio MIS: epoch-restarted MIS under churn.

The robustness variant of Algorithm 7 for networks with sleep/wake
churn and late joins (:mod:`repro.faults`). Plain Radio MIS decides
every node once; under churn, nodes that were asleep (or not yet
joined) during the run wake up undecided — and nodes that crash out of
the MIS leave their neighborhoods uncovered. This variant runs MIS in
**epochs**: each epoch re-admits the currently awake undecided nodes,
first re-announcing the existing MIS (so woken nodes adjacent to an
MIS member get dominated instead of competing), then running compact
MIS rounds among the remainder.

Every radio step goes through the same plan/commit IR as the base
algorithm — the emitter is fault-agnostic; crashes, sleep, jamming,
and capability faults apply inside the delivery layer. The only fault
awareness is each node's *own* up/down status (its own local state,
exactly as legitimate as its own coin flips), read through
:func:`_awake_mask` — global mask assembly is simulator convenience,
like the protocols' batched coin draws.

Under a non-empty schedule the MIS guarantee degrades measurably
(jamming can suppress the "did a neighbor mark?" echo, letting two
neighbors join): the result records ``conflict_edges`` and the
dominated fraction as oracle instrumentation, which is exactly the
degradation curve ``benchmarks/bench_p6_faults.py`` measures. With no
(or an empty) schedule, every epoch after the first is a no-op check
and the guarantees of Theorem 14 carry over unchanged.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Hashable

import numpy as np

from ..engine.policy import ExecutionPolicy
from ..engine.segments import ProtocolSchedule, TracePhase
from ..radio.network import RadioNetwork
from .decay import claim10_iterations, decay_block_schedule, run_decay_reference
from .resulteq import ArrayEqMixin
from .effective_degree import (
    effective_degree_schedule,
    estimate_effective_degree_reference,
)


@dataclasses.dataclass
class RestartableMISConfig:
    """Tunable constants of restartable Radio MIS.

    ``epochs`` bounds the restart count; each epoch re-admits awake
    undecided nodes and runs up to ``ceil(round_factor * log2 n)``
    compact MIS rounds. The Decay/EED constants mirror
    :class:`~repro.core.mis.MISConfig` (smaller defaults — each epoch
    is a full MIS pass, and the variant exists to be swept across
    fault rates).
    """

    epochs: int = 3
    round_factor: float = 4.0
    decay_amplification: float = 2.0
    eed_C: int = 8
    stop_when_done: bool = True


@dataclasses.dataclass
class RestartEpochRecord:
    """Per-epoch instrumentation of a restartable MIS run."""

    epoch_index: int
    awake: int
    admitted: int
    rounds: int
    mis_size_after: int


@dataclasses.dataclass(eq=False)
class RestartableMISResult(ArrayEqMixin):
    """Output of :func:`compute_restartable_mis`.

    ``readmitted`` totals the awake undecided nodes epochs after the
    first re-admitted into competition (woken sleepers and late
    joiners; 0 in fault-free runs when the first epoch decides
    everyone). ``conflict_edges`` and ``dominated_fraction`` are
    oracle instrumentation of the degraded guarantee — the protocol
    path never reads them.
    """

    mis: set[Hashable]
    mis_mask: np.ndarray
    epochs_used: int
    rounds_used: int
    steps_used: int
    readmitted: int
    conflict_edges: int
    dominated_fraction: float
    history: list[RestartEpochRecord]

    @property
    def size(self) -> int:
        """Number of MIS nodes."""
        return len(self.mis)


def _awake_mask(network: RadioNetwork) -> np.ndarray:
    """Who is up at the network's current global step.

    Each node's own up/down status is its own local state; the
    vectorized read from the fault state is simulator convenience.
    All-ones without an active schedule.
    """
    state = network._fault_state
    if state is None:
        return np.ones(network.n, dtype=bool)
    return state.alive_window(network.steps_elapsed, 1)[0]


def _epoch_round_budget(n_estimate: int, round_factor: float) -> int:
    return max(1, math.ceil(round_factor * math.log2(max(2, n_estimate))))


def restartable_mis_schedule(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: RestartableMISConfig | None = None,
    n_estimate: int | None = None,
) -> ProtocolSchedule:
    """Schedule emitter for restartable Radio MIS.

    Each epoch: one Decay block re-announcing the current MIS (woken
    neighbors of members get dominated), then compact MIS rounds
    (mark -> marked-echo Decay -> join -> MIS-announce Decay ->
    EstimateEffectiveDegree -> desire update) over the awake undecided
    nodes. The rng draw order is exactly that of
    :func:`restartable_mis_reference`, so both paths are seeded
    bit-identical under any shared fault schedule. Returns the
    :class:`RestartableMISResult`.
    """
    config = config or RestartableMISConfig()
    n = network.n
    n_est = n_estimate if n_estimate is not None else n
    decay_iters = claim10_iterations(n_est, config.decay_amplification)
    budget = _epoch_round_budget(n_est, config.round_factor)

    in_mis = np.zeros(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    history: list[RestartEpochRecord] = []
    steps_before = network.steps_elapsed
    epochs_used = 0
    rounds_used = 0
    readmitted = 0

    for epoch in range(config.epochs):
        awake = _awake_mask(network)
        admitted = int((awake & ~decided).sum())
        if epoch > 0:
            readmitted += admitted
            if config.stop_when_done and admitted == 0:
                break
        epochs_used = epoch + 1

        # --- re-announce the standing MIS --------------------------------
        yield TracePhase("mis-restart/announce")
        announce_echo = yield from decay_block_schedule(
            network, in_mis & awake, rng,
            iterations=decay_iters, n_estimate=n_est,
        )
        decided |= announce_echo.heard & awake

        active = awake & ~decided
        p = np.full(n, 0.5, dtype=np.float64)
        epoch_rounds = 0
        for _ in range(budget):
            if config.stop_when_done and not active.any():
                break
            epoch_rounds += 1

            marked = active & (rng.random(n) < p)

            yield TracePhase("mis-restart/decay-marked")
            marked_echo = yield from decay_block_schedule(
                network, marked, rng,
                iterations=decay_iters, n_estimate=n_est,
            )
            joined = marked & ~marked_echo.heard
            in_mis |= joined
            decided |= joined

            yield TracePhase("mis-restart/decay-mis")
            mis_echo = yield from decay_block_schedule(
                network, joined, rng,
                iterations=decay_iters, n_estimate=n_est,
            )
            removed = joined | (mis_echo.heard & active)
            decided |= mis_echo.heard & active
            active &= ~removed

            yield TracePhase("mis-restart/eed")
            eed = yield from effective_degree_schedule(
                network, p, active, rng,
                C=config.eed_C, n_estimate=n_est,
            )
            p = np.where(eed.high, p / 2.0, np.minimum(2.0 * p, 0.5))

        rounds_used += epoch_rounds
        history.append(
            RestartEpochRecord(
                epoch_index=epoch,
                awake=int(awake.sum()),
                admitted=admitted,
                rounds=epoch_rounds,
                mis_size_after=int(in_mis.sum()),
            )
        )

    yield TracePhase("default")
    return _finish(
        network, in_mis, decided, epochs_used, rounds_used,
        network.steps_elapsed - steps_before, readmitted, history,
    )


def restartable_mis_reference(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: RestartableMISConfig | None = None,
    n_estimate: int | None = None,
) -> RestartableMISResult:
    """Step-wise restartable MIS: the executable specification.

    The identical epoch/round loop with its sub-protocols driven one
    :meth:`~repro.radio.network.RadioNetwork.deliver` call at a time —
    the fault-twin suite pins :func:`compute_restartable_mis` against
    it bit-for-bit under shared seeded fault schedules.
    """
    config = config or RestartableMISConfig()
    n = network.n
    n_est = n_estimate if n_estimate is not None else n
    decay_iters = claim10_iterations(n_est, config.decay_amplification)
    budget = _epoch_round_budget(n_est, config.round_factor)

    in_mis = np.zeros(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    history: list[RestartEpochRecord] = []
    steps_before = network.steps_elapsed
    epochs_used = 0
    rounds_used = 0
    readmitted = 0

    for epoch in range(config.epochs):
        awake = _awake_mask(network)
        admitted = int((awake & ~decided).sum())
        if epoch > 0:
            readmitted += admitted
            if config.stop_when_done and admitted == 0:
                break
        epochs_used = epoch + 1

        network.trace.enter_phase("mis-restart/announce")
        announce_echo = run_decay_reference(
            network, in_mis & awake, rng,
            iterations=decay_iters, n_estimate=n_est,
        )
        decided |= announce_echo.heard & awake

        active = awake & ~decided
        p = np.full(n, 0.5, dtype=np.float64)
        epoch_rounds = 0
        for _ in range(budget):
            if config.stop_when_done and not active.any():
                break
            epoch_rounds += 1

            marked = active & (rng.random(n) < p)

            network.trace.enter_phase("mis-restart/decay-marked")
            marked_echo = run_decay_reference(
                network, marked, rng,
                iterations=decay_iters, n_estimate=n_est,
            )
            joined = marked & ~marked_echo.heard
            in_mis |= joined
            decided |= joined

            network.trace.enter_phase("mis-restart/decay-mis")
            mis_echo = run_decay_reference(
                network, joined, rng,
                iterations=decay_iters, n_estimate=n_est,
            )
            removed = joined | (mis_echo.heard & active)
            decided |= mis_echo.heard & active
            active &= ~removed

            network.trace.enter_phase("mis-restart/eed")
            eed = estimate_effective_degree_reference(
                network, p, active, rng,
                C=config.eed_C, n_estimate=n_est,
            )
            p = np.where(eed.high, p / 2.0, np.minimum(2.0 * p, 0.5))

        rounds_used += epoch_rounds
        history.append(
            RestartEpochRecord(
                epoch_index=epoch,
                awake=int(awake.sum()),
                admitted=admitted,
                rounds=epoch_rounds,
                mis_size_after=int(in_mis.sum()),
            )
        )

    network.trace.enter_phase("default")
    return _finish(
        network, in_mis, decided, epochs_used, rounds_used,
        network.steps_elapsed - steps_before, readmitted, history,
    )


def _finish(
    network: RadioNetwork,
    in_mis: np.ndarray,
    decided: np.ndarray,
    epochs_used: int,
    rounds_used: int,
    steps_used: int,
    readmitted: int,
    history: list[RestartEpochRecord],
) -> RestartableMISResult:
    """Assemble the result; the quality facts are oracle instrumentation."""
    mis_neighbors = network.neighbor_sum(in_mis.astype(np.float64))
    conflict_edges = int(round(float(mis_neighbors[in_mis].sum()) / 2.0))
    mis_labels = {network.label_of(int(i)) for i in np.nonzero(in_mis)[0]}
    return RestartableMISResult(
        mis=mis_labels,
        mis_mask=in_mis,
        epochs_used=epochs_used,
        rounds_used=rounds_used,
        steps_used=steps_used,
        readmitted=readmitted,
        conflict_edges=conflict_edges,
        dominated_fraction=float(decided.mean()),
        history=history,
    )


def compute_restartable_mis(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: RestartableMISConfig | None = None,
    n_estimate: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> RestartableMISResult:
    """Run restartable Radio MIS on ``network`` under ``policy``.

    ``policy.faults`` (or the process-wide default schedule) is
    installed on the network first; ``engine="windowed"`` (the
    ``"auto"`` default) runs :func:`restartable_mis_schedule` on the
    batched engine, ``"reference"`` the step-wise loop — bit-identical
    seeded results under any shared schedule.
    """
    policy = policy or ExecutionPolicy()
    policy.bind(network)
    if policy.engine_for(("windowed", "reference"), "windowed") == "reference":
        return restartable_mis_reference(network, rng, config, n_estimate)
    return policy.run_schedule(
        network, restartable_mis_schedule(network, rng, config, n_estimate)
    )


__all__ = [
    "RestartEpochRecord",
    "RestartableMISConfig",
    "RestartableMISResult",
    "compute_restartable_mis",
    "restartable_mis_reference",
    "restartable_mis_schedule",
]
