"""Radio MIS (paper Algorithm 7, Section 4) — the first maximal
independent set algorithm for general-graph radio networks.

The algorithm is Ghaffari's LOCAL-model MIS (Algorithm 4) with its three
communication needs realized by radio primitives:

* "did any neighbor mark itself?" — marked nodes run ``O(log n)``
  iterations of Decay (Claim 10);
* "did a neighbor join the MIS?" — joining nodes run Decay likewise;
* "is my effective degree high or low?" — EstimateEffectiveDegree
  (Algorithm 6 / Lemma 11), replacing Ghaffari's exact threshold test
  with a (1, 0.01) two-sided test.

Each of ``O(log n)`` rounds costs ``O(log^2 n)`` radio steps, for the
``O(log^3 n)`` total of Theorem 14, a ``log n`` factor from the
``Omega(log^2 n)`` lower bound.

Instrumentation for the analysis (Lemmas 12-13) is built in: golden
rounds of both types are tracked per node using oracle effective degrees
(instrumentation only — the protocol path never reads them unless the
documented ``oracle_degree`` speed knob is enabled).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Hashable

import numpy as np

from ..engine.pcg import CoinField
from ..engine.policy import ExecutionPolicy, legacy_policy
from ..engine.segments import (
    PlanSection,
    ProtocolSchedule,
    StreamedWindow,
    TracePhase,
)
from ..radio.network import PipelineForm, RadioNetwork, TransmitPlan
from .decay import Decay, claim10_iterations, run_decay_reference
from .resulteq import ArrayEqMixin
from .effective_degree import (
    HIGH_GUARANTEE,
    effective_degree_schedule,
    estimate_effective_degree_reference,
    exact_effective_degree,
)

#: Effective-degree floor of a type-2 golden round (Lemma 12).
TYPE2_DEGREE_FLOOR = 1.0 / 200.0

#: Fraction of ``d_t(v)`` that low-degree neighbors must contribute for a
#: type-2 golden round.
TYPE2_LOW_FRACTION = 0.1


@dataclasses.dataclass
class MISConfig:
    """Tunable constants of Radio MIS.

    All defaults correspond to the paper's structure; the explicit
    constants inside the O() notations are exposed because the
    reproduction's benchmarks measure how behavior depends on them
    (DESIGN.md substitution 3).

    Attributes
    ----------
    round_factor:
        Round budget is ``ceil(round_factor * log2 n)`` — the paper's
        ``13 c log n`` with ``round_factor = 13c``.
    decay_amplification:
        Claim 10 constant: each Decay block runs
        ``ceil(decay_amplification * log2 n)`` sweeps.
    eed_C:
        The ``C`` of Algorithm 6.
    oracle_degree:
        If true, skip the EstimateEffectiveDegree sub-protocol and use
        exact effective degrees with threshold
        :data:`~repro.core.effective_degree.HIGH_GUARANTEE` instead —
        a documented fidelity/speed knob that removes the dominant
        ``O(log^2 n)``-step cost per round while keeping the marking
        dynamics identical in distribution up to Lemma 11's slack.
    stop_when_done:
        Stop as soon as no active nodes remain (output is identical;
        remaining rounds would be no-ops). Disable to measure the full
        fixed budget.
    record_golden:
        Track golden rounds per node (costs one oracle degree computation
        per round; has no effect on protocol behavior).
    """

    round_factor: float = 10.0
    decay_amplification: float = 4.0
    eed_C: int = 24
    oracle_degree: bool = False
    stop_when_done: bool = True
    record_golden: bool = True


@dataclasses.dataclass
class MISRoundRecord:
    """Per-round instrumentation of a Radio MIS run."""

    round_index: int
    active_before: int
    marked: int
    joined: int
    removed: int
    golden_type1: int
    golden_type2: int


@dataclasses.dataclass(eq=False)
class MISResult(ArrayEqMixin):
    """Output of :func:`compute_mis`.

    ``mis`` holds node labels; ``mis_mask`` the same set as a boolean
    index array. ``golden_type1``/``golden_type2`` count golden rounds
    per node over the whole run (Lemma 12 instrumentation).
    """

    mis: set[Hashable]
    mis_mask: np.ndarray
    rounds_used: int
    steps_used: int
    all_removed: bool
    history: list[MISRoundRecord]
    golden_type1: np.ndarray
    golden_type2: np.ndarray

    @property
    def size(self) -> int:
        """Number of MIS nodes."""
        return len(self.mis)


def mis_round_budget(n_estimate: int, round_factor: float) -> int:
    """The ``O(log n)`` round budget of Algorithm 7."""
    return max(1, math.ceil(round_factor * math.log2(max(2, n_estimate))))


def mis_schedule(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: MISConfig | None = None,
    n_estimate: int | None = None,
) -> ProtocolSchedule:
    """Schedule emitter for Radio MIS (Algorithm 7).

    Each round is three sub-schedules punctuated by decision points that
    cost no radio steps (marking coins, the desire-level update): two
    Decay blocks and — unless the ``oracle_degree`` knob is on — one
    EstimateEffectiveDegree block, all emitted as oblivious windows via
    ``yield from``. The rng draw order is exactly that of the step-wise
    loop in :func:`compute_mis_reference`, so both paths are seeded
    bit-identical. Returns the :class:`MISResult`.
    """
    config = config or MISConfig()
    n = network.n
    n_est = n_estimate if n_estimate is not None else n
    decay_iters = claim10_iterations(n_est, config.decay_amplification)
    budget = mis_round_budget(n_est, config.round_factor)

    active = np.ones(n, dtype=bool)
    p = np.full(n, 0.5, dtype=np.float64)
    in_mis = np.zeros(n, dtype=bool)
    golden1 = np.zeros(n, dtype=np.int64)
    golden2 = np.zeros(n, dtype=np.int64)
    history: list[MISRoundRecord] = []
    steps_before = network.steps_elapsed

    rounds_used = 0
    for t in range(budget):
        if config.stop_when_done and not active.any():
            break
        rounds_used = t + 1
        active_before = int(active.sum())

        g1 = g2 = 0
        if config.record_golden:
            g1, g2 = _record_golden_rounds(
                network, p, active, golden1, golden2
            )

        # --- marking ---------------------------------------------------
        marked = active & (rng.random(n) < p)

        # --- both Decay blocks, fused into one streamed plan -----------
        # The two blocks of a round ("did a neighbor mark itself?" and
        # the MIS-membership announcement) share one TransmitPlan, so
        # chunk dispatch, fault masking, and density routing run once
        # per round. The second block's membership (joined = marked
        # nodes that heard no marked neighbor) depends on the first
        # block's outcome, which is legal inside one plan because the
        # runner never lets a chunk straddle the PlanSection boundary:
        # by the first mask request of section 2, section 1 is fully
        # folded. Coins come from one CoinField in row order, so the
        # rng stream equals the two sequential blocks' draws exactly.
        d1 = Decay(
            network, marked, iterations=decay_iters, n_estimate=n_est
        )
        span = d1.total_steps
        probs = 2.0 ** -((np.arange(span) % d1.span) + 1.0)
        coins = CoinField(rng, n)
        second: list[Decay] = []

        def _second() -> Decay:
            if not second:
                second.append(
                    Decay(
                        network,
                        d1.active & ~d1.heard,
                        iterations=decay_iters,
                        n_estimate=n_est,
                    )
                )
            return second[0]

        def masks(start: int, stop: int) -> np.ndarray:
            flips = coins.draw(start, stop)
            if stop <= span:
                return (
                    flips < probs[start:stop, None]
                ) & d1.active[None, :]
            return (
                flips < probs[start - span:stop - span, None]
            ) & _second().active[None, :]

        def masks_at(
            start: int, stop: int, cols: np.ndarray
        ) -> np.ndarray:
            flips = coins.draw_at(start, stop, cols)
            if stop <= span:
                return (
                    flips < probs[start:stop, None]
                ) & d1.active[cols][None, :]
            return (
                flips < probs[start - span:stop - span, None]
            ) & _second().active[cols][None, :]

        def col_probs(start: int) -> np.ndarray:
            # Separable form: the ladder probability is the row factor
            # and the block's 0/1 membership the column factor, chosen
            # by which section's rows the chunk covers (chunks never
            # straddle the section boundary).
            block = d1.active if start < span else _second().active
            return block.astype(np.float64)

        yield StreamedWindow(
            TransmitPlan(
                2 * span, masks,
                support=active.copy(), masks_at=masks_at,
                pipeline=PipelineForm(
                    coins, np.concatenate([probs, probs]), col_probs
                ),
            ),
            sections=(
                PlanSection(
                    span, "mis/decay-marked",
                    d1._absorb_window, d1._absorb_window_at,
                    d1._absorb_coo,
                ),
                PlanSection(
                    span, "mis/decay-mis",
                    lambda slab: _second()._absorb_window(slab),
                    lambda slab, cols: _second()._absorb_window_at(
                        slab, cols
                    ),
                    lambda k, steps, nodes, senders: (
                        _second()._absorb_coo(k, steps, nodes, senders)
                    ),
                ),
            ),
        )
        # A node v heard during block 1 iff some marked neighbor's
        # transmission reached it cleanly; Claim 10 makes this whp exact.
        joined = marked & ~d1.heard

        in_mis |= joined

        removed = joined | (_second().heard & active)
        active &= ~removed

        # --- effective degree estimate -----------------------------------
        if config.oracle_degree:
            d_exact = exact_effective_degree(network, p, active)
            high = active & (d_exact >= HIGH_GUARANTEE)
        else:
            yield TracePhase("mis/eed")
            eed = yield from effective_degree_schedule(
                network, p, active, rng, C=config.eed_C, n_estimate=n_est
            )
            high = eed.high

        # --- desire-level update -----------------------------------------
        p = np.where(high, p / 2.0, np.minimum(2.0 * p, 0.5))

        history.append(
            MISRoundRecord(
                round_index=t,
                active_before=active_before,
                marked=int(marked.sum()),
                joined=int(joined.sum()),
                removed=int(removed.sum()),
                golden_type1=g1,
                golden_type2=g2,
            )
        )

    yield TracePhase("default")
    mis_labels = {network.label_of(int(i)) for i in np.nonzero(in_mis)[0]}
    return MISResult(
        mis=mis_labels,
        mis_mask=in_mis,
        rounds_used=rounds_used,
        steps_used=network.steps_elapsed - steps_before,
        all_removed=not bool(active.any()),
        history=history,
        golden_type1=golden1,
        golden_type2=golden2,
    )


def compute_mis(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: MISConfig | None = None,
    n_estimate: int | None = None,
    engine: str | None = None,
    delivery: str | None = None,
    chunk_steps: int | None = None,
    mem_budget: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> MISResult:
    """Run Radio MIS (Algorithm 7) on ``network``.

    Parameters
    ----------
    network:
        The radio network. Connectivity is *not* required (MIS is a local
        problem, paper Section 1.2).
    rng:
        Randomness source for all nodes' coins.
    config:
        Constants; see :class:`MISConfig`.
    n_estimate:
        The network-size estimate nodes are assumed to know; defaults to
        the exact ``n``.
    policy:
        The :class:`~repro.engine.policy.ExecutionPolicy` to run under.
        ``engine="windowed"`` (the ``"auto"`` default) runs
        :func:`mis_schedule` on the batched engine, ``"reference"``
        the retained step-wise loop — bit-identical seeded results;
        ``delivery``/``chunk_steps``/``mem_budget`` route and stream
        the engine path's windows (performance/memory knobs only —
        the whole round loop streams, so peak memory is bounded by the
        slab instead of growing with ``log^2 n * n``).
    engine, delivery, chunk_steps, mem_budget:
        Deprecated per-call forms of the policy fields; a shim folds
        them into a policy (bit-identical) with one
        ``DeprecationWarning`` per entry point. Incompatible with
        ``policy=``.

    Returns
    -------
    MISResult
        With high probability (for default constants) ``mis`` is a
        maximal independent set and ``all_removed`` is true; tests
        validate both via :func:`repro.graphs.is_maximal_independent_set`.
    """
    policy = legacy_policy(
        policy, "compute_mis", engine=engine, delivery=delivery,
        chunk_steps=chunk_steps, mem_budget=mem_budget,
    )
    policy.bind(network)
    if policy.engine_for(("windowed", "reference"), "windowed") == "reference":
        return compute_mis_reference(network, rng, config, n_estimate)
    return policy.run_schedule(
        network, mis_schedule(network, rng, config, n_estimate)
    )


def compute_mis_reference(
    network: RadioNetwork,
    rng: np.random.Generator,
    config: MISConfig | None = None,
    n_estimate: int | None = None,
) -> MISResult:
    """Step-wise Radio MIS: the executable specification.

    The pre-engine round loop, retained verbatim with its sub-protocols
    driven one :meth:`~repro.radio.network.RadioNetwork.deliver` call at
    a time. The equivalence suite pins :func:`compute_mis` against it
    bit-for-bit (results, step counts, trace totals, rng stream).
    """
    config = config or MISConfig()
    n = network.n
    n_est = n_estimate if n_estimate is not None else n
    decay_iters = claim10_iterations(n_est, config.decay_amplification)
    budget = mis_round_budget(n_est, config.round_factor)

    active = np.ones(n, dtype=bool)
    p = np.full(n, 0.5, dtype=np.float64)
    in_mis = np.zeros(n, dtype=bool)
    golden1 = np.zeros(n, dtype=np.int64)
    golden2 = np.zeros(n, dtype=np.int64)
    history: list[MISRoundRecord] = []
    steps_before = network.steps_elapsed

    rounds_used = 0
    for t in range(budget):
        if config.stop_when_done and not active.any():
            break
        rounds_used = t + 1
        active_before = int(active.sum())

        g1 = g2 = 0
        if config.record_golden:
            g1, g2 = _record_golden_rounds(
                network, p, active, golden1, golden2
            )

        marked = active & (rng.random(n) < p)

        network.trace.enter_phase("mis/decay-marked")
        marked_echo = run_decay_reference(
            network, marked, rng, iterations=decay_iters, n_estimate=n_est
        )
        joined = marked & ~marked_echo.heard

        in_mis |= joined

        network.trace.enter_phase("mis/decay-mis")
        mis_echo = run_decay_reference(
            network, joined, rng, iterations=decay_iters, n_estimate=n_est
        )
        removed = joined | (mis_echo.heard & active)
        active &= ~removed

        if config.oracle_degree:
            d_exact = exact_effective_degree(network, p, active)
            high = active & (d_exact >= HIGH_GUARANTEE)
        else:
            network.trace.enter_phase("mis/eed")
            eed = estimate_effective_degree_reference(
                network, p, active, rng, C=config.eed_C, n_estimate=n_est
            )
            high = eed.high

        p = np.where(high, p / 2.0, np.minimum(2.0 * p, 0.5))

        history.append(
            MISRoundRecord(
                round_index=t,
                active_before=active_before,
                marked=int(marked.sum()),
                joined=int(joined.sum()),
                removed=int(removed.sum()),
                golden_type1=g1,
                golden_type2=g2,
            )
        )

    network.trace.enter_phase("default")
    mis_labels = {network.label_of(int(i)) for i in np.nonzero(in_mis)[0]}
    return MISResult(
        mis=mis_labels,
        mis_mask=in_mis,
        rounds_used=rounds_used,
        steps_used=network.steps_elapsed - steps_before,
        all_removed=not bool(active.any()),
        history=history,
        golden_type1=golden1,
        golden_type2=golden2,
    )


def _record_golden_rounds(
    network: RadioNetwork,
    p: np.ndarray,
    active: np.ndarray,
    golden1: np.ndarray,
    golden2: np.ndarray,
) -> tuple[int, int]:
    """Tally golden rounds (Lemma 12's two types) for active nodes.

    Type 1: ``d_t(v) < 1`` and ``p_t(v) = 1/2``.
    Type 2: ``d_t(v) >= 1/200`` and low-degree neighbors (those with
    ``d_t(u) < 1``) contribute at least ``d_t(v) / 10`` of it.
    Oracle computation; instrumentation only.
    """
    d = exact_effective_degree(network, p, active)
    low_degree = active & (d < 1.0)
    low_contribution = network.neighbor_sum(
        np.where(low_degree & active, p, 0.0)
    )

    type1 = active & (d < 1.0) & (p == 0.5)
    type2 = (
        active
        & (d >= TYPE2_DEGREE_FLOOR)
        & (low_contribution >= TYPE2_LOW_FRACTION * d)
    )
    golden1[type1] += 1
    golden2[type2] += 1
    return int(type1.sum()), int(type2.sum())
