"""Round accounting and tracing for radio network simulations.

Two accounting tools live here:

* :class:`StepTrace` — records what actually happened in a packet-level
  simulation (steps executed, transmissions, successful receptions), with
  named phases so multi-stage protocols like Radio MIS can attribute their
  step budget to sub-procedures (Decay blocks, EstimateEffectiveDegree,
  ...).

* :class:`CostLedger` — records *charged* rounds for the round-accounted
  fidelity level used by the full ``Compete`` pipeline, where components
  taken as black boxes from prior work (fast schedules, schedule
  computation) are charged their published cost instead of being simulated
  bit-by-bit. Every charge carries a reason string so benchmark output can
  itemize where the rounds went.

DESIGN.md Section 1.1 explains why both levels exist.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict


@dataclasses.dataclass
class PhaseStats:
    """Aggregate statistics for one named phase of a packet simulation."""

    steps: int = 0
    transmissions: int = 0
    receptions: int = 0


class StepTrace:
    """Mutable record of a packet-level simulation run.

    The :class:`~repro.radio.network.RadioNetwork` updates the trace on
    every :meth:`~repro.radio.network.RadioNetwork.step` call. Protocols
    switch the current phase with :meth:`enter_phase`; steps are attributed
    to whichever phase is current when they execute.
    """

    #: Whether the trace consumes per-step transmission/reception counts;
    #: the network skips computing them when this is False.
    wants_detail = True

    def __init__(self) -> None:
        self.total_steps = 0
        self.total_transmissions = 0
        self.total_receptions = 0
        self._phase = "default"
        self._phases: dict[str, PhaseStats] = defaultdict(PhaseStats)

    @property
    def current_phase(self) -> str:
        """Name of the phase steps are currently attributed to."""
        return self._phase

    def enter_phase(self, name: str) -> None:
        """Attribute subsequent steps to phase ``name``."""
        self._phase = name

    def record_step(self, transmissions: int, receptions: int) -> None:
        """Record one executed radio step (called by the network)."""
        self.total_steps += 1
        self.total_transmissions += transmissions
        self.total_receptions += receptions
        stats = self._phases[self._phase]
        stats.steps += 1
        stats.transmissions += transmissions
        stats.receptions += receptions

    def record_window(
        self, steps: int, transmissions: int, receptions: int
    ) -> None:
        """Record a whole batch of steps in one call.

        The vectorized :meth:`~repro.radio.network.RadioNetwork.deliver_window`
        path uses this instead of ``steps`` individual
        :meth:`record_step` calls; since the trace only keeps aggregates
        and the current phase cannot change mid-window, the resulting
        trace state is identical to the per-step recording.
        """
        self.total_steps += steps
        self.total_transmissions += transmissions
        self.total_receptions += receptions
        stats = self._phases[self._phase]
        stats.steps += steps
        stats.transmissions += transmissions
        stats.receptions += receptions

    def phase_stats(self) -> dict[str, PhaseStats]:
        """Return a copy of the per-phase statistics."""
        return dict(self._phases)

    def steps_in_phase(self, name: str) -> int:
        """Steps executed while ``name`` was the current phase."""
        return self._phases[name].steps if name in self._phases else 0

    def summary(self) -> str:
        """Human-readable multi-line summary (used by examples)."""
        lines = [
            f"total steps: {self.total_steps}",
            f"total transmissions: {self.total_transmissions}",
            f"total successful receptions: {self.total_receptions}",
        ]
        for name, stats in sorted(self._phases.items()):
            lines.append(
                f"  phase {name!r}: {stats.steps} steps, "
                f"{stats.transmissions} tx, {stats.receptions} rx"
            )
        return "\n".join(lines)


class CheapTrace(StepTrace):
    """A step trace that only counts steps (the cheap-trace mode).

    Benchmark and bulk-experiment workloads that never read per-phase
    transmission/reception statistics can hand a ``CheapTrace`` to
    :class:`~repro.radio.network.RadioNetwork` to skip the per-step
    accounting entirely; ``total_steps`` (and hence
    ``RadioNetwork.steps_elapsed``) stays exact, everything else reads
    as zero. Delivery results are unaffected — this trades observability
    for speed, never fidelity.
    """

    wants_detail = False

    def record_step(self, transmissions: int, receptions: int) -> None:
        """Count the step; drop the transmission/reception detail."""
        self.total_steps += 1

    def record_window(
        self, steps: int, transmissions: int, receptions: int
    ) -> None:
        """Count the window's steps; drop the detail."""
        self.total_steps += steps


@dataclasses.dataclass(frozen=True)
class Charge:
    """One itemized round charge in a :class:`CostLedger`."""

    rounds: int
    reason: str
    category: str


class CostLedger:
    """Round charges for the round-accounted fidelity level.

    The full ``Compete`` pipeline (Algorithm 2) is simulated at cluster
    -event granularity; each component's rounds are charged here using the
    formulas in :mod:`repro.core.costmodel`. The ledger distinguishes
    *setup* charges (MIS computation, clustering construction, schedule
    computation — the additive ``polylog n`` term of Theorems 6-8) from
    *propagation* charges (the ``D log_D alpha`` leading term), because the
    paper's claims are about the leading term's shape.
    """

    def __init__(self) -> None:
        self._charges: list[Charge] = []

    def charge(self, rounds: int, reason: str, category: str = "propagation") -> None:
        """Add ``rounds`` to the ledger under ``category``.

        ``category`` is ``"setup"`` or ``"propagation"``; anything else
        raises ``ValueError`` to catch typos in cost-model code.
        """
        if category not in ("setup", "propagation"):
            raise ValueError(f"unknown charge category: {category!r}")
        if rounds < 0:
            raise ValueError(f"negative round charge: {rounds}")
        self._charges.append(Charge(int(rounds), reason, category))

    @property
    def total(self) -> int:
        """Total charged rounds across both categories."""
        return sum(c.rounds for c in self._charges)

    def total_in(self, category: str) -> int:
        """Total charged rounds in one category."""
        return sum(c.rounds for c in self._charges if c.category == category)

    @property
    def setup_total(self) -> int:
        """Total setup rounds (the additive polylog term)."""
        return self.total_in("setup")

    @property
    def propagation_total(self) -> int:
        """Total propagation rounds (the ``D log_D alpha`` leading term)."""
        return self.total_in("propagation")

    def itemized(self) -> list[Charge]:
        """Copy of the charge list, in the order charges were made."""
        return list(self._charges)

    def by_reason(self) -> dict[str, int]:
        """Total rounds grouped by reason string."""
        grouped: dict[str, int] = defaultdict(int)
        for c in self._charges:
            grouped[c.reason] += c.rounds
        return dict(grouped)

    def summary(self) -> str:
        """Human-readable itemization (used by benchmark output)."""
        lines = [
            f"total charged rounds: {self.total} "
            f"(setup {self.setup_total}, propagation {self.propagation_total})"
        ]
        for reason, rounds in sorted(self.by_reason().items()):
            lines.append(f"  {reason}: {rounds}")
        return "\n".join(lines)
