"""Protocol abstraction and drivers for packet-level simulations.

Protocols are written SPMD-style: one Python object holds the per-node
state of *all* nodes in numpy arrays and advances every node by one radio
step at a time. This is a performance device only — a faithful protocol
derives each node's behavior exclusively from that node's own state and
what that node heard, never from the topology or other nodes' state. The
contract:

1. :meth:`Protocol.transmit_mask` returns who transmits this step, based
   on per-node state and per-node randomness;
2. the driver executes the step on the network;
3. :meth:`Protocol.observe` receives, for every node, the index of the
   unique neighbor it heard (or :data:`~repro.radio.network.NO_SENDER`)
   and updates per-node state. What the heard neighbor *said* is looked
   up in the protocol's own record of what it made each node transmit.

:class:`TimeMultiplexer` interleaves a main and a background protocol on
alternating steps, which is how the paper's algorithms run their
background processes ("conducted concurrently via time multiplexing",
Appendix A).

This module is the *step-wise* layer. Production protocol entry points
run on the unified windowed engine instead: they describe themselves as
schedules of oblivious windows and decision points (:mod:`repro.engine`)
and the :class:`~repro.engine.runner.WindowedRunner` executes them —
windows as single sparse products, decision points through
:meth:`~repro.radio.network.RadioNetwork.deliver`. The drivers here
(:func:`run_protocol`, :func:`run_steps`) remain the executable
specification the ``*_reference`` twins use, and
:func:`repro.engine.runner.protocol_schedule` adapts any
:class:`Protocol` object — including :class:`TimeMultiplexer` stacks —
onto the runner with bit-identical behavior.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from .errors import BudgetExceededError, ProtocolError
from .network import NO_SENDER, RadioNetwork


class Protocol(abc.ABC):
    """Base class for packet-level radio protocols.

    Subclasses hold vectorized per-node state and implement
    :meth:`transmit_mask` and :meth:`observe`. A protocol signals
    completion via :attr:`finished` and exposes its output via
    :meth:`result`.
    """

    def __init__(self, network: RadioNetwork) -> None:
        self.network = network
        self.n = network.n
        self._finished = False

    @property
    def finished(self) -> bool:
        """Whether the protocol has completed."""
        return self._finished

    @abc.abstractmethod
    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        """Return the boolean transmit mask for the next step."""

    @abc.abstractmethod
    def observe(self, hear_from: np.ndarray) -> None:
        """Update per-node state from the step's reception vector."""

    def result(self) -> Any:
        """Protocol output; only meaningful once :attr:`finished`."""
        raise ProtocolError(f"{type(self).__name__} does not define a result")


def run_protocol(
    protocol: Protocol,
    rng: np.random.Generator,
    max_steps: int | None = None,
) -> Any:
    """Drive ``protocol`` on its network until it finishes.

    Parameters
    ----------
    protocol:
        The protocol to run.
    rng:
        Randomness source shared by all nodes' coin flips. (Conceptually
        each node has a private source; a single generator drawing
        per-node vectors is statistically identical and much faster.)
    max_steps:
        Optional step budget. Randomized protocols only terminate with
        high probability; exceeding the budget raises
        :class:`~repro.radio.errors.BudgetExceededError` instead of
        looping forever.

    Returns
    -------
    Any
        ``protocol.result()``.
    """
    steps = 0
    while not protocol.finished:
        if max_steps is not None and steps >= max_steps:
            raise BudgetExceededError(
                f"{type(protocol).__name__} did not finish within "
                f"{max_steps} steps"
            )
        mask = protocol.transmit_mask(rng)
        hear_from = protocol.network.deliver(mask)
        protocol.observe(hear_from)
        steps += 1
    return protocol.result()


class SilentProtocol(Protocol):
    """A protocol in which every node listens forever.

    Useful as a placeholder background process and in tests of the
    multiplexer.
    """

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(self.n, dtype=bool)

    def observe(self, hear_from: np.ndarray) -> None:
        return None


class TimeMultiplexer(Protocol):
    """Interleave a main and a background protocol on alternating steps.

    Even-numbered multiplexer steps execute the main protocol, odd ones the
    background protocol; each inner protocol only observes its own steps,
    exactly as if the network ran at half speed for each. The multiplexer
    finishes when the main protocol does (background processes in the
    paper run "until the main process is complete").

    This doubles the step count of the main protocol, a constant factor
    the paper's O() bounds absorb.
    """

    def __init__(
        self,
        network: RadioNetwork,
        main: Protocol,
        background: Protocol,
    ) -> None:
        super().__init__(network)
        if main.network is not network or background.network is not network:
            raise ProtocolError(
                "multiplexed protocols must share the multiplexer's network"
            )
        self.main = main
        self.background = background
        self._parity = 0

    @property
    def finished(self) -> bool:
        return self.main.finished

    def transmit_mask(self, rng: np.random.Generator) -> np.ndarray:
        active = self.main if self._parity == 0 else self.background
        if active.finished:
            # A finished sub-protocol stays silent on its slots.
            return np.zeros(self.n, dtype=bool)
        return active.transmit_mask(rng)

    def observe(self, hear_from: np.ndarray) -> None:
        active = self.main if self._parity == 0 else self.background
        if not active.finished:
            active.observe(hear_from)
        self._parity ^= 1

    def result(self) -> Any:
        return self.main.result()


def run_steps(
    protocol: Protocol,
    rng: np.random.Generator,
    steps: int,
) -> None:
    """Advance ``protocol`` by exactly ``steps`` steps (or until finished).

    Unlike :func:`run_protocol` this never raises on budget exhaustion; it
    is the building block for protocols that run sub-protocols for a fixed
    number of steps (e.g. a Decay block inside Radio MIS).
    """
    for _ in range(steps):
        if protocol.finished:
            return
        mask = protocol.transmit_mask(rng)
        hear_from = protocol.network.deliver(mask)
        protocol.observe(hear_from)


__all__ = [
    "NO_SENDER",
    "Protocol",
    "SilentProtocol",
    "TimeMultiplexer",
    "run_protocol",
    "run_steps",
]
