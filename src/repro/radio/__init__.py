"""Radio network simulator substrate.

Implements the synchronous, collision-prone, no-collision-detection radio
network model of the paper (Section 1.1). See DESIGN.md Section 1.1.
"""

from .errors import (
    BudgetExceededError,
    GraphContractError,
    InvalidActionError,
    ProtocolError,
    RadioError,
)
from .messages import Message, highest
from .network import NO_SENDER, RadioNetwork, TransmitPlan, as_transmit_plan
from .protocol import (
    Protocol,
    SilentProtocol,
    TimeMultiplexer,
    run_protocol,
    run_steps,
)
from .trace import Charge, CheapTrace, CostLedger, PhaseStats, StepTrace

__all__ = [
    "BudgetExceededError",
    "Charge",
    "CheapTrace",
    "CostLedger",
    "GraphContractError",
    "InvalidActionError",
    "Message",
    "NO_SENDER",
    "PhaseStats",
    "Protocol",
    "ProtocolError",
    "RadioError",
    "RadioNetwork",
    "SilentProtocol",
    "StepTrace",
    "TimeMultiplexer",
    "TransmitPlan",
    "as_transmit_plan",
    "highest",
    "run_protocol",
    "run_steps",
]
