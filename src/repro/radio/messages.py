"""Message representation for radio network protocols.

The ``Compete`` procedure of Czumaj and Davies (and of the paper) relies on
messages having a consistent *lexicographic total order*: when two messages
meet, the higher one overrides the lower. The concrete order does not
matter for correctness so long as every node applies the same one; we use
a ``(priority, payload)`` tuple order, which covers both use cases in the
paper:

* broadcasting — a single source message, order irrelevant;
* leader election — candidate IDs as priorities, highest ID wins.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any


@functools.total_ordering
@dataclasses.dataclass(frozen=True)
class Message:
    """An immutable, totally ordered protocol message.

    Parameters
    ----------
    priority:
        Primary sort key. For leader election this is the candidate ID;
        for broadcast it may be anything consistent.
    payload:
        Application data carried by the message. Compared as a tiebreak
        via ``repr`` so that the order is total even for unorderable
        payloads.
    origin:
        Label of the node that created the message (for tracing).
    """

    priority: int
    payload: Any = None
    origin: Any = None

    def _key(self) -> tuple[int, str]:
        return (self.priority, repr(self.payload))

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self._key() < other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


def highest(messages: list[Message]) -> Message | None:
    """Return the lexicographically highest message, or ``None`` if empty.

    This is the override rule used throughout ``Compete``: whenever a node
    knows several messages, only the highest survives.
    """
    if not messages:
        return None
    return max(messages)
