"""Exception types for the radio network simulator.

All simulator-raised errors derive from :class:`RadioError` so callers can
catch everything this package raises with a single ``except`` clause.
"""

from __future__ import annotations


class RadioError(Exception):
    """Base class for all errors raised by :mod:`repro.radio`."""


class InvalidActionError(RadioError):
    """A protocol produced an action the model does not permit.

    Examples: a node transmitting ``None`` as a message, or an action
    vector whose length does not match the number of nodes.
    """


class ProtocolError(RadioError, ValueError):
    """A protocol implementation violated the :class:`Protocol` contract,
    or a caller configured one with values outside the contract.

    Raised, for instance, when a protocol reports completion but its
    :meth:`~repro.radio.protocol.Protocol.result` raises, when ``step``
    is called after the protocol already finished — and, uniformly
    across the API/CLI/harness surfaces, when an unknown ``engine=`` or
    ``delivery=`` string or a malformed ``chunk_steps``/``mem_budget``
    value is refused (the refusal names the accepted values). Also a
    :class:`ValueError`, so callers that predate the unified refusals
    keep catching what they caught.
    """


class GraphContractError(RadioError):
    """The input graph violates a documented precondition.

    The simulator requires a non-empty undirected :class:`networkx.Graph`
    with hashable node labels; algorithms that assume connectivity
    (broadcast, leader election) raise this on disconnected inputs.
    """


class BudgetExceededError(RadioError):
    """A protocol exceeded its configured round budget without finishing.

    Randomized radio protocols only succeed with high probability; a run
    that exhausts its budget is a legitimate (low-probability) outcome and
    is surfaced with this exception rather than a silent wrong answer.
    """
