"""The synchronous radio network simulator.

This is the substrate every packet-level algorithm in this package runs
on. It implements exactly the model of the paper (Section 1.1):

* time is divided into synchronous steps;
* in each step every node either **transmits** a message or **listens**;
* a listening node hears a message **iff exactly one of its neighbors
  transmits** in that step — otherwise (zero or several transmitting
  neighbors) it hears nothing;
* there is **no collision detection**: a listener cannot distinguish
  silence from a collision;
* a transmitting node hears nothing in that step (it is not listening).

The simulator is *ad-hoc faithful by convention*: it exposes global graph
knowledge (it must, to compute deliveries), but protocol implementations in
:mod:`repro.core` only consult per-node state plus what each node heard,
never the topology. Tests in ``tests/test_adhoc_discipline.py`` enforce
this for the core protocols.

Performance: delivery is computed with one sparse matrix-vector product
per step (scipy CSR), so packet-level runs of hundreds of thousands of
steps on graphs with thousands of nodes are practical.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

import networkx as nx
import numpy as np
import scipy.sparse as sp

from .errors import GraphContractError, InvalidActionError
from .trace import StepTrace

#: Sentinel in ``hear_from`` arrays meaning "heard nothing this step".
NO_SENDER = -1


class RadioNetwork:
    """A radio network over an undirected :class:`networkx.Graph`.

    Parameters
    ----------
    graph:
        The communication topology. Must be a non-empty undirected graph.
        Self-loops are rejected (a node interfering with itself has no
        sensible semantics in the model). Connectivity is *not* required
        here — MIS is defined on disconnected graphs — but the broadcast
        and leader election entry points check it themselves.
    trace:
        Optional :class:`StepTrace` to record activity into. A fresh one
        is created if omitted; it is available as :attr:`trace`.

    Notes
    -----
    Nodes are internally indexed ``0..n-1`` in the iteration order of
    ``graph.nodes``. :meth:`index_of` / :meth:`label_of` convert between
    user labels and internal indices; vectorized protocols work with
    indices throughout.
    """

    def __init__(self, graph: nx.Graph, trace: StepTrace | None = None) -> None:
        if graph.number_of_nodes() == 0:
            raise GraphContractError("radio network requires a non-empty graph")
        if graph.is_directed():
            raise GraphContractError(
                "the paper's model (and this simulator) is undirected; "
                "got a directed graph"
            )
        if any(u == v for u, v in graph.edges):
            raise GraphContractError("self-loops are not allowed")

        self.graph = graph
        self.n = graph.number_of_nodes()
        self._labels: list[Hashable] = list(graph.nodes)
        self._index: dict[Hashable, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        adj = nx.to_scipy_sparse_array(graph, nodelist=self._labels, format="csr")
        # Binary adjacency as float64 so matvecs count transmitters.
        self._adj: sp.csr_array = (adj != 0).astype(np.float64)
        self._ids = np.arange(self.n, dtype=np.float64)
        self.degrees = np.asarray(self._adj.sum(axis=1)).ravel().astype(np.int64)
        self.trace = trace if trace is not None else StepTrace()
        self.steps_elapsed = 0

    # ------------------------------------------------------------------
    # label <-> index conversion
    # ------------------------------------------------------------------
    def index_of(self, label: Hashable) -> int:
        """Internal index of the node with this label."""
        return self._index[label]

    def label_of(self, index: int) -> Hashable:
        """User-facing label of the node with this internal index."""
        return self._labels[index]

    def labels(self) -> list[Hashable]:
        """All node labels in internal index order."""
        return list(self._labels)

    def indices_of(self, labels: Iterable[Hashable]) -> np.ndarray:
        """Vectorized :meth:`index_of`."""
        return np.array([self._index[label] for label in labels], dtype=np.int64)

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices of the neighbors of node ``index``."""
        start, end = self._adj.indptr[index], self._adj.indptr[index + 1]
        return self._adj.indices[start:end].astype(np.int64)

    # ------------------------------------------------------------------
    # the radio step
    # ------------------------------------------------------------------
    def deliver(self, transmit: np.ndarray) -> np.ndarray:
        """Execute one radio step given a boolean transmit mask.

        Parameters
        ----------
        transmit:
            Boolean array of length ``n``; ``True`` where the node
            transmits this step, ``False`` where it listens.

        Returns
        -------
        numpy.ndarray
            Integer array ``hear_from`` of length ``n``. For each node
            ``v``, ``hear_from[v]`` is the index of the unique transmitting
            neighbor ``v`` heard, or :data:`NO_SENDER` if ``v`` transmitted
            itself, had no transmitting neighbor, or suffered a collision
            (two or more transmitting neighbors).
        """
        transmit = np.asarray(transmit)
        if transmit.shape != (self.n,):
            raise InvalidActionError(
                f"transmit mask has shape {transmit.shape}, expected ({self.n},)"
            )
        if transmit.dtype != np.bool_:
            raise InvalidActionError(
                f"transmit mask must be boolean, got dtype {transmit.dtype}"
            )

        tvec = transmit.astype(np.float64)
        counts = self._adj @ tvec
        # For listeners with exactly one transmitting neighbor, the sum of
        # transmitting neighbor indices *is* that neighbor's index.
        idsums = self._adj @ (tvec * self._ids)

        hear_from = np.full(self.n, NO_SENDER, dtype=np.int64)
        heard = (~transmit) & (counts == 1.0)
        hear_from[heard] = np.rint(idsums[heard]).astype(np.int64)

        self.steps_elapsed += 1
        self.trace.record_step(
            transmissions=int(transmit.sum()), receptions=int(heard.sum())
        )
        return hear_from

    def deliver_detect(
        self, transmit: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One radio step in the *with collision detection* model variant.

        The paper's model is explicitly without collision detection
        (Section 1.1); this entry point exists for the baselines from the
        literature that *require* CD (Schneider–Wattenhofer [29],
        Dessmark–Pelc [12]) so the E13 experiment can measure what CD
        buys. Algorithms in :mod:`repro.core` never call it.

        Returns
        -------
        (hear_from, busy):
            ``hear_from`` as in :meth:`deliver`; ``busy`` is a boolean
            array marking listeners that sensed energy — at least one
            transmitting neighbor, whether or not the transmission was
            clean. A CD-capable listener distinguishes silence
            (``busy`` false), clean reception (``hear_from != NO_SENDER``)
            and collision (``busy`` true, nothing heard).
        """
        transmit = np.asarray(transmit)
        if transmit.shape != (self.n,):
            raise InvalidActionError(
                f"transmit mask has shape {transmit.shape}, expected ({self.n},)"
            )
        if transmit.dtype != np.bool_:
            raise InvalidActionError(
                f"transmit mask must be boolean, got dtype {transmit.dtype}"
            )
        counts = self._adj @ transmit.astype(np.float64)
        busy = (~transmit) & (counts >= 1.0)
        hear_from = self.deliver(transmit)
        return hear_from, busy

    def step(self, actions: Mapping[Hashable, Any]) -> dict[Hashable, Any]:
        """Label-based convenience wrapper around :meth:`deliver`.

        Parameters
        ----------
        actions:
            Mapping from node label to the message it transmits this step.
            Nodes absent from the mapping listen. Message values may be
            anything except ``None`` (``None`` would be indistinguishable
            from "heard nothing" in the return value).

        Returns
        -------
        dict
            Mapping from listener label to the message it heard; nodes
            that heard nothing are absent.
        """
        transmit = np.zeros(self.n, dtype=bool)
        messages: list[Any] = [None] * self.n
        for label, message in actions.items():
            if message is None:
                raise InvalidActionError(
                    f"node {label!r} tried to transmit None; use any other "
                    "sentinel for contentless transmissions"
                )
            i = self._index[label]
            transmit[i] = True
            messages[i] = message

        hear_from = self.deliver(transmit)
        received: dict[Hashable, Any] = {}
        for i in np.nonzero(hear_from != NO_SENDER)[0]:
            received[self._labels[i]] = messages[hear_from[i]]
        return received

    # ------------------------------------------------------------------
    # convenience graph facts (used by generators/tests, not protocols)
    # ------------------------------------------------------------------
    def neighbor_sum(self, values: np.ndarray) -> np.ndarray:
        """For each node, the sum of ``values`` over its neighbors.

        Global knowledge: this is *not* available to protocol logic in the
        ad-hoc model. It exists for instrumentation (golden-round
        tracking), oracle fidelity knobs that are explicitly documented as
        such (``oracle_degree`` in Radio MIS), and tests.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise InvalidActionError(
                f"values has shape {values.shape}, expected ({self.n},)"
            )
        return self._adj @ values

    def is_connected(self) -> bool:
        """Whether the underlying graph is connected."""
        return nx.is_connected(self.graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadioNetwork(n={self.n}, m={self.graph.number_of_edges()}, "
            f"steps={self.steps_elapsed})"
        )
