"""The synchronous radio network simulator.

This is the substrate every packet-level algorithm in this package runs
on. It implements exactly the model of the paper (Section 1.1):

* time is divided into synchronous steps;
* in each step every node either **transmits** a message or **listens**;
* a listening node hears a message **iff exactly one of its neighbors
  transmits** in that step — otherwise (zero or several transmitting
  neighbors) it hears nothing;
* there is **no collision detection**: a listener cannot distinguish
  silence from a collision;
* a transmitting node hears nothing in that step (it is not listening).

The simulator is *ad-hoc faithful by convention*: it exposes global graph
knowledge (it must, to compute deliveries), but protocol implementations in
:mod:`repro.core` only consult per-node state plus what each node heard,
never the topology. Tests in ``tests/test_adhoc_discipline.py`` enforce
this for the core protocols.

Performance: the delivery engine is fully vectorized over an
int32-indexed CSR adjacency with preallocated step buffers. A single
step is **one** fused sparse product — the transmit indicator and the
id-weighted indicator are stacked into an ``(n, 2)`` right-hand side so
one pass over the adjacency yields both the per-listener transmitter
counts and the unique-sender identities. Oblivious step sequences
(masks that do not depend on intermediate receptions — Decay sweeps,
round-robin rotations, the Compete background process) go through
:meth:`RadioNetwork.deliver_window`, which executes a whole window of
steps as one matrix-matrix product — density-adaptive between a sparse
product (sparse masks) and an exact packed dense matmul (rows where a
large fraction of nodes transmit, the regime where the sparse output
stops being sparse); packet-level runs of hundreds of thousands of
steps on graphs with thousands of nodes are practical. For windows too
wide to materialize (``n >= 10^5`` scaling runs),
:meth:`RadioNetwork.deliver_window_chunks` streams the same product as
bounded ``(chunk_steps, n)`` slabs from a lazy :class:`TransmitPlan` —
bit-identical, with peak memory a tunable instead of a function of
``w * n``. Pass a :class:`~repro.radio.trace.CheapTrace` to skip
per-step trace accounting (cheap-trace mode) in bulk workloads.

Protocols do not call these delivery entry points directly anymore:
they emit :mod:`repro.engine` schedules (oblivious windows + decision
points) and the :class:`~repro.engine.runner.WindowedRunner` routes
each segment to :meth:`RadioNetwork.deliver_window` or
:meth:`RadioNetwork.deliver` here. Both entry points are bit-identical
per step, which is what makes the engine's windowed execution exactly
equivalent to the step-wise reference loops.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping

import networkx as nx
import numpy as np
import scipy.sparse as sp

from ..graphs.context import graph_context
from .errors import GraphContractError, InvalidActionError, ProtocolError
from .trace import StepTrace

#: Sentinel in ``hear_from`` arrays meaning "heard nothing this step".
NO_SENDER = -1

#: The window execution strategies :meth:`RadioNetwork.deliver_window`
#: accepts — the single source of truth the runner and the CLI import.
DELIVERY_MODES = ("auto", "sparse", "dense")

#: Rows whose transmit-mask popcount density (``popcount / n``) reaches
#: this fraction route through the dense matmul under ``mode="auto"``.
#: Rationale: the sparse product pays COO materialization and index
#: juggling per output entry, and its output stops being sparse as soon
#: as a few percent of nodes transmit on a non-trivial graph — the
#: measured crossover against the packed one-real-matmul dense path
#: sits near density 0.03-0.05 across UDG densities at ``n = 2000``
#: (calibrated in ``bench_p3_engine``; EstimateEffectiveDegree's
#: ``p ~ 0.5`` levels are the canonical dense-regime rows). Both paths
#: are exact small-integer sums, so the threshold is a performance
#: knob, never a semantics knob.
DENSE_ROW_DENSITY = 0.05

#: Estimated bytes per COO output entry of the sparse window product
#: (complex128 value plus the coordinate arrays scipy materializes).
#: Used by the auto router's pre-emptive output-size estimate.
SPARSE_COO_ENTRY_BYTES = 32

#: Bytes per dense (listener, step) cell of the packed dense kernel at
#: peak (float64 right-hand side, output, and unpacked counts).
DENSE_WINDOW_CELL_BYTES = 24

#: The auto router pre-empts the sparse product only when its
#: estimated COO output would outweigh the packed dense cells by this
#: factor. Memory parity alone (factor 1) is the wrong flip point:
#: the sparse product's *time* scales with the transmitters' degree
#: sum while the dense kernel's scales with the full adjacency, so in
#: the band just past parity sparse is still several times faster at
#: comparable memory. At 8x the projected COO output is a genuine
#: blow-up — the regime the streaming cost model cannot absorb (p ~
#: 0.5 G(n, p): few transmitters, ~n/2 neighbors each) — and the
#: measured time gap has closed (calibrated against the
#: ``bench_p3_engine`` dense-block floor on mid-density graphs and
#: the ``tests/test_dense_routing.py`` budget regression on dense
#: ones). Routing is exact either way; this trades only speed for
#: bounded memory.
SPARSE_PREEMPT_FACTOR = 8.0

#: Windows at most this wide skip the scipy sparse product and execute
#: on the index-gather kernel (:meth:`RadioNetwork._deliver_window_gather`):
#: for narrow windows — the width-1/width-2 joint windows the
#: multiplexed ICP path emits by the thousand — the sparse product's
#: cost is pure constructor overhead (csr/coo allocation and index-type
#: checks dwarf the actual flops), while the gather kernel is a handful
#: of numpy calls proportional to the transmitters' degree sum. Exact
#: integer sums either way; a routing knob, never a semantics knob.
GATHER_WINDOW_WIDTH = 32


@dataclasses.dataclass
class PipelineForm:
    """Separable threshold form of a plan's masks (fused pipeline).

    Declares that the plan's mask math factors as
    ``mask[t, v] = coins[t, v] < row_probs[t] * col_probs(base)[v]``
    over each section (``base`` is the section's first plan row) —
    which is exactly what lets one fused pass draw the coin and decide
    the bit in the same loop, without the emitter's intermediate
    arrays. The product must reproduce the emitter's vectorized mask
    arithmetic **bit-for-bit**; the two emitter families that opt in
    satisfy that exactly:

    * Decay: ``(coins < p_t) & active`` ⟺ ``coins < p_t * float(active)``
      (the factor is 0.0 or 1.0 — multiplying by it is exact, and
      ``coin < 0.0`` is False for every coin);
    * EED: ``coins < p_v / 2^i`` ⟺ ``coins < p_v * 2^-i`` (a power-of-two
      scale changes only the exponent, exact away from subnormals).

    ``coins`` is the plan's own :class:`~repro.engine.pcg.CoinField` —
    shared with ``masks``/``masks_at``, so whichever producer the
    runner picks consumes the one rng stream identically.
    ``col_probs`` is called once per section start and must return a
    length-``n`` float64 vector.
    """

    coins: Any
    row_probs: np.ndarray
    col_probs: Callable[[int], np.ndarray]


@dataclasses.dataclass
class TransmitPlan:
    """A lazily produced window of oblivious transmit masks.

    ``masks(start, stop)`` returns the boolean ``(stop - start, n)``
    mask rows for window steps ``start .. stop - 1``. The streaming
    executor (:meth:`RadioNetwork.deliver_window_chunks`) calls it for
    consecutive, non-overlapping intervals covering ``[0, total_steps)``
    in order, exactly once each — so a producer may draw its coins
    lazily inside ``masks`` and still consume the rng stream in the
    same order (and the same total amount) as one monolithic
    row-major draw, whatever chunk size the executor picks. The chunk
    size is therefore a memory knob, never a semantics knob.

    Two optional fields opt a plan into **active-set-restricted
    delivery** (:mod:`repro.engine.residual`):

    * ``support`` — a global length-``n`` bool mask covering every node
      that could transmit at *any* step of the plan (e.g. a protocol's
      live set when the plan was emitted). The runner may then execute
      the plan on the residual graph induced by ``support`` and its
      neighborhood instead of all of ``n``.
    * ``masks_at(start, stop, cols)`` — the ``cols`` columns of
      ``masks(start, stop)``, produced while consuming the plan's coin
      stream exactly as the full call would (see
      :class:`~repro.engine.pcg.CoinField`). The same
      consecutive-intervals contract applies; per plan the runner
      commits to one of the two producers and never mixes them within
      an interval.

    Plans without these fields (or runners with restriction off)
    execute exactly as before — both are pure opt-in accelerators,
    bit-identical by construction and pinned by the residual test
    suite.
    """

    total_steps: int
    masks: Callable[[int, int], np.ndarray]
    support: np.ndarray | None = None
    masks_at: Callable[[int, int, np.ndarray], np.ndarray] | None = None
    #: Optional separable form for the fused pipeline pass (ISSUE 9):
    #: a :class:`PipelineForm` proving the masks factor into per-row ×
    #: per-column thresholds over the plan's coin field. Pure opt-in
    #: accelerator like ``support``/``masks_at`` — plans without it
    #: (or runs with the pipeline disabled) execute exactly as before.
    pipeline: PipelineForm | None = None


def as_transmit_plan(plan: TransmitPlan | np.ndarray) -> TransmitPlan:
    """Coerce a materialized ``(w, n)`` mask matrix to a :class:`TransmitPlan`.

    A :class:`TransmitPlan` passes through unchanged; an array becomes a
    plan that slices it (no copy).
    """
    if isinstance(plan, TransmitPlan):
        return plan
    masks = np.asarray(plan)
    return TransmitPlan(masks.shape[0], lambda start, stop: masks[start:stop])


class RadioNetwork:
    """A radio network over an undirected :class:`networkx.Graph`.

    Parameters
    ----------
    graph:
        The communication topology. Must be a non-empty undirected graph.
        Self-loops are rejected (a node interfering with itself has no
        sensible semantics in the model). Connectivity is *not* required
        here — MIS is defined on disconnected graphs — but the broadcast
        and leader election entry points check it themselves.
    trace:
        Optional :class:`StepTrace` to record activity into. A fresh one
        is created if omitted; it is available as :attr:`trace`.

    Notes
    -----
    Nodes are internally indexed ``0..n-1`` in the iteration order of
    ``graph.nodes``. :meth:`index_of` / :meth:`label_of` convert between
    user labels and internal indices; vectorized protocols work with
    indices throughout.
    """

    def __init__(
        self,
        graph: nx.Graph,
        trace: StepTrace | None = None,
        *,
        faults=None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise GraphContractError("radio network requires a non-empty graph")
        if graph.is_directed():
            raise GraphContractError(
                "the paper's model (and this simulator) is undirected; "
                "got a directed graph"
            )

        self.graph = graph
        self.n = graph.number_of_nodes()
        # The binary float64 / int32-indexed CSR adjacency comes from the
        # per-graph GraphContext cache: repeated RadioNetwork
        # constructions over one graph (Monte-Carlo trials) share one
        # adjacency build instead of repeating it.
        self._context = graph_context(graph)
        if self._context.csr.diagonal().any():
            raise GraphContractError("self-loops are not allowed")
        self._labels: list[Hashable] = list(self._context.nodelist)
        self._index: dict[Hashable, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        self._adj: sp.csr_array = self._context.csr
        self._ids = np.arange(self.n, dtype=np.float64)
        # 1-based ids so id-sums of transmitting neighbors never vanish:
        # for a clean reception, sender = round(idsum1) - count = idsum1 - 1.
        self._ids1 = self._ids + 1.0
        # Preallocated (n, 2) right-hand side for the fused per-step
        # product: column 0 the transmit indicator, column 1 id-weighted.
        self._rhs2 = np.empty((self.n, 2), dtype=np.float64)
        self._adj_complex: sp.csr_array | None = None
        self.degrees = self._context.degrees.copy()
        # Degree extremes, cached for the auto router's output-size
        # bounds (dense_window_rows) and the dense packing check.
        max_degree = int(self.degrees.max()) if self.n else 0
        self._max_degree = max_degree
        self._min_degree = int(self.degrees.min()) if self.n else 0
        self._dense_pack_ok = (
            max_degree * (1.0 + self.n * (self.n + 1.0)) < 2.0**53
        )
        self.trace = trace if trace is not None else StepTrace()
        self.steps_elapsed = 0
        # Delivery provenance: per-kernel executed-row counters and
        # residual-restriction statistics, filled by the window router
        # and the restricted runner, surfaced through RunReport.
        self.kernel_use: dict[str, int] = {}
        self.residual_stats: dict[str, int] = {
            "rebuilds": 0,
            "restricted_steps": 0,
            "full_steps": 0,
        }
        # Per-phase wall-clock buckets (seconds), filled by the
        # windowed runner: planning/emitter time, coin generation,
        # fault transforms, delivery kernels, and reception folds.
        # Surfaced as RunReport.provenance["timing"]; reset per run()
        # alongside the counters above.
        self.phase_timing: dict[str, float] = {
            "plan": 0.0,
            "coins": 0.0,
            "faults": 0.0,
            "deliver": 0.0,
            "commit": 0.0,
        }
        # Lazy DeliveryKernels view over this network's own CSR, for
        # the compiled delivery modes (repro.engine.kernels).
        self._kernels = None
        # Fault layer (repro.faults): None until a non-empty schedule is
        # installed — the disabled path is a single attribute check per
        # delivery, which is what keeps it bit-identical and overhead-free.
        self.faults = None
        self._fault_state = None
        self._fault_step: tuple[np.ndarray, np.ndarray] | None = None
        self._fault_window: tuple[np.ndarray, np.ndarray] | None = None
        if faults is not None:
            self.install_faults(faults)

    # ------------------------------------------------------------------
    # fault & churn injection (repro.faults)
    # ------------------------------------------------------------------
    def install_faults(self, schedule) -> None:
        """Install a :class:`~repro.faults.FaultSchedule` on this network.

        The schedule's transmit-/hear-mask transforms are applied between
        plan and commit inside every delivery entry point
        (:meth:`deliver`, :meth:`deliver_detect`, :meth:`deliver_window`,
        :meth:`deliver_window_chunks`), keyed on the global
        :attr:`steps_elapsed` clock — so the windowed, streamed, fused,
        validating, and step-wise reference execution paths all realize
        exactly the same fault pattern.

        Installing an **empty** schedule is a no-op (runs stay
        bit-identical to a network without one). Installation is
        idempotent for an equal schedule; installing a *different*
        schedule on a network that already has one is refused — build a
        fresh network per fault environment.
        """
        if schedule is None:
            return
        from ..faults import FaultSchedule, FaultState

        if not isinstance(schedule, FaultSchedule):
            raise ProtocolError(
                f"install_faults needs a FaultSchedule (build one with "
                f"FaultSchedule(...) or FaultSchedule.sample(...)), got "
                f"{schedule!r}"
            )
        if self.faults is not None:
            if schedule == self.faults:
                return
            raise ProtocolError(
                "a different FaultSchedule is already installed on this "
                "network; build a fresh RadioNetwork per fault schedule"
            )
        self.faults = schedule
        if not schedule.is_empty:
            self._fault_state = FaultState(schedule, self.n)

    def _execute_committed_window(
        self, masks: np.ndarray, hear_from: np.ndarray, mode: str
    ) -> tuple[np.ndarray, int]:
        """Fault transform + kernel execution + hear transform for one
        committed block; returns ``(effective_masks, receptions)``.

        The shared commit path of :meth:`deliver_window` and each
        :meth:`deliver_window_chunks` chunk: intended masks become
        effective masks at the current global step, the routed kernels
        run on the effective masks, and receptions landing on deaf
        listeners are forced to silence. Without an active fault state
        this is exactly :meth:`_execute_window_rows`.
        """
        fault_state = self._fault_state
        if fault_state is None:
            return masks, self._execute_window_rows(masks, hear_from, mode)
        effective, deaf = fault_state.transform_window(
            masks, self.steps_elapsed
        )
        receptions = self._execute_window_rows(effective, hear_from, mode)
        silenced = deaf & (hear_from != NO_SENDER)
        n_silenced = int(np.count_nonzero(silenced))
        if n_silenced:
            hear_from[silenced] = NO_SENDER
            receptions -= n_silenced
            fault_state.note_silenced(n_silenced)
        self._fault_window = (effective, deaf)
        return effective, receptions

    # ------------------------------------------------------------------
    # label <-> index conversion
    # ------------------------------------------------------------------
    def index_of(self, label: Hashable) -> int:
        """Internal index of the node with this label."""
        return self._index[label]

    def label_of(self, index: int) -> Hashable:
        """User-facing label of the node with this internal index."""
        return self._labels[index]

    def labels(self) -> list[Hashable]:
        """All node labels in internal index order."""
        return list(self._labels)

    def indices_of(self, labels: Iterable[Hashable]) -> np.ndarray:
        """Vectorized :meth:`index_of`."""
        return np.array([self._index[label] for label in labels], dtype=np.int64)

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices of the neighbors of node ``index``."""
        start, end = self._adj.indptr[index], self._adj.indptr[index + 1]
        return self._adj.indices[start:end].astype(np.int64)

    # ------------------------------------------------------------------
    # the radio step
    # ------------------------------------------------------------------
    def _validate_mask(self, transmit: np.ndarray) -> np.ndarray:
        """Shared transmit-mask validation for all delivery entry points."""
        transmit = np.asarray(transmit)
        if transmit.shape != (self.n,):
            raise InvalidActionError(
                f"transmit mask has shape {transmit.shape}, expected ({self.n},)"
            )
        if transmit.dtype != np.bool_:
            raise InvalidActionError(
                f"transmit mask must be boolean, got dtype {transmit.dtype}"
            )
        return transmit

    def _deliver_core(
        self, transmit: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One fused delivery: ``(hear_from, counts, heard)``.

        The two classic matvecs (transmitter counts and id-sums) are
        stacked into one ``(n, 2)`` right-hand side so the adjacency is
        traversed once. Column 1 uses 1-based ids, hence for a listener
        with a unique transmitting neighbor ``idsum1 = sender + 1``.
        Records the step into the trace and advances ``steps_elapsed``.
        With an installed fault schedule the intended mask is first
        transformed to the effective one (dead/sleeping/suppressed
        transmitters cleared) and receptions on deaf listeners are
        silenced — the step-wise realization of exactly the transforms
        the window paths apply in bulk.
        """
        fault_state = self._fault_state
        deaf = None
        if fault_state is not None:
            transmit, deaf = fault_state.transform_step(
                transmit, self.steps_elapsed
            )
        rhs = self._rhs2
        np.copyto(rhs[:, 0], transmit)
        np.multiply(rhs[:, 0], self._ids1, out=rhs[:, 1])
        out = self._adj @ rhs
        counts = out[:, 0]

        hear_from = np.full(self.n, NO_SENDER, dtype=np.int64)
        heard = (~transmit) & (counts == 1.0)
        hear_from[heard] = np.rint(out[heard, 1]).astype(np.int64) - 1
        if deaf is not None:
            silenced = heard & deaf
            n_silenced = int(np.count_nonzero(silenced))
            if n_silenced:
                hear_from[silenced] = NO_SENDER
                heard = heard & ~deaf
                fault_state.note_silenced(n_silenced)
            self._fault_step = (transmit, deaf)

        self.steps_elapsed += 1
        if self.trace.wants_detail:
            self.trace.record_step(
                transmissions=int(transmit.sum()), receptions=int(heard.sum())
            )
        else:
            self.trace.record_step(transmissions=0, receptions=0)
        return hear_from, counts, heard

    def deliver(self, transmit: np.ndarray) -> np.ndarray:
        """Execute one radio step given a boolean transmit mask.

        Parameters
        ----------
        transmit:
            Boolean array of length ``n``; ``True`` where the node
            transmits this step, ``False`` where it listens.

        Returns
        -------
        numpy.ndarray
            Integer array ``hear_from`` of length ``n``. For each node
            ``v``, ``hear_from[v]`` is the index of the unique transmitting
            neighbor ``v`` heard, or :data:`NO_SENDER` if ``v`` transmitted
            itself, had no transmitting neighbor, or suffered a collision
            (two or more transmitting neighbors).
        """
        transmit = self._validate_mask(transmit)
        hear_from, _, _ = self._deliver_core(transmit)
        return hear_from

    def deliver_detect(
        self, transmit: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One radio step in the *with collision detection* model variant.

        The paper's model is explicitly without collision detection
        (Section 1.1); this entry point exists for the baselines from the
        literature that *require* CD (Schneider–Wattenhofer [29],
        Dessmark–Pelc [12]) so the E13 experiment can measure what CD
        buys. Algorithms in :mod:`repro.core` never call it.

        Validation and the fused delivery product are shared with
        :meth:`deliver` — the carrier-sense vector ``busy`` is derived
        from the same transmitter counts, so CD costs no extra matvec.

        Returns
        -------
        (hear_from, busy):
            ``hear_from`` as in :meth:`deliver`; ``busy`` is a boolean
            array marking listeners that sensed energy — at least one
            transmitting neighbor, whether or not the transmission was
            clean. A CD-capable listener distinguishes silence
            (``busy`` false), clean reception (``hear_from != NO_SENDER``)
            and collision (``busy`` true, nothing heard).
        """
        transmit = self._validate_mask(transmit)
        hear_from, counts, _ = self._deliver_core(transmit)
        if self._fault_state is not None:
            # Carrier sense follows the same fault semantics as
            # reception: suppressed (but awake) transmitters sense the
            # channel like any listener, while down or jammed nodes
            # sense nothing.
            effective, deaf = self._fault_step
            busy = (~effective) & (counts >= 1.0) & ~deaf
        else:
            busy = (~transmit) & (counts >= 1.0)
        return hear_from, busy

    # ------------------------------------------------------------------
    # the batched radio window
    # ------------------------------------------------------------------
    def _complex_adj(self) -> sp.csr_array:
        """Complex-typed adjacency for the fused window product (lazy)."""
        if self._adj_complex is None:
            self._adj_complex = self._adj.astype(np.complex128)
        return self._adj_complex

    def dense_window_rows(self, masks: np.ndarray) -> np.ndarray:
        """Rows of a window the ``auto`` router sends to the dense path.

        A boolean vector over window rows, combining two criteria:

        * **popcount density** — rows whose transmit popcount density
          reaches :data:`DENSE_ROW_DENSITY` (most (listener, step)
          pairs hear energy, so the sparse output stops being sparse);
        * **output-size pre-emption** — when the remaining
          popcount-sparse rows' transmitters have a degree sum whose
          estimated COO output (:data:`SPARSE_COO_ENTRY_BYTES` per
          entry — the sparse product's output scales with the
          transmitters' degree sum, not with ``w * n``) would outweigh
          the dense kernel's :data:`DENSE_WINDOW_CELL_BYTES` packed
          cells by :data:`SPARSE_PREEMPT_FACTOR`, the whole chunk
          routes dense. This is what keeps a streamed chunk inside
          the :data:`~repro.engine.streaming.STREAM_CELL_BYTES` cost
          model on very dense graphs (few transmitters, huge degrees
          — the regime where popcount alone under-routes and the COO
          output would blow a ``mem_budget``); the factor keeps
          mid-density graphs, where sparse is still faster at
          comparable memory, on the sparse path.

        Pure arithmetic on popcounts and cached degrees — no graph
        traversal — so routing costs O(w n) on top of the product it
        routes. Both paths are exact small-integer sums, so routing is
        a performance/memory knob, never a semantics knob (the
        contract suite re-verifies every window). Exposed for
        introspection (benchmarks, the contract suite, tests).
        """
        masks = self._validate_window_masks(np.asarray(masks))
        row_counts = np.count_nonzero(masks, axis=1)
        dense = self._dense_row_mask(row_counts)
        sparse = ~dense
        n_sparse = int(sparse.sum())
        if n_sparse:
            # Output-size pre-emption, cheapest-first: the popcounts
            # already in hand bracket the transmitters' degree sum
            # between popcount * min_degree and popcount * max_degree,
            # so the exact per-transmitter gather (a nonzero scan —
            # milliseconds per big chunk) only runs in the ambiguous
            # band between the two bounds. Sparse graphs short-circuit
            # on the upper bound; very dense graphs flip on the lower
            # bound; either way the hot path stays O(w n) bit-counting.
            sparse_tx = int(row_counts[sparse].sum())
            flip_entries = (
                SPARSE_PREEMPT_FACTOR
                * n_sparse
                * self.n
                * (DENSE_WINDOW_CELL_BYTES / SPARSE_COO_ENTRY_BYTES)
            )
            if sparse_tx * self._max_degree >= flip_entries:
                if sparse_tx * self._min_degree >= flip_entries:
                    degree_sum = float(flip_entries)  # certainly heavy
                else:
                    sub = (
                        masks
                        if n_sparse == masks.shape[0]
                        else masks[sparse]
                    )
                    degree_sum = float(
                        self.degrees[np.nonzero(sub)[1]].sum()
                    )
                if degree_sum >= flip_entries:
                    dense = np.ones(masks.shape[0], dtype=bool)
        return dense

    def _dense_row_mask(self, row_counts: np.ndarray) -> np.ndarray:
        """The dense-route predicate over per-row transmit popcounts —
        the single definition both :meth:`dense_window_rows` and the
        auto router apply."""
        return row_counts >= DENSE_ROW_DENSITY * max(1, self.n)

    def _deliver_window_gather(
        self, masks: np.ndarray, hear_from: np.ndarray
    ) -> int:
        """Index-gather window execution; returns the reception count.

        For narrow windows the sparse product is all constructor
        overhead, so this kernel computes the same two sums directly:
        every transmitter's CSR neighbor list is gathered (one ragged
        vectorized slice), and per-(step, listener) transmitter counts
        and 1-based id sums come from two ``bincount`` passes over the
        flattened (step, neighbor) keys. Counts are integer bincounts
        and id sums are float64 bincounts of exact small integers, so
        results are bit-identical to every other delivery path.
        """
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        indptr, indices = self._adj.indptr, self._adj.indices
        starts = indptr[tx_node].astype(np.int64)
        lens = indptr[tx_node + 1].astype(np.int64) - starts
        total = int(lens.sum())
        if total == 0:
            return 0
        offsets = np.repeat(np.cumsum(lens) - lens - starts, lens)
        neighbors = indices[np.arange(total, dtype=np.int64) - offsets]
        flat = np.repeat(tx_step, lens) * self.n + neighbors
        counts = np.bincount(flat, minlength=w * self.n).reshape(
            w, self.n
        )
        idsum1 = np.bincount(
            flat,
            weights=np.repeat(self._ids1[tx_node], lens),
            minlength=w * self.n,
        ).reshape(w, self.n)
        clean = (counts == 1) & ~masks
        hear_from[clean] = np.rint(idsum1[clean]).astype(np.int64) - 1
        return int(clean.sum())

    def _deliver_window_sparse(
        self, masks: np.ndarray, hear_from: np.ndarray
    ) -> int:
        """Sparse-strategy window execution; returns the reception count.

        Narrow windows (at most :data:`GATHER_WINDOW_WIDTH` rows) route
        to :meth:`_deliver_window_gather`, the constructor-free kernel
        computing the same exact sums; wider windows run the sparse
        matrix product (:meth:`_deliver_window_spmm`).
        """
        if masks.shape[0] <= GATHER_WINDOW_WIDTH:
            return self._deliver_window_gather(masks, hear_from)
        return self._deliver_window_spmm(masks, hear_from)

    def _deliver_window_spmm(
        self, masks: np.ndarray, hear_from: np.ndarray
    ) -> int:
        """Sparse-product window execution; returns the reception count.

        The window's transmit indicators form a sparse ``(n, w)`` matrix
        whose entries carry ``1 + i (id + 1)`` — one complex product
        against the adjacency then yields transmitter counts (real part)
        and 1-based id sums (imaginary part) for every (listener, step)
        pair at once.
        """
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        if not tx_node.size:
            return 0
        data = np.empty(tx_node.size, dtype=np.complex128)
        data.real = 1.0
        data.imag = self._ids1[tx_node]
        rhs = sp.csr_array((data, (tx_node, tx_step)), shape=(self.n, w))
        out = (self._complex_adj() @ rhs).tocoo()
        node, step = out.coords
        counts = out.data.real
        # Clean reception: exactly one transmitting neighbor, and the
        # node itself was listening at that step.
        clean = (counts == 1.0) & ~masks[step, node]
        sender = np.rint(out.data.imag[clean]).astype(np.int64) - 1
        hear_from[step[clean], node[clean]] = sender
        return int(clean.sum())

    def _deliver_window_dense(
        self, masks: np.ndarray, hear_from: np.ndarray
    ) -> int:
        """Dense-matmul window execution; returns the reception count.

        One sparse-times-dense product against a ``(n, w)`` right-hand
        side gives every (listener, step) pair's transmitter count and
        id-sum without materializing a COO output. When the packing
        bound allows (all realistic sizes), a transmitting node ``v``
        contributes the *real* value ``1 + (v + 1) M`` with modulus
        ``M = n + 1``: a listener's sum then unpacks as
        ``count = sum mod M`` and ``idsum1 = sum div M`` — one real
        product instead of a complex one, at half the flops. Every
        quantity is an exact integer below 2^53 in float64, so
        accumulation order cannot change a single value — the results
        are bit-identical to :meth:`_deliver_window_sparse` and to
        step-wise :meth:`deliver` calls. Graphs too large for the
        packing bound fall back to the complex-valued product (same
        exactness argument, componentwise).
        """
        masks_t = masks.T  # (n, w) view
        if self._dense_pack_ok:
            modulus = float(self.n + 1)
            vals = 1.0 + self._ids1 * modulus
            rhs = np.where(masks_t, vals[:, None], 0.0)
            out = self._adj @ rhs  # dense (n, w) float64
            counts = np.remainder(out, modulus)
            heard = (~masks_t) & (counts == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = (out[node, step] - 1.0) / modulus
        else:
            rhs = np.where(masks_t, (1.0 + 1j * self._ids1)[:, None], 0.0)
            out = self._complex_adj() @ rhs  # dense (n, w) complex
            heard = (~masks_t) & (out.real == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = out.imag[node, step]
        hear_from[step, node] = np.rint(idsum1).astype(np.int64) - 1
        return int(node.size)

    def deliver_window(
        self, masks: np.ndarray, mode: str = "auto"
    ) -> np.ndarray:
        """Execute a window of oblivious radio steps in one product.

        Semantically identical to calling :meth:`deliver` once per row of
        ``masks`` — same ``hear_from`` values, same trace totals, same
        ``steps_elapsed`` — but the whole window is computed as a single
        matrix product, which is what makes long oblivious schedules
        (Decay sweeps, round-robin rotations, background processes)
        fast. *Oblivious* means the caller could fix every mask before
        the first step executes: masks must not depend on what is heard
        inside the window.

        Two execution strategies implement the product, selected by
        ``mode``:

        * ``"sparse"`` — a sparse-sparse complex product; cost scales
          with the transmitters' degree sum plus the nonzeros of the
          output, ideal for the sparse masks of Decay ladders and slot
          schedules.
        * ``"dense"`` — an exact sparse-times-dense matmul; cost is
          ``O(nnz(A) w)`` regardless of density, which wins when most
          (listener, step) pairs hear energy and the sparse output
          stops being sparse (EstimateEffectiveDegree near ``p = 0.5``
          on dense graphs).
        * ``"auto"`` (default) — routes *per row* on mask popcounts
          (:meth:`dense_window_rows`): window steps are independent
          given their masks, so a mixed window (EstimateEffectiveDegree
          chunks straddle the whole density ladder) splits into a dense
          sub-window and a sparse sub-window, each on its better path.

        Both strategies compute exact small-integer sums in float64
        components, so the returned matrix is bit-identical whichever
        path runs — pinned per window by the contract suite.

        Parameters
        ----------
        masks:
            Boolean array of shape ``(w, n)``; row ``t`` is the transmit
            mask of window step ``t``.
        mode:
            ``"auto"``, ``"sparse"`` or ``"dense"``.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(w, n)``: row ``t`` is exactly what
            :meth:`deliver` would have returned for ``masks[t]``.
        """
        self._check_delivery_mode(mode)
        masks = self._validate_window_masks(np.asarray(masks))
        w = masks.shape[0]
        hear_from = np.full((w, self.n), NO_SENDER, dtype=np.int64)
        if w == 0:
            return hear_from
        masks, receptions = self._execute_committed_window(
            masks, hear_from, mode
        )
        self._account_window(masks, receptions)
        return hear_from

    def _check_delivery_mode(self, mode: str) -> None:
        if mode not in DELIVERY_MODES:
            # Compiled modes (numba/cupy) are known to the kernel
            # registry, which refuses absent backends uniformly.
            from ..engine.kernels import require_delivery_mode

            require_delivery_mode(mode)

    def _delivery_kernels(self):
        """Lazy kernel registry bound to this network's own CSR."""
        if self._kernels is None:
            from ..engine.kernels import DeliveryKernels

            self._kernels = DeliveryKernels(
                self._adj.indptr, self._adj.indices, self.n
            )
            # Share the already-materialized adjacency (all-ones
            # float64 data over the same indptr/indices) instead of
            # letting the registry lazily build a duplicate — at mean
            # degree n/2 that copy alone is nnz * 8 bytes, enough to
            # blow a tight streamed mem_budget.
            self._kernels._adj = self._adj
        return self._kernels

    def _validate_window_masks(self, masks: np.ndarray) -> np.ndarray:
        """Shared shape/dtype validation for window mask matrices."""
        if masks.ndim != 2 or masks.shape[1] != self.n:
            raise InvalidActionError(
                f"window masks have shape {masks.shape}, expected (w, {self.n})"
            )
        if masks.dtype != np.bool_:
            raise InvalidActionError(
                f"window masks must be boolean, got dtype {masks.dtype}"
            )
        return masks

    def _execute_window_rows(
        self, masks: np.ndarray, hear_from: np.ndarray, mode: str
    ) -> int:
        """The chunk kernel: route one block of mask rows to the window
        execution strategies, writing into ``hear_from``; returns the
        reception count. No accounting — callers record the steps.
        """
        if not masks.any():
            return 0
        if mode not in ("sparse", "dense"):
            # Compiled modes always delegate to the kernel registry;
            # "auto" delegates when a compiled backend is installed so
            # the registry can route its sparse rows through it (and
            # name it in provenance). Without one, auto stays on the
            # numpy paths below — zero new overhead on the base path.
            from ..engine import kernels as _kernels

            if mode != "auto" or _kernels.probe_numba():
                return self._delivery_kernels().execute(
                    masks, hear_from, mode, counters=self.kernel_use
                )
        bump = self._bump_kernel
        if mode == "dense":
            bump("dense", masks.shape[0])
            return self._deliver_window_dense(masks, hear_from)
        if mode == "sparse":
            bump(
                "gather"
                if masks.shape[0] <= GATHER_WINDOW_WIDTH
                else "spmm",
                masks.shape[0],
            )
            return self._deliver_window_sparse(masks, hear_from)
        # auto: route per row on popcount density at *every* width —
        # dense rows must never reach the sparse/gather kernels, whose
        # working set scales with the transmitters' degree sum (a
        # streamed chunk of p ~ 0.5 rows would blow the memory budget
        # through the gather kernel's flat index arrays) — plus the
        # chunk-level output-size pre-emption of dense_window_rows:
        # popcount-sparse rows whose transmitters' degree sum predicts
        # a COO output heavier than the packed dense cells route dense
        # wholesale, keeping very dense graphs inside the streaming
        # cost model. Narrow all-sparse windows (the multiplexer's
        # width-1/2 joint windows) then take the gather kernel
        # directly, where constructor overhead dominates both matrix
        # strategies.
        dense_rows = self.dense_window_rows(masks)
        if not dense_rows.any():
            if masks.shape[0] <= GATHER_WINDOW_WIDTH:
                bump("gather", masks.shape[0])
                return self._deliver_window_gather(masks, hear_from)
            bump("spmm", masks.shape[0])
            return self._deliver_window_sparse(masks, hear_from)
        if dense_rows.all():
            bump("dense", masks.shape[0])
            return self._deliver_window_dense(masks, hear_from)
        receptions = 0
        for rows, execute, name in (
            (dense_rows, self._deliver_window_dense, "dense"),
            (~dense_rows, self._deliver_window_sparse, "spmm"),
        ):
            idx = np.nonzero(rows)[0]
            sub = np.full((idx.size, self.n), NO_SENDER, dtype=np.int64)
            bump(name, idx.size)
            receptions += execute(masks[idx], sub)
            hear_from[idx] = sub
        return receptions

    def _bump_kernel(self, name: str, rows: int) -> None:
        """Count executed rows per kernel leg (RunReport provenance)."""
        self.kernel_use[name] = self.kernel_use.get(name, 0) + int(rows)

    def _account_window(self, masks: np.ndarray, receptions: int) -> None:
        """Advance ``steps_elapsed`` and the trace for one executed block."""
        w = masks.shape[0]
        self.steps_elapsed += w
        if self.trace.wants_detail:
            # The exact popcount is only paid for when the trace keeps
            # it; cheap-trace bulk workloads skip the extra mask scan.
            self.trace.record_window(
                steps=w,
                transmissions=int(np.count_nonzero(masks)),
                receptions=receptions,
            )
        else:
            self.trace.record_window(steps=w, transmissions=0, receptions=0)

    def deliver_window_chunks(
        self,
        plan: TransmitPlan | np.ndarray,
        *,
        chunk_steps: int,
        mode: str = "auto",
    ) -> Iterator[np.ndarray]:
        """Execute an oblivious window as a stream of bounded chunks.

        The out-of-core form of :meth:`deliver_window`: instead of
        materializing the full ``(w, n)`` hear-window, the plan's mask
        rows are produced, executed, and yielded ``chunk_steps`` rows at
        a time — each yielded slab is the ``(w_chunk, n)`` ``hear_from``
        block of its steps, routed through the same density-adaptive
        kernels (:meth:`_execute_window_rows`) a monolithic call would
        use. Peak memory is therefore ``O(chunk_steps * n)`` plus kernel
        intermediates, independent of the window's total width.

        Bit-identity: window steps are independent given their masks and
        every kernel computes exact small-integer sums, so concatenating
        the yielded slabs reproduces ``deliver_window(masks)`` exactly —
        same ``hear_from`` values, same ``steps_elapsed``, and (because
        :class:`~repro.radio.trace.StepTrace` keeps aggregates) the same
        trace state, whatever ``chunk_steps`` is. Chunk size is a memory
        knob, never a semantics knob.

        Accounting is per chunk, as each is executed: a consumer that
        abandons the stream mid-way leaves ``steps_elapsed`` and the
        trace reflecting only the chunks actually executed (and the
        plan's remaining masks unproduced).

        Parameters
        ----------
        plan:
            A :class:`TransmitPlan` (lazy mask producer) or a
            materialized ``(w, n)`` boolean mask matrix.
        chunk_steps:
            Rows per yielded slab; at least 1. The final chunk may be
            shorter.
        mode:
            Window execution strategy per chunk, as in
            :meth:`deliver_window`.
        """
        self._check_delivery_mode(mode)
        if chunk_steps < 1:
            raise InvalidActionError(
                f"chunk_steps must be >= 1, got {chunk_steps}"
            )
        plan = as_transmit_plan(plan)
        total = plan.total_steps
        if total < 0:
            raise InvalidActionError(
                f"transmit plan has negative total_steps: {total}"
            )
        done = 0
        while done < total:
            k = min(chunk_steps, total - done)
            masks = self._validate_window_masks(
                np.asarray(plan.masks(done, done + k))
            )
            if masks.shape[0] != k:
                raise InvalidActionError(
                    f"transmit plan produced {masks.shape[0]} rows for "
                    f"steps [{done}, {done + k}), expected {k}"
                )
            hear_from = np.full((k, self.n), NO_SENDER, dtype=np.int64)
            masks, receptions = self._execute_committed_window(
                masks, hear_from, mode
            )
            self._account_window(masks, receptions)
            yield hear_from
            done += k

    def step(self, actions: Mapping[Hashable, Any]) -> dict[Hashable, Any]:
        """Label-based convenience wrapper around :meth:`deliver`.

        Parameters
        ----------
        actions:
            Mapping from node label to the message it transmits this step.
            Nodes absent from the mapping listen. Message values may be
            anything except ``None`` (``None`` would be indistinguishable
            from "heard nothing" in the return value).

        Returns
        -------
        dict
            Mapping from listener label to the message it heard; nodes
            that heard nothing are absent.
        """
        transmit = np.zeros(self.n, dtype=bool)
        messages: list[Any] = [None] * self.n
        for label, message in actions.items():
            if message is None:
                raise InvalidActionError(
                    f"node {label!r} tried to transmit None; use any other "
                    "sentinel for contentless transmissions"
                )
            i = self._index[label]
            transmit[i] = True
            messages[i] = message

        hear_from = self.deliver(transmit)
        received: dict[Hashable, Any] = {}
        for i in np.nonzero(hear_from != NO_SENDER)[0]:
            received[self._labels[i]] = messages[hear_from[i]]
        return received

    # ------------------------------------------------------------------
    # convenience graph facts (used by generators/tests, not protocols)
    # ------------------------------------------------------------------
    def neighbor_sum(self, values: np.ndarray) -> np.ndarray:
        """For each node, the sum of ``values`` over its neighbors.

        Global knowledge: this is *not* available to protocol logic in the
        ad-hoc model. It exists for instrumentation (golden-round
        tracking), oracle fidelity knobs that are explicitly documented as
        such (``oracle_degree`` in Radio MIS), and tests.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise InvalidActionError(
                f"values has shape {values.shape}, expected ({self.n},)"
            )
        return self._adj @ values

    def is_connected(self) -> bool:
        """Whether the underlying graph is connected (cached per graph)."""
        return self._context.is_connected()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadioNetwork(n={self.n}, m={self.graph.number_of_edges()}, "
            f"steps={self.steps_elapsed})"
        )
