"""Registered chunk-delivery kernels over raw CSR adjacency.

:class:`DeliveryKernels` is the window-execution engine of
:class:`~repro.radio.RadioNetwork` factored out onto bare
``(indptr, indices)`` arrays, so the same density-adaptive routing and
the same exact integer arithmetic can run against *any* CSR — the full
adjacency or a residual sub-graph built by
:meth:`~repro.graphs.context.GraphContext.induced_csr` when a
protocol's live set has collapsed (:mod:`repro.engine.residual`).

Degree-dependent routing state (max/min degree for the auto router's
output-size pre-emption, the dense packing bound) is **recomputed from
the CSR handed in**, never inherited from a parent graph: a residual
sub-graph's degrees are what its routing decisions must use (inherited
extremes would over-route shrunken graphs dense and can violate the
packing bound's premise in the other direction).

Two optional compiled backends register here:

* ``"numba"`` — an ``@njit`` CSR scatter kernel (per-row transmitter
  walk, integer collision counts, last-writer sender slots). Every
  quantity is an int64, so it is **exact**: bit-identical to the numpy
  kernels, validated by :class:`~repro.engine.validate.ValidatingRunner`
  and the differential-fuzz harness like any other path.
* ``"cupy"`` — the complex sparse product on the GPU. Same
  small-integer-in-float64 exactness argument as the CPU spmm
  componentwise, so it sits in the same exactness tier wherever the
  device's flush-to-zero settings leave exact integer adds alone
  (DESIGN.md §7 documents the tiers).

Neither dependency is imported until probed; probing is cached.
Requesting an absent backend raises the uniform
:class:`~repro.radio.errors.ProtocolError` naming the installed
alternatives — silent fallback happens only under ``delivery="auto"``
(:func:`require_delivery_mode`, satellite of ISSUE 7).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..radio.errors import ProtocolError
from ..radio.network import (
    DELIVERY_MODES,
    DENSE_ROW_DENSITY,
    DENSE_WINDOW_CELL_BYTES,
    GATHER_WINDOW_WIDTH,
    NO_SENDER,
    SPARSE_COO_ENTRY_BYTES,
    SPARSE_PREEMPT_FACTOR,
)

#: Delivery modes that require an optional compiled dependency.
COMPILED_DELIVERY_MODES = ("numba", "cupy")

#: Every delivery mode the policy layer accepts (availability is a
#: separate question — see :func:`require_delivery_mode`).
ALL_DELIVERY_MODES = DELIVERY_MODES + COMPILED_DELIVERY_MODES

_probe_cache: dict[str, bool] = {}
_numba_kernel = None


def probe_numba() -> bool:
    """Whether the numba JIT backend is importable (cached)."""
    if "numba" not in _probe_cache:
        try:  # pragma: no cover - depends on the installed environment
            import numba  # noqa: F401

            _probe_cache["numba"] = True
        except Exception:
            _probe_cache["numba"] = False
    return _probe_cache["numba"]


def probe_cupy() -> bool:
    """Whether the cupy GPU backend is importable *and has a device*."""
    if "cupy" not in _probe_cache:
        try:  # pragma: no cover - depends on the installed environment
            import cupy

            cupy.cuda.runtime.getDeviceCount()
            _probe_cache["cupy"] = True
        except Exception:
            _probe_cache["cupy"] = False
    return _probe_cache["cupy"]


_PROBES = {"numba": probe_numba, "cupy": probe_cupy}


def available_delivery_modes() -> tuple[str, ...]:
    """The delivery modes this process can actually execute.

    Always the three numpy modes (``"auto"``, ``"sparse"``,
    ``"dense"``); the compiled modes appear exactly when their
    dependency probes as importable.
    """
    return DELIVERY_MODES + tuple(
        mode for mode in COMPILED_DELIVERY_MODES if _PROBES[mode]()
    )


def require_delivery_mode(mode: str) -> None:
    """Refuse unknown modes and absent compiled backends, uniformly.

    An explicit request for ``"numba"``/``"cupy"`` without the
    dependency is an error naming the installed alternatives — never a
    silent fallback. Only ``delivery="auto"`` is allowed to degrade
    (that is what auto *means*).
    """
    if mode not in ALL_DELIVERY_MODES:
        raise ProtocolError(
            f"unknown delivery mode: {mode!r} "
            f"(expected one of {ALL_DELIVERY_MODES})"
        )
    if mode in COMPILED_DELIVERY_MODES and not _PROBES[mode]():
        raise ProtocolError(
            f"delivery mode {mode!r} requires the {mode!r} package, "
            f"which is not installed (or has no usable device); "
            f"installed delivery modes: {available_delivery_modes()}"
        )


def compiled_kernel_name(mode: str) -> str:
    """The chunk-kernel family a resolved ``delivery`` mode will use
    for its (popcount-)sparse rows — recorded in ``RunReport``
    provenance so a run names the code that produced it."""
    if mode == "numba" or (mode == "auto" and probe_numba()):
        return "csr-numba"
    if mode == "cupy":
        return "spmm-cupy"
    return "numpy"


def _get_numba_kernel():  # pragma: no cover - needs numba installed
    """Build (once) the ``@njit`` CSR window kernel.

    Row-parallel over window steps: each step walks its transmitters'
    CSR neighbor lists, bumping an int64 collision counter and a
    last-writer sender slot per listener. A listener with exactly one
    transmitting neighbor that is not itself transmitting hears that
    sender. Integer arithmetic throughout — no floats to round, so the
    result is bit-identical to the numpy kernels by construction.
    """
    global _numba_kernel
    if _numba_kernel is None:
        import numba

        @numba.njit(cache=True, parallel=True)
        def _csr_window(masks, indptr, indices, hear_from):
            w, n = masks.shape
            receptions = 0
            for t in numba.prange(w):
                counts = np.zeros(n, dtype=np.int64)
                sender = np.zeros(n, dtype=np.int64)
                for u in range(n):
                    if masks[t, u]:
                        for j in range(indptr[u], indptr[u + 1]):
                            v = indices[j]
                            counts[v] += 1
                            sender[v] = u
                heard = 0
                for v in range(n):
                    if counts[v] == 1 and not masks[t, v]:
                        hear_from[t, v] = sender[v]
                        heard += 1
                receptions += heard
            return receptions

        _numba_kernel = _csr_window
    return _numba_kernel


class DeliveryKernels:
    """Window-delivery kernels bound to one CSR adjacency.

    Parameters
    ----------
    indptr, indices:
        The CSR row pointers and column indices of an undirected
        adjacency over ``n`` nodes (symmetric, no self-loops) — e.g.
        ``GraphContext.csr``'s arrays, or the output of
        :meth:`~repro.graphs.context.GraphContext.induced_csr`.
    n:
        Node count; ``indptr`` has ``n + 1`` entries.

    All routing constants and kernel arithmetic mirror
    :class:`~repro.radio.RadioNetwork` exactly (same popcount
    thresholds, same output-size pre-emption, same packed-modulus dense
    product), so executing a mask block here is bit-identical to
    executing it there — the property the residual path's equivalence
    tests pin.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, n: int
    ) -> None:
        self.n = int(n)
        self.indptr = np.ascontiguousarray(indptr)
        self.indices = np.ascontiguousarray(indices)
        # Satellite fix (ISSUE 7): degree extremes are *recomputed* from
        # this CSR. Residual sub-graphs routed on a parent's cached
        # extremes would mis-route (stale max_degree over-triggers the
        # spmm pre-emption; a stale packing bound is unsound upward).
        self.degrees = np.diff(self.indptr).astype(np.int64)
        self.max_degree = int(self.degrees.max()) if self.n else 0
        self.min_degree = int(self.degrees.min()) if self.n else 0
        self._ids1 = np.arange(self.n, dtype=np.float64) + 1.0
        self.dense_pack_ok = (
            self.max_degree * (1.0 + self.n * (self.n + 1.0)) < 2.0**53
        )
        self._adj: sp.csr_array | None = None
        self._adj_complex: sp.csr_array | None = None
        self._cupy_adj = None

    # -- lazy matrix forms --------------------------------------------

    def _matrix(self) -> sp.csr_array:
        if self._adj is None:
            data = np.ones(self.indices.shape[0], dtype=np.float64)
            self._adj = sp.csr_array(
                (data, self.indices, self.indptr), shape=(self.n, self.n)
            )
        return self._adj

    def _complex_matrix(self) -> sp.csr_array:
        if self._adj_complex is None:
            self._adj_complex = self._matrix().astype(np.complex128)
        return self._adj_complex

    # -- routing ------------------------------------------------------

    def dense_rows(self, masks: np.ndarray) -> np.ndarray:
        """Rows the auto router sends dense — popcount density plus the
        output-size pre-emption, both on *this* CSR's degrees (see
        :meth:`~repro.radio.RadioNetwork.dense_window_rows` for the
        full rationale; the arithmetic here is the same)."""
        row_counts = np.count_nonzero(masks, axis=1)
        dense = row_counts >= DENSE_ROW_DENSITY * max(1, self.n)
        sparse = ~dense
        n_sparse = int(sparse.sum())
        if n_sparse:
            sparse_tx = int(row_counts[sparse].sum())
            flip_entries = (
                SPARSE_PREEMPT_FACTOR
                * n_sparse
                * self.n
                * (DENSE_WINDOW_CELL_BYTES / SPARSE_COO_ENTRY_BYTES)
            )
            if sparse_tx * self.max_degree >= flip_entries:
                if sparse_tx * self.min_degree >= flip_entries:
                    degree_sum = float(flip_entries)
                else:
                    sub = (
                        masks
                        if n_sparse == masks.shape[0]
                        else masks[sparse]
                    )
                    degree_sum = float(
                        self.degrees[np.nonzero(sub)[1]].sum()
                    )
                if degree_sum >= flip_entries:
                    dense = np.ones(masks.shape[0], dtype=bool)
        return dense

    # -- numpy kernels (mirrors of the RadioNetwork window kernels) ---

    def _gather(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        starts = self.indptr[tx_node].astype(np.int64)
        lens = self.indptr[tx_node + 1].astype(np.int64) - starts
        total = int(lens.sum())
        if total == 0:
            return 0
        offsets = np.repeat(np.cumsum(lens) - lens - starts, lens)
        neighbors = self.indices[
            np.arange(total, dtype=np.int64) - offsets
        ]
        flat = np.repeat(tx_step, lens) * self.n + neighbors
        counts = np.bincount(flat, minlength=w * self.n).reshape(
            w, self.n
        )
        idsum1 = np.bincount(
            flat,
            weights=np.repeat(self._ids1[tx_node], lens),
            minlength=w * self.n,
        ).reshape(w, self.n)
        clean = (counts == 1) & ~masks
        hear_from[clean] = np.rint(idsum1[clean]).astype(np.int64) - 1
        return int(clean.sum())

    def _spmm(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        if not tx_node.size:
            return 0
        data = np.empty(tx_node.size, dtype=np.complex128)
        data.real = 1.0
        data.imag = self._ids1[tx_node]
        rhs = sp.csr_array(
            (data, (tx_node, tx_step)), shape=(self.n, w)
        )
        out = (self._complex_matrix() @ rhs).tocoo()
        node, step = out.coords
        counts = out.data.real
        clean = (counts == 1.0) & ~masks[step, node]
        sender = np.rint(out.data.imag[clean]).astype(np.int64) - 1
        hear_from[step[clean], node[clean]] = sender
        return int(clean.sum())

    def _dense(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        masks_t = masks.T
        if self.dense_pack_ok:
            modulus = float(self.n + 1)
            vals = 1.0 + self._ids1 * modulus
            rhs = np.where(masks_t, vals[:, None], 0.0)
            out = self._matrix() @ rhs
            counts = np.remainder(out, modulus)
            heard = (~masks_t) & (counts == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = (out[node, step] - 1.0) / modulus
        else:  # pragma: no cover - needs a graph beyond the 2^53 bound
            rhs = np.where(
                masks_t, (1.0 + 1j * self._ids1)[:, None], 0.0
            )
            out = self._complex_matrix() @ rhs
            heard = (~masks_t) & (out.real == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = out.imag[node, step]
        hear_from[step, node] = np.rint(idsum1).astype(np.int64) - 1
        return int(node.size)

    def _sparse(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        if masks.shape[0] <= GATHER_WINDOW_WIDTH:
            return self._gather(masks, hear_from)
        return self._spmm(masks, hear_from)

    # -- compiled kernels ---------------------------------------------

    def _numba(self, masks, hear_from):  # pragma: no cover - needs numba
        kernel = _get_numba_kernel()
        return int(
            kernel(
                np.ascontiguousarray(masks),
                self.indptr,
                self.indices,
                hear_from,
            )
        )

    def _cupy(self, masks, hear_from):  # pragma: no cover - needs cupy
        import cupy
        import cupyx.scipy.sparse as cpsp

        adj = self._cupy_adj
        if adj is None:
            adj = cpsp.csr_matrix(
                sp.csr_matrix(self._complex_matrix())
            )
            self._cupy_adj = adj
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        if not tx_node.size:
            return 0
        data = np.empty(tx_node.size, dtype=np.complex128)
        data.real = 1.0
        data.imag = self._ids1[tx_node]
        rhs = cpsp.csr_matrix(
            sp.csr_matrix(
                (data, (tx_node, tx_step)), shape=(self.n, w)
            )
        )
        out = (adj @ rhs).tocoo()
        node = cupy.asnumpy(out.row)
        step = cupy.asnumpy(out.col)
        vals = cupy.asnumpy(out.data)
        clean = (vals.real == 1.0) & ~masks[step, node]
        sender = np.rint(vals.imag[clean]).astype(np.int64) - 1
        hear_from[step[clean], node[clean]] = sender
        return int(clean.sum())

    # -- the routed entry point ---------------------------------------

    def execute(
        self,
        masks: np.ndarray,
        hear_from: np.ndarray,
        mode: str,
        counters: dict[str, int] | None = None,
    ) -> int:
        """Execute one ``(w, n)`` mask block into ``hear_from``.

        Same contract as
        :meth:`~repro.radio.RadioNetwork._execute_window_rows`: write
        clean receptions, return their count, no accounting. ``mode``
        accepts every member of :data:`ALL_DELIVERY_MODES`; ``"auto"``
        routes per row — dense rows to the packed matmul, sparse rows
        to the compiled CSR kernel when numba is installed, the
        gather/spmm pair otherwise. ``counters`` (when given) is bumped
        per kernel leg with the number of rows it executed, feeding
        ``RunReport`` delivery provenance.
        """

        def bump(name: str, rows: int) -> None:
            if counters is not None:
                counters[name] = counters.get(name, 0) + rows

        w = masks.shape[0]
        if not masks.any():
            bump("skip-empty", w)
            return 0
        if mode == "dense":
            bump("dense", w)
            return self._dense(masks, hear_from)
        if mode == "sparse":
            bump(
                "gather" if w <= GATHER_WINDOW_WIDTH else "spmm", w
            )
            return self._sparse(masks, hear_from)
        if mode == "numba":  # pragma: no cover - needs numba
            bump("csr-numba", w)
            return self._numba(masks, hear_from)
        if mode == "cupy":  # pragma: no cover - needs cupy
            bump("spmm-cupy", w)
            return self._cupy(masks, hear_from)
        # auto: per-row density routing, compiled kernel for the
        # sparse side when available.
        dense_rows = self.dense_rows(masks)
        if probe_numba():  # pragma: no cover - needs numba
            sparse_exec = self._numba
            sparse_name = "csr-numba"
        else:
            sparse_exec = self._sparse
            sparse_name = None
        if not dense_rows.any():
            if sparse_name is None:
                bump(
                    "gather" if w <= GATHER_WINDOW_WIDTH else "spmm", w
                )
            else:  # pragma: no cover - needs numba
                bump(sparse_name, w)
            return sparse_exec(masks, hear_from)
        if dense_rows.all():
            bump("dense", w)
            return self._dense(masks, hear_from)
        receptions = 0
        for rows, execute, name in (
            (dense_rows, self._dense, "dense"),
            (~dense_rows, sparse_exec, sparse_name or "sparse-mixed"),
        ):
            idx = np.nonzero(rows)[0]
            sub = np.full(
                (idx.size, self.n), NO_SENDER, dtype=np.int64
            )
            bump(name, idx.size)
            receptions += execute(masks[idx], sub)
            hear_from[idx] = sub
        return receptions


__all__ = [
    "ALL_DELIVERY_MODES",
    "COMPILED_DELIVERY_MODES",
    "DeliveryKernels",
    "available_delivery_modes",
    "compiled_kernel_name",
    "probe_cupy",
    "probe_numba",
    "require_delivery_mode",
]
